//! Zero patterns and the standard form (paper Sec. VI): when incompatible
//! task/machine pairs make the standard form nonexistent, and what each
//! `ZeroPolicy` does about it.
//!
//! Run with: `cargo run --example zero_patterns`

use hetero_measures::prelude::*;
use hetero_measures::sinkhorn::structure::{
    analyze_square, eq10_matrix, fine_blocks, total_support_core,
};

fn policy_demo(name: &str, ecs: &Ecs) {
    println!("{name}:");
    for (pname, policy) in [
        ("strict", ZeroPolicy::Strict),
        ("limit", ZeroPolicy::Limit),
        ("regularize(1e-4)", ZeroPolicy::Regularize { epsilon: 1e-4 }),
    ] {
        let opts = TmaOptions {
            zero_policy: policy,
            balance: hetero_measures::sinkhorn::balance::BalanceOptions {
                max_iters: 1_000_000,
                stall_window: usize::MAX,
                tol: 1e-7,
                ..Default::default()
            },
            ..Default::default()
        };
        match tma_with(ecs, &opts) {
            Ok(v) => println!("  {pname:18} TMA = {v:.4}"),
            Err(e) => println!("  {pname:18} error: {e}"),
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's Eq. 10 matrix: support but no total support — no exact
    //    standard form exists, and the Eq. 9 iteration only limps toward a limit.
    let eq10 = eq10_matrix();
    let rep = analyze_square(&eq10);
    println!("Eq. 10 matrix:\n{eq10}");
    println!(
        "support: {}   total support: {}   fully indecomposable: {}\n",
        rep.has_support, rep.has_total_support, rep.fully_indecomposable
    );
    let core = total_support_core(&eq10).expect("has support");
    println!("total-support core (the Sinkhorn–Knopp limit pattern):\n{core}");
    policy_demo("Eq. 10 under each zero policy", &Ecs::new(eq10)?);

    // 2. A GPU-cluster-style environment: two machine groups that cannot share
    //    tasks. Total support holds, so the exact standard form exists even
    //    though the matrix is decomposable.
    let cluster = Ecs::with_names(
        Matrix::from_rows(&[
            &[5.0, 4.0, 0.0, 0.0],
            &[4.0, 6.0, 0.0, 0.0],
            &[0.0, 0.0, 9.0, 7.0],
            &[0.0, 0.0, 6.0, 8.0],
        ])?,
        vec![
            "cpu-job-1".into(),
            "cpu-job-2".into(),
            "gpu-job-1".into(),
            "gpu-job-2".into(),
        ],
        vec![
            "xeon-a".into(),
            "xeon-b".into(),
            "a100-a".into(),
            "a100-b".into(),
        ],
    )?;
    let crep = analyze_square(cluster.matrix());
    println!(
        "split cluster: total support: {}   fully indecomposable: {}",
        crep.has_total_support, crep.fully_indecomposable
    );
    if let Some(blocks) = fine_blocks(cluster.matrix()) {
        println!("fine blocks (independent balancing domains):");
        for (k, (rows, cols)) in blocks.iter().enumerate() {
            println!("  block {k}: tasks {rows:?} x machines {cols:?}");
        }
    }
    policy_demo("split cluster under each zero policy", &cluster);

    // 3. A pattern with no support at all: two tasks competing for one machine.
    let starved = Ecs::from_rows(&[&[1.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 1.0]])?;
    println!("starved pattern (tasks 1–2 can only run on machine 1):");
    policy_demo("starved pattern", &starved);
    println!(
        "Reading: `strict` turns Sec. VI's impossibility into a typed error;\n\
         `limit` computes the exact Sinkhorn–Knopp limit when one exists (via the\n\
         total-support core); `regularize` always succeeds and implements the\n\
         paper's future-work proposal for non-normalizable matrices."
    );
    Ok(())
}
