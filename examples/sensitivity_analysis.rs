//! Per-entry sensitivity analysis and schedule robustness: which task/machine
//! pair drives the environment's affinity, and how much ETC estimation error a
//! schedule tolerates.
//!
//! Run with: `cargo run --release --example sensitivity_analysis`

use hetero_measures::core::canonical::canonical_form;
use hetero_measures::core::report::characterize;
use hetero_measures::core::sensitivity::sensitivities;
use hetero_measures::prelude::*;
use hetero_measures::sched::heuristics::all_heuristics;
use hetero_measures::sched::problem::MappingProblem;
use hetero_measures::sched::robustness::robustness_radius;
use hetero_measures::sched::Heuristic;
use hetero_measures::spec::dataset::cint2006;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ecs = cint2006().ecs();
    let r = characterize(&ecs)?;
    println!(
        "synthetic SPEC CINT2006Rate: MPH {:.2}, TDH {:.2}, TMA {:.2}\n",
        r.mph, r.tdh, r.tma
    );

    // 1. Canonical ordering: who is hardest / fastest.
    let c = canonical_form(&ecs)?;
    println!(
        "hardest task:  {}   easiest: {}",
        ecs.task_names()[c.task_perm[0]],
        ecs.task_names()[*c.task_perm.last().unwrap()]
    );
    println!(
        "slowest machine: {}   fastest: {}\n",
        ecs.machine_names()[c.machine_perm[0]],
        ecs.machine_names()[*c.machine_perm.last().unwrap()]
    );

    // 2. Sensitivities: the affinity and homogeneity drivers.
    println!("computing per-entry measure gradients (central differences)...");
    let s = sensitivities(&ecs, &TmaOptions::default(), 1e-4)?;
    let (ti, mj) = s.tma_driver();
    println!(
        "TMA driver: ({}, {}) with elasticity {:+.4}",
        ecs.task_names()[ti],
        ecs.machine_names()[mj],
        s.tma[(ti, mj)]
    );
    let (mi, mm) = s.mph_driver();
    println!(
        "MPH driver: ({}, {}) with elasticity {:+.4}",
        ecs.task_names()[mi],
        ecs.machine_names()[mm],
        s.mph[(mi, mm)]
    );
    // Structural invariant: TMA elasticities sum to ~0 along any row/column.
    let row0: f64 = (0..ecs.num_machines()).map(|j| s.tma[(0, j)]).sum();
    println!("row-0 TMA elasticity sum (must be ~0): {row0:+.2e}\n");

    // 3. Schedule robustness: how much ETC error each heuristic's schedule absorbs
    //    before a 10%-slack makespan guarantee breaks.
    let p = MappingProblem::from_etc(&ecs.to_etc());
    println!(
        "{:12} {:>12} {:>14} {:>10}",
        "heuristic", "makespan", "tau (=1.1x)", "radius"
    );
    for h in all_heuristics() {
        let sched = h.map(&p)?;
        let mk = sched.makespan(&p)?;
        let tau = mk * 1.1;
        let rob = robustness_radius(&p, &sched, tau)?;
        println!(
            "{:12} {:>12.1} {:>14.1} {:>10.2}",
            h.name(),
            mk,
            tau,
            rob.radius
        );
    }
    println!(
        "\nThe radius is the l2 amount of per-machine runtime error the schedule\n\
         absorbs before exceeding tau; load-balanced schedules buy more slack."
    );
    Ok(())
}
