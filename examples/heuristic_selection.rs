//! Heuristic selection by heterogeneity: evaluate the classic mapping heuristics
//! across environments with controlled TMA and watch the winner change (the
//! paper's application [3]).
//!
//! Run with: `cargo run --release --example heuristic_selection`

use hetero_measures::gen::targeted::TargetSpec;
use hetero_measures::prelude::*;
use hetero_measures::sched::eval::{study_ensemble, win_table, InstanceStudy};
use hetero_measures::sched::heuristics::all_heuristics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let heuristics = all_heuristics();
    println!(
        "heuristics: {}\n",
        heuristics
            .iter()
            .map(|h| {
                use hetero_measures::sched::Heuristic;
                h.name()
            })
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!(
        "{:>10}  {:>8}  {:>8}  winners (count over 16 seeds)",
        "TMA", "MPH", "TDH"
    );
    for &tma_target in &[0.0, 0.1, 0.25, 0.4, 0.55] {
        let envs: Vec<Ecs> = (0..16)
            .map(|seed| {
                targeted(
                    &TargetSpec {
                        jitter: 0.6,
                        ..TargetSpec::exact(20, 6, 0.7, 0.7, tma_target)
                    },
                    seed,
                )
                .expect("reachable targets")
            })
            .collect();
        let studies: Vec<InstanceStudy> = study_ensemble(&envs, &heuristics, false)
            .into_iter()
            .collect::<Result<_, _>>()?;
        let wins = win_table(&studies);
        let desc: Vec<String> = wins.iter().map(|(n, c)| format!("{n}:{c}")).collect();
        println!(
            "{:>10.2}  {:>8.2}  {:>8.2}  {}",
            tma_target,
            studies[0].mph,
            studies[0].tdh,
            desc.join("  ")
        );
    }

    println!(
        "\nReading: at low affinity the machines are interchangeable and load-aware\n\
         greedy heuristics (MCT/Min-Min family) all tie; as TMA rises, matching\n\
         tasks to their specialized machines dominates, and execution-time-aware\n\
         heuristics pull ahead of load-only OLB. Measuring TMA before choosing a\n\
         mapper is exactly the use the paper proposes."
    );
    Ok(())
}
