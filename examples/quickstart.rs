//! Quickstart: characterize a small heterogeneous computing environment.
//!
//! Run with: `cargo run --example quickstart`

use hetero_measures::prelude::*;

fn main() -> Result<(), MeasureError> {
    // An ETC matrix: rows are task types, columns are machines, entries are
    // estimated runtimes in seconds. Machine 3 is an accelerator-style device:
    // dramatically fast on the third task type, mediocre elsewhere.
    let etc = Etc::with_names(
        Matrix::from_rows(&[
            &[100.0, 120.0, 300.0],
            &[200.0, 180.0, 500.0],
            &[400.0, 460.0, 15.0],
            &[150.0, 140.0, 350.0],
        ])?,
        vec![
            "video-encode".into(),
            "compile".into(),
            "matrix-solve".into(),
            "compress".into(),
        ],
        vec!["xeon".into(), "opteron".into(), "gpu-node".into()],
    )?;

    // Convert to the ECS (speed) representation the measures are defined on.
    let ecs = etc.to_ecs();

    // All three measures in one call.
    let report = characterize(&ecs)?;
    println!(
        "environment: {} tasks x {} machines",
        ecs.num_tasks(),
        ecs.num_machines()
    );
    println!(
        "  MPH (machine performance homogeneity) = {:.3}",
        report.mph
    );
    println!(
        "  TDH (task difficulty homogeneity)     = {:.3}",
        report.tdh
    );
    println!(
        "  TMA (task-machine affinity)           = {:.3}",
        report.tma
    );
    println!(
        "  standard form took {} Sinkhorn iterations",
        report.standardization_iterations
    );

    // Individual machine performances (ECS column sums) and task difficulties.
    println!("\nmachine performances:");
    for (name, mp) in ecs.machine_names().iter().zip(&report.machine_performances) {
        println!("  {name:10} {mp:.4}");
    }
    println!("task difficulties (higher = easier):");
    for (name, td) in ecs.task_names().iter().zip(&report.task_difficulties) {
        println!("  {name:14} {td:.4}");
    }

    // The accelerator gives this environment real task-machine affinity; compare
    // with a proportional-machines environment where affinity vanishes.
    let proportional = Ecs::from_rows(&[
        &[1.0, 2.0, 4.0],
        &[0.5, 1.0, 2.0],
        &[2.0, 4.0, 8.0],
        &[1.5, 3.0, 6.0],
    ])?;
    println!(
        "\nTMA here = {:.3}; TMA of a proportional environment = {:.3}",
        report.tma,
        tma(&proportional)?
    );
    Ok(())
}
