//! Reproduce the paper's Sec. V analysis on the (synthetic) SPEC datasets and
//! export them to CSV.
//!
//! Run with: `cargo run --example spec_analysis`

use hetero_measures::core::report::characterize;
use hetero_measures::prelude::*;
use hetero_measures::spec::csv::to_csv;
use hetero_measures::spec::dataset::{cfp2006, cint2006};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for d in [cint2006(), cfp2006()] {
        let ecs = d.ecs();
        let r = characterize(&ecs)?;
        println!(
            "== {} ({} task types x {} machines) ==",
            d.name,
            ecs.num_tasks(),
            ecs.num_machines()
        );
        println!(
            "  measured: TDH = {:.2}  MPH = {:.2}  TMA = {:.2}   ({} iterations)",
            r.tdh, r.mph, r.tma, r.standardization_iterations
        );
        println!(
            "  paper:    TDH = {:.2}  MPH = {:.2}  TMA = {:.2}   ({} iterations)",
            d.targets.tdh, d.targets.mph, d.targets.tma, d.targets.iterations
        );

        // Which machine is fastest overall? Which tasks are hardest?
        let mut perf: Vec<(usize, f64)> =
            r.machine_performances.iter().copied().enumerate().collect();
        perf.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!(
            "  fastest machine: {}   slowest: {}",
            ecs.machine_names()[perf[0].0],
            ecs.machine_names()[perf.last().unwrap().0]
        );
        let mut diff: Vec<(usize, f64)> = r.task_difficulties.iter().copied().enumerate().collect();
        diff.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        println!(
            "  hardest task: {}   easiest: {}",
            ecs.task_names()[diff[0].0],
            ecs.task_names()[diff.last().unwrap().0]
        );

        // Export the ETC table as CSV next to the target directory.
        let path =
            std::env::temp_dir().join(format!("{}.csv", d.name.to_lowercase().replace(' ', "_")));
        std::fs::write(&path, to_csv(&d.etc))?;
        println!("  ETC table written to {}\n", path.display());
    }

    // The paper's headline comparison.
    let cint_tma = tma(&cint2006().ecs())?;
    let cfp_tma = tma(&cfp2006().ecs())?;
    println!(
        "CFP task types have more affinity to machines than CINT: {:.2} > {:.2} -> {}",
        cfp_tma,
        cint_tma,
        cfp_tma > cint_tma
    );
    Ok(())
}
