//! Generate ETC matrices that span the heterogeneity cube (the paper's
//! application [2]) and verify the targets are hit.
//!
//! Run with: `cargo run --example generate_sweep`

use hetero_measures::core::report::characterize;
use hetero_measures::gen::ensemble::measure_grid;
use hetero_measures::gen::range_based::{range_based, RangeParams};
use hetero_measures::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The measure-targeted generator: exact (MPH, TDH, TMA) control.
    println!("targeted generation over a 3x3x3 grid (10 tasks x 5 machines):");
    println!(
        "{:>22}  {:>22}  {:>10}",
        "target (MPH,TDH,TMA)", "measured", "max|delta|"
    );
    let mut worst: f64 = 0.0;
    for spec in measure_grid(10, 5, 3, 0.6) {
        let e = targeted(&spec, 7)?;
        let r = characterize(&e)?;
        let d = (r.mph - spec.mph)
            .abs()
            .max((r.tdh - spec.tdh).abs())
            .max((r.tma - spec.tma).abs());
        worst = worst.max(d);
        println!(
            "({:.2}, {:.2}, {:.2})      ({:.3}, {:.3}, {:.3})   {:.2e}",
            spec.mph, spec.tdh, spec.tma, r.mph, r.tdh, r.tma, d
        );
    }
    println!("worst deviation: {worst:.2e}\n");

    // 2. The classic range-based generator for comparison: heterogeneity is only
    // loosely controlled — exactly the problem the paper's framework solves.
    println!("classic range-based regimes (measures vary freely within a regime):");
    for (name, p) in [
        ("LoLo", RangeParams::lo_lo(10, 5)),
        ("LoHi", RangeParams::lo_hi(10, 5)),
        ("HiLo", RangeParams::hi_lo(10, 5)),
        ("HiHi", RangeParams::hi_hi(10, 5)),
    ] {
        let mut mphs = Vec::new();
        let mut tdhs = Vec::new();
        let mut tmas = Vec::new();
        for seed in 0..8 {
            let e = range_based(&p, seed)?.to_ecs();
            let r = characterize(&e)?;
            mphs.push(r.mph);
            tdhs.push(r.tdh);
            tmas.push(r.tma);
        }
        let span = |v: &[f64]| {
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(0.0_f64, f64::max);
            format!("[{lo:.2}, {hi:.2}]")
        };
        println!(
            "  {name}: MPH in {}  TDH in {}  TMA in {}",
            span(&mphs),
            span(&tdhs),
            span(&tmas)
        );
    }
    Ok(())
}
