//! Dynamic simulation: a Poisson stream of task instances scheduled online on
//! the (synthetic) SPEC CINT machines, comparing immediate and batch policies.
//!
//! Run with: `cargo run --release --example online_simulation`

use hetero_measures::sim::metrics::metrics;
use hetero_measures::sim::policy::{BatchPolicy, OnlinePolicy, Policy};
use hetero_measures::sim::sim::{simulate, SimConfig};
use hetero_measures::sim::workload::{generate, WorkloadSpec};
use hetero_measures::spec::dataset::cint2006;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = cint2006();
    let etc = dataset.etc.matrix();
    let (t, m) = etc.shape();

    // Offered load ≈ 75% of aggregate capacity.
    let mean_etc = etc.total_sum() / etc.len() as f64;
    let rate = 0.75 * m as f64 / mean_etc;
    println!(
        "environment: {} ({} task types x {} machines); arrival rate {:.4} tasks/s\n",
        dataset.name, t, m, rate
    );

    let workload = generate(&WorkloadSpec::uniform(2_000, rate, t, 42))?;
    println!(
        "workload: {} task instances over {:.0} s\n",
        workload.arrivals.len(),
        workload.arrivals.last().unwrap().time
    );

    let policies = [
        Policy::Immediate(OnlinePolicy::Olb),
        Policy::Immediate(OnlinePolicy::Met),
        Policy::Immediate(OnlinePolicy::Mct),
        Policy::Immediate(OnlinePolicy::Kpb { percent: 40 }),
        Policy::Batch {
            policy: BatchPolicy::MinMin,
            interval: 60.0,
        },
        Policy::Batch {
            policy: BatchPolicy::Sufferage,
            interval: 60.0,
        },
    ];

    println!(
        "{:16} {:>12} {:>12} {:>10} {:>24}",
        "policy", "makespan", "mean flow", "mean wait", "utilization (m1..m5)"
    );
    for policy in policies {
        let r = simulate(etc, &workload, &SimConfig { policy })?;
        let s = metrics(&r, m);
        let util: Vec<String> = s.utilization.iter().map(|u| format!("{u:.2}")).collect();
        println!(
            "{:16} {:>12.0} {:>12.1} {:>10.1} {:>24}",
            policy.name(),
            s.makespan,
            s.mean_flowtime,
            s.mean_wait,
            util.join(" ")
        );
    }

    println!(
        "\nThe environment's TMA is {:.2} (low): machines mostly differ in speed, not\n\
         specialization, so queue-aware policies (MCT/KPB/batch) dominate and MET's\n\
         fastest-machine pile-up is visible in its flowtime.",
        dataset.targets.tma
    );
    Ok(())
}
