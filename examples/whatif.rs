//! What-if studies: how adding or removing machines/tasks moves the three
//! heterogeneity measures (one of the paper's motivating applications).
//!
//! Run with: `cargo run --example whatif`

use hetero_measures::core::whatif::{
    add_machine, machine_sensitivities, remove_task, task_sensitivities,
};
use hetero_measures::spec::dataset::cint2006;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ecs = cint2006().ecs();
    println!("base environment: synthetic SPEC CINT2006Rate, 12 tasks x 5 machines\n");

    println!("machine removal sensitivities (delta in each measure if removed):");
    for (j, w) in machine_sensitivities(&ecs) {
        println!(
            "  {:4} dMPH = {:+.3}  dTDH = {:+.3}  dTMA = {:+.3}",
            ecs.machine_names()[j],
            w.delta_mph(),
            w.delta_tdh(),
            w.delta_tma()
        );
    }

    println!("\ntask removal sensitivities (top 3 by |dTMA|):");
    let mut tasks = task_sensitivities(&ecs);
    tasks.sort_by(|a, b| {
        b.1.delta_tma()
            .abs()
            .partial_cmp(&a.1.delta_tma().abs())
            .unwrap()
    });
    for (i, w) in tasks.iter().take(3) {
        println!(
            "  {:16} dMPH = {:+.3}  dTDH = {:+.3}  dTMA = {:+.3}",
            ecs.task_names()[*i],
            w.delta_mph(),
            w.delta_tdh(),
            w.delta_tma()
        );
    }

    // Scenario: procurement adds an accelerator that is 40x average speed on two
    // benchmarks and 5x slower on the rest. The paper's conclusion predicts TMA
    // rises and the homogeneities fall.
    let col: Vec<f64> = (0..ecs.num_tasks())
        .map(|i| {
            let avg = ecs.matrix().row_sum(i) / ecs.num_machines() as f64;
            if i % 6 == 0 {
                avg * 40.0
            } else {
                avg * 0.2
            }
        })
        .collect();
    let w = add_machine(&ecs, "gpgpu-node", &col)?;
    println!("\nscenario: {}", w.description);
    println!(
        "  MPH {:+.3}   TDH {:+.3}   TMA {:+.3}",
        w.delta_mph(),
        w.delta_tdh(),
        w.delta_tma()
    );
    println!(
        "  paper's expectation (Sec. V closing): accelerators raise TMA -> {}",
        w.delta_tma() > 0.0
    );

    // Scenario: drop the benchmark the environment is most specialized on.
    let (worst_task, w) = &tasks[0];
    println!(
        "\nscenario: {} (the task whose removal moves TMA most)",
        w.description
    );
    println!(
        "  before: TMA = {:.3}; after: TMA = {:.3}",
        w.before.tma, w.after.tma
    );
    let _ = remove_task(&ecs, *worst_task)?;
    Ok(())
}
