#!/usr/bin/env bash
# Benchmark trend gate: diffs the newest two BENCH_<date>.json snapshots at
# the repository root (see crates/bench/src/bin/trend.rs) and fails when any
# lane's best new sample is more than 20% slower than its worst old sample.
# With fewer than two snapshots present it prints a note and passes.
#
# Usage: scripts/bench_trend.sh [snapshot-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=${1:-.}

cargo run --release -q -p hc-bench --bin trend -- "$DIR"
