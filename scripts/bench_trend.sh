#!/usr/bin/env bash
# Benchmark trend gate: diffs the newest two BENCH_<date>.json snapshots at
# the repository root (see crates/bench/src/bin/trend.rs) and fails when any
# lane's best new sample is more than 20% slower than its worst old sample.
# Also diffs the newest two LOAD_<date>.json capacity snapshots (written by
# scripts/load_snapshot.sh) and fails when a class's p99 grows past 2.5x or
# its throughput drops below 2/3 of the previous run. With fewer than two
# snapshots of a family present it prints a note and passes that family.
#
# Usage: scripts/bench_trend.sh [snapshot-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=${1:-.}

cargo run --release -q -p hc-bench --bin trend -- "$DIR"
