#!/usr/bin/env bash
# Capacity snapshot: runs `hc-loadgen` open-loop against an in-process
# `hc-serve` instance (see crates/bench/src/bin/loadgen.rs) in release mode
# and writes the per-class report to LOAD_<date>.json at the repository root.
# scripts/bench_trend.sh diffs the newest two and fails when a class's p99
# grows past 2.5x or its throughput drops below 2/3 of the previous snapshot.
#
# The parameters below are a *sustainable* operating point on purpose: a
# trend baseline wants stable percentiles, not an overload run (overload
# behavior is gated by the verify.sh smoke and tests/chaos.rs instead).
#
# Usage: scripts/load_snapshot.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-LOAD_$(date +%Y%m%d).json}

echo "== build (release) =="
cargo build --release -q -p hc-bench --bin loadgen

echo "== loadgen -> $OUT =="
./target/release/loadgen --self-serve \
    --rps 300 --duration-s 10 --connections 12 --seed 42 \
    --shape 32x32 --batch-parts 4 \
    --mix measure=60,cachehit=20,healthz=15,batch=5 \
    --workers 2 --workers-min 2 --workers-max 4 \
    --target-queue-delay-ms 100 > "$OUT"

# Fail loudly on a truncated or malformed run rather than committing garbage.
grep -q '"schema":"hc-load/v1"' "$OUT" || { echo "bad load snapshot"; exit 1; }
for CLASS in measure cachehit healthz batch all; do
    grep -q "\"class\":\"$CLASS\"" "$OUT" || { echo "missing $CLASS lane"; exit 1; }
done
grep -q '"server":true' "$OUT" || { echo "missing server counter line"; exit 1; }
RESETS=$(grep '"class":"all"' "$OUT" | sed -n 's/.*"reset":\([0-9]*\).*/\1/p')
[ "$RESETS" = "0" ] || { echo "baseline run saw $RESETS connection resets"; exit 1; }
echo "wrote $OUT"
