#!/usr/bin/env bash
# Benchmark snapshot: runs the dependency-free measure/sinkhorn ablation
# timings (see crates/bench/src/bin/snapshot.rs) in release mode and writes
# them to BENCH_<date>.json at the repository root for trend tracking.
#
# Usage: scripts/bench_snapshot.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_$(date +%Y%m%d).json}

echo "== build (release) =="
cargo build --release -q -p hc-bench --bin snapshot

echo "== snapshot -> $OUT =="
./target/release/snapshot > "$OUT"

# Fail loudly on a truncated or malformed run rather than committing garbage.
grep -q '"schema":"hc-bench-snapshot/v2"' "$OUT" || { echo "bad snapshot"; exit 1; }
grep -q '"bench":"measure.characterize"' "$OUT" || { echo "missing measure results"; exit 1; }
grep -q '"bench":"measure.characterize_warm"' "$OUT" || { echo "missing warm measure results"; exit 1; }
grep -q '"bench":"sinkhorn.balance"' "$OUT" || { echo "missing sinkhorn results"; exit 1; }
grep -q '"bench":"deadline_overhead"' "$OUT" || { echo "missing deadline overhead lane"; exit 1; }
grep -q '"bench":"recorder_overhead"' "$OUT" || { echo "missing recorder overhead lane"; exit 1; }
grep -q '"bench":"profiler_overhead"' "$OUT" || { echo "missing profiler overhead lane"; exit 1; }
grep -q '"bench":"tsdb_overhead"' "$OUT" || { echo "missing tsdb overhead lane"; exit 1; }
grep -q '"bench":"session_warm_vs_cold"' "$OUT" || { echo "missing session warm-vs-cold lane"; exit 1; }
grep -q '"bench":"keepalive_vs_reconnect"' "$OUT" || { echo "missing keepalive-vs-reconnect lane"; exit 1; }
grep -q '"allocs_per_call":' "$OUT" || { echo "missing allocation counts"; exit 1; }
echo "wrote $OUT"
