#!/usr/bin/env bash
# Tier-1 verification: formatting and lint gates, offline release build, full
# test suite, and a live smoke test of the `hcm serve` daemon (start, POST
# /measure, GET /metrics, graceful shutdown). Exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== steady-state allocation check =="
# A warm Analyzer must serve repeated shapes with >= 90% fewer heap
# allocations than a cold fresh-workspace characterize, and the one-shot
# entry point must stay within its alloc cap (see snapshot --alloc-check).
./target/release/snapshot --alloc-check

echo "== bench + load trend gate =="
# Diffs the newest two committed BENCH_<date>.json snapshots (fails when any
# lane's best new sample is >20% over the old lane's worst) and the newest
# two LOAD_<date>.json capacity snapshots (fails on p99 > 2.5x or throughput
# < 2/3 of the previous run) — see bench_trend.sh.
scripts/bench_trend.sh

echo "== serve smoke test =="
HCM=./target/release/hcm
LOG=$(mktemp)
"$HCM" serve --addr 127.0.0.1:0 --workers 2 2>"$LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# The startup banner on stderr carries the bound (ephemeral) port.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never announced its address"; cat "$LOG"; exit 1; }
echo "serving on $ADDR"

CSV='task,m1,m2
t1,2.0,8.0
t2,6.0,3.0'

MEASURE_CODE=$(printf '%s' "$CSV" | curl -sS -D /tmp/verify-measure-headers.txt \
    -o /tmp/verify-measure.json -w '%{http_code}' \
    -X POST --data-binary @- "http://$ADDR/measure")
[ "$MEASURE_CODE" = "200" ] || { echo "POST /measure returned $MEASURE_CODE"; exit 1; }
grep -q '"mph":' /tmp/verify-measure.json || { echo "measure response lacks mph"; exit 1; }
grep -qi '^x-request-id:' /tmp/verify-measure-headers.txt \
    || { echo "measure response lacks X-Request-Id"; exit 1; }
echo "POST /measure 200: $(cat /tmp/verify-measure.json)"

METRICS_CODE=$(curl -sS -o /tmp/verify-metrics.json -w '%{http_code}' "http://$ADDR/metrics")
[ "$METRICS_CODE" = "200" ] || { echo "GET /metrics returned $METRICS_CODE"; exit 1; }
grep -q '"requests_total":' /tmp/verify-metrics.json || { echo "metrics response malformed"; exit 1; }
grep -q '"sinkhorn_balance_total":' /tmp/verify-metrics.json \
    || { echo "metrics response lacks merged library counters"; exit 1; }
echo "GET /metrics 200 (library counters merged)"

PROM_CODE=$(curl -sS -D /tmp/verify-prom-headers.txt -o /tmp/verify-metrics.prom \
    -w '%{http_code}' "http://$ADDR/metrics?format=prometheus")
[ "$PROM_CODE" = "200" ] || { echo "GET /metrics?format=prometheus returned $PROM_CODE"; exit 1; }
grep -qi '^content-type: text/plain; version=0.0.4' /tmp/verify-prom-headers.txt \
    || { echo "prometheus scrape has wrong content type"; exit 1; }
grep -q '^hc_serve_requests_total{endpoint="measure"}' /tmp/verify-metrics.prom \
    || { echo "prometheus scrape lacks hc_serve_requests_total"; exit 1; }
grep -q '_bucket{' /tmp/verify-metrics.prom \
    || { echo "prometheus scrape lacks histogram buckets"; exit 1; }
echo "GET /metrics?format=prometheus 200 (exposition format OK)"

# Keep-alive smoke: 20 mixed requests plus a final /metrics scrape issued by a
# single curl invocation, which reuses one connection for every transfer. The
# scrape rides the same connection, so its connection counters must show
# exactly one new accept and >= 19 keep-alive reuses.
A0=$(curl -sS "http://$ADDR/metrics" | sed -n 's/.*"accepted_total":\([0-9]*\).*/\1/p')
K0=$(curl -sS "http://$ADDR/metrics" | sed -n 's/.*"keepalive_requests_total":\([0-9]*\).*/\1/p')
[ -n "$A0" ] && [ -n "$K0" ] || { echo "metrics lack connection counters"; exit 1; }
KA_ARGS=()
for i in $(seq 1 20); do
    if [ $((i % 2)) -eq 0 ]; then
        KA_ARGS+=(--next -X POST --data-binary "$CSV" "http://$ADDR/measure")
    else
        KA_ARGS+=(--next "http://$ADDR/healthz")
    fi
done
KA_ARGS+=(--next "http://$ADDR/metrics")
KA_OUT=$(curl -sS "${KA_ARGS[@]:1}") || { echo "keep-alive batch failed"; exit 1; }
A1=$(printf '%s' "$KA_OUT" | sed -n 's/.*"accepted_total":\([0-9]*\).*/\1/p' | head -n1)
K1=$(printf '%s' "$KA_OUT" | sed -n 's/.*"keepalive_requests_total":\([0-9]*\).*/\1/p' | head -n1)
# The K0 baseline scrape used one extra connection; the batch must add 1.
[ "$A1" = "$((A0 + 2))" ] \
    || { echo "keep-alive batch accepted $((A1 - A0 - 1)) connections, want 1"; exit 1; }
[ "$((K1 - K0))" -ge 19 ] \
    || { echo "keep-alive batch reused only $((K1 - K0)) times, want >= 19"; exit 1; }
echo "keep-alive smoke OK (21 transfers, 1 accept, $((K1 - K0)) reuses)"

DEBUG_CODE=$(curl -sS -o /tmp/verify-debug.json -w '%{http_code}' "http://$ADDR/debug/requests")
[ "$DEBUG_CODE" = "200" ] || { echo "GET /debug/requests returned $DEBUG_CODE"; exit 1; }
REQ_ID=$(sed -n 's/.*"request_id":"\([^"]*\)".*/\1/p' /tmp/verify-debug.json | head -n1)
[ -n "$REQ_ID" ] || { echo "flight recorder holds no requests"; exit 1; }
curl -sS "http://$ADDR/debug/requests/$REQ_ID" | grep -q '"phases_us":' \
    || { echo "GET /debug/requests/$REQ_ID lacks phase timings"; exit 1; }
echo "GET /debug/requests/$REQ_ID 200 (flight record retrievable)"

# Live-session smoke: create -> 3 patches -> watch sees all 3 versions -> delete.
SESSION_CODE=$(printf '%s' "$CSV" | curl -sS -o /tmp/verify-session.json -w '%{http_code}' \
    -X POST --data-binary @- "http://$ADDR/session")
[ "$SESSION_CODE" = "200" ] || { echo "POST /session returned $SESSION_CODE"; exit 1; }
grep -q '"version":1' /tmp/verify-session.json || { echo "new session not at version 1"; exit 1; }
SID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' /tmp/verify-session.json)
[ -n "$SID" ] || { echo "session response lacks id"; exit 1; }
for i in 1 2 3; do
    CODE=$(printf 'cell,t1,m2,%s.5\n' "$i" | curl -sS -o /tmp/verify-patch.json \
        -w '%{http_code}' -X PATCH --data-binary @- "http://$ADDR/session/$SID/etc")
    [ "$CODE" = "200" ] || { echo "PATCH $i returned $CODE"; cat /tmp/verify-patch.json; exit 1; }
done
grep -q '"version":4' /tmp/verify-patch.json || { echo "3 patches did not reach version 4"; exit 1; }
grep -q '"warm":true' /tmp/verify-patch.json || { echo "patch did not recompute warm"; exit 1; }
WATCH_CODE=$(curl -sS -o /tmp/verify-watch.json -w '%{http_code}' \
    "http://$ADDR/session/$SID/watch?version=1")
[ "$WATCH_CODE" = "200" ] || { echo "watch returned $WATCH_CODE"; exit 1; }
DELTAS=$(grep -o '{"version":[0-9]*' /tmp/verify-watch.json | wc -l)
[ "$DELTAS" -eq 3 ] || { echo "watch saw $DELTAS deltas, want 3"; cat /tmp/verify-watch.json; exit 1; }
DELETE_CODE=$(curl -sS -o /dev/null -w '%{http_code}' -X DELETE "http://$ADDR/session/$SID")
[ "$DELETE_CODE" = "200" ] || { echo "DELETE returned $DELETE_CODE"; exit 1; }
GONE_CODE=$(curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/session/$SID")
[ "$GONE_CODE" = "404" ] || { echo "deleted session still answers $GONE_CODE"; exit 1; }
echo "session smoke OK (create -> 3 warm patches -> watch 3 deltas -> delete)"

# Timeseries smoke: the catalog must expose >= 3 retention tiers; two scrapes
# with traffic in between must show a monotone serve_requests_total with
# non-negative rate deltas; and `hcm top --once` must render a frame off the
# same store.
TS_CAT=$(curl -sS "http://$ADDR/debug/timeseries")
TIERS=$(printf '%s' "$TS_CAT" | grep -o '"step_s":' | wc -l)
[ "$TIERS" -ge 3 ] || { echo "timeseries catalog lists $TIERS tiers, want >= 3"; exit 1; }
printf '%s' "$TS_CAT" | grep -q '"serve_requests_total"' \
    || { echo "timeseries catalog lacks serve_requests_total"; exit 1; }
ts_points() { # last non-null value of serve_requests_total's points array
    curl -sS "http://$ADDR/debug/timeseries?series=serve_requests_total&window=120" \
        | sed -n 's/.*"points":\[\([^]]*\)\].*/\1/p' | tr ',' '\n' \
        | grep -v null | tail -n1
}
TSC1=$(ts_points)
printf '%s' "$CSV" | curl -sS -o /dev/null -X POST --data-binary @- "http://$ADDR/measure"
sleep 1.3 # let the 1 Hz collector absorb the new request
TSC2=$(ts_points)
[ -n "$TSC1" ] && [ -n "$TSC2" ] || { echo "timeseries carries no counter points"; exit 1; }
awk -v a="$TSC1" -v b="$TSC2" 'BEGIN { exit !(b >= a) }' \
    || { echo "serve_requests_total went backwards: $TSC1 -> $TSC2"; exit 1; }
RATES=$(curl -sS "http://$ADDR/debug/timeseries?series=serve_requests_total&window=120" \
    | sed -n 's/.*"rate_per_s":\[\([^]]*\)\].*/\1/p')
[ -n "$RATES" ] || { echo "counter query lacks rate_per_s"; exit 1; }
printf '%s' "$RATES" | grep -q -- '-' && { echo "negative rate delta: $RATES"; exit 1; }
"$HCM" top --once --addr "$ADDR" > /tmp/verify-top.txt \
    || { echo "hcm top --once failed"; cat /tmp/verify-top.txt; exit 1; }
grep -q 'hcm top' /tmp/verify-top.txt || { echo "top frame lacks header"; exit 1; }
grep -q 'health ok' /tmp/verify-top.txt || { echo "top frame lacks health"; exit 1; }
grep -q 'req/s' /tmp/verify-top.txt || { echo "top frame lacks req/s row"; exit 1; }
echo "timeseries smoke OK ($TIERS tiers, counter $TSC1 -> $TSC2, top frame rendered)"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$SERVE_PID"
trap - EXIT
echo "graceful shutdown OK"

echo "== chaos smoke test =="
# A server whose workers are killed after every 7th response must keep
# answering every request (no connection resets), respawn the dead workers,
# and account for it all in /metrics.
CHAOS_LOG=$(mktemp)
HC_FAILPOINT='worker.idle:panic:7' "$HCM" serve --addr 127.0.0.1:0 --workers 2 \
    --request-timeout-ms 30000 2>"$CHAOS_LOG" &
CHAOS_PID=$!
trap 'kill "$CHAOS_PID" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$CHAOS_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "chaos server never announced its address"; cat "$CHAOS_LOG"; exit 1; }
echo "chaos server on $ADDR (worker.idle:panic:7 armed)"

# 50 mixed requests: good matrices (varying) and malformed bodies. Every one
# must get an HTTP status — curl fails (exit != 0) on a reset connection.
for i in $(seq 1 50); do
    if [ $((i % 5)) -eq 0 ]; then
        BODY='definitely,not
a_matrix'
        WANT=400
    else
        BODY="task,m1,m2
t1,$i.0,8.0
t2,6.0,3.5"
        WANT=200
    fi
    CODE=$(printf '%s' "$BODY" | curl -sS -o /dev/null -w '%{http_code}' \
        -X POST --data-binary @- "http://$ADDR/measure") \
        || { echo "chaos request $i: connection failed"; exit 1; }
    [ "$CODE" = "$WANT" ] || { echo "chaos request $i: got $CODE, want $WANT"; exit 1; }
done
echo "50/50 chaos requests answered (0 connection resets)"

# The same drill over keep-alive: 28 alternating good/malformed requests in
# one curl invocation (one reused connection). Worker panics land between
# responses, so every transfer must still complete with its proper status,
# and the malformed 400s must not wedge or close the shared connection.
CA0=$(curl -sS "http://$ADDR/metrics" | sed -n 's/.*"accepted_total":\([0-9]*\).*/\1/p')
KA_CHAOS_ARGS=()
for i in $(seq 1 28); do
    if [ $((i % 2)) -eq 0 ]; then
        KA_CHAOS_ARGS+=(--next -i -X POST --data-binary 'definitely,not
a_matrix' "http://$ADDR/measure")
    else
        KA_CHAOS_ARGS+=(--next -i -X POST --data-binary "task,m1,m2
t1,$i.0,8.0
t2,6.0,3.5" "http://$ADDR/measure")
    fi
done
KA_CHAOS=$(curl -sS -i "${KA_CHAOS_ARGS[@]:1}") \
    || { echo "keep-alive chaos batch: connection failed"; exit 1; }
# Bodies carry no trailing newline, so the next transfer's status line is
# glued onto the previous body; count lines containing the token instead of
# anchoring at line start (each status line still terminates its own line).
OK_COUNT=$(printf '%s' "$KA_CHAOS" | grep -c 'HTTP/1\.1 200 ' || true)
BAD_COUNT=$(printf '%s' "$KA_CHAOS" | grep -c 'HTTP/1\.1 400 ' || true)
[ "$OK_COUNT" = "14" ] && [ "$BAD_COUNT" = "14" ] \
    || { echo "keep-alive chaos: got $OK_COUNT x200 + $BAD_COUNT x400, want 14 + 14"; exit 1; }
CA1=$(curl -sS "http://$ADDR/metrics" | sed -n 's/.*"accepted_total":\([0-9]*\).*/\1/p')
# CA0's and CA1's own scrape connections account for 2 of the delta.
[ "$CA1" = "$((CA0 + 2))" ] \
    || { echo "keep-alive chaos used $((CA1 - CA0 - 1)) connections, want 1"; exit 1; }
echo "28/28 keep-alive chaos requests answered on one connection"

curl -sS -o /tmp/verify-chaos-metrics.json "http://$ADDR/metrics"
RESPAWNS=$(sed -n 's/.*"worker_respawns_total":\([0-9]*\).*/\1/p' /tmp/verify-chaos-metrics.json)
[ -n "$RESPAWNS" ] && [ "$RESPAWNS" -ge 1 ] \
    || { echo "expected worker_respawns_total >= 1, got '$RESPAWNS'"; exit 1; }
grep -q '"panics_total":' /tmp/verify-chaos-metrics.json \
    || { echo "metrics lack panics_total"; exit 1; }
grep -q '"deadline_exceeded_total":' /tmp/verify-chaos-metrics.json \
    || { echo "metrics lack deadline_exceeded_total"; exit 1; }
echo "worker_respawns_total=$RESPAWNS; fault counters present"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$CHAOS_PID"
trap - EXIT
echo "chaos smoke OK"

echo "== session warm-fallback chaos =="
# A panic injected into every 200th Sinkhorn iteration must be contained by
# the session engine as a silent cold fallback: every PATCH still answers
# 200 and session_warm_fallback_total ticks. (The cold create stays well
# under 200 iterations; warm patches fire a few per request, so hit 200 is
# guaranteed to land inside some warm attempt.)
FB_LOG=$(mktemp)
HC_FAILPOINT='sinkhorn.iteration:panic:200' "$HCM" serve --addr 127.0.0.1:0 \
    --workers 2 2>"$FB_LOG" &
FB_PID=$!
trap 'kill "$FB_PID" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$FB_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "fallback server never announced its address"; cat "$FB_LOG"; exit 1; }
echo "fallback server on $ADDR (sinkhorn.iteration:panic:200 armed)"

printf '%s' "$CSV" | curl -sS -o /tmp/verify-fb-session.json \
    -X POST --data-binary @- "http://$ADDR/session"
SID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' /tmp/verify-fb-session.json)
[ -n "$SID" ] || { echo "fallback session create failed"; cat /tmp/verify-fb-session.json; exit 1; }
FELL_BACK=0
for i in $(seq 1 250); do
    CODE=$(printf 'cell,t1,m1,%s.5\n' "$((2 + i % 6))" | curl -sS \
        -o /tmp/verify-fb-patch.json -w '%{http_code}' \
        -X PATCH --data-binary @- "http://$ADDR/session/$SID/etc") \
        || { echo "fallback patch $i: connection failed"; exit 1; }
    [ "$CODE" = "200" ] || { echo "fallback patch $i returned $CODE"; cat /tmp/verify-fb-patch.json; exit 1; }
    if grep -q '"fallback":true' /tmp/verify-fb-patch.json; then
        FELL_BACK=1
        break
    fi
done
[ "$FELL_BACK" = "1" ] || { echo "armed failpoint never produced a warm fallback"; exit 1; }
curl -sS -o /tmp/verify-fb-metrics.json "http://$ADDR/metrics"
FALLBACKS=$(sed -n 's/.*"session_warm_fallback_total":\([0-9]*\).*/\1/p' /tmp/verify-fb-metrics.json)
[ -n "$FALLBACKS" ] && [ "$FALLBACKS" -ge 1 ] \
    || { echo "expected session_warm_fallback_total >= 1, got '$FALLBACKS'"; exit 1; }
echo "warm fallback contained after $i patches (session_warm_fallback_total=$FALLBACKS)"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$FB_PID"
trap - EXIT
echo "session fallback chaos OK"

echo "== profiling smoke test =="
# A profiling server under mixed load must serve a folded profile that
# resolves into the Sinkhorn and SVD kernel phases, and stay healthy.
PROF_LOG=$(mktemp)
"$HCM" serve --addr 127.0.0.1:0 --workers 2 --profile-hz 997 2>"$PROF_LOG" &
PROF_PID=$!
trap 'kill "$PROF_PID" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$PROF_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "profiling server never announced its address"; cat "$PROF_LOG"; exit 1; }
echo "profiling server on $ADDR (--profile-hz 997)"

# Generates a matrix big enough that the kernels hold spans across sampler
# ticks; the salt varies the cells so the result cache cannot absorb the load.
gen_csv() { # gen_csv TASKS MACHINES SALT
    awk -v n="$1" -v m="$2" -v salt="$3" 'BEGIN {
        printf "task"; for (j = 0; j < m; j++) printf ",m%d", j; printf "\n";
        for (t = 0; t < n; t++) {
            printf "t%d", t;
            for (j = 0; j < m; j++) printf ",%.2f", 1 + ((t*31 + j*17 + salt*7) % 97) / 10.0;
            printf "\n";
        }
    }'
}

# 50 mixed requests across the compute endpoints.
for i in $(seq 1 50); do
    case $((i % 3)) in
        0) TARGET="/measure";                   T=128; M=64 ;;
        1) TARGET="/structure";                 T=96;  M=48 ;;
        *) TARGET="/schedule?heuristic=min-min"; T=64; M=32 ;;
    esac
    CODE=$(gen_csv "$T" "$M" "$i" | curl -sS -o /dev/null -w '%{http_code}' \
        -X POST --data-binary @- "http://$ADDR$TARGET") \
        || { echo "profiling load request $i: connection failed"; exit 1; }
    [ "$CODE" = "200" ] || { echo "profiling load request $i: got $CODE"; exit 1; }
done
echo "50/50 profiling load requests answered"

PROFILE_CODE=$(curl -sS -o /tmp/verify-profile.folded -w '%{http_code}' \
    "http://$ADDR/debug/profile?seconds=10")
[ "$PROFILE_CODE" = "200" ] || { echo "GET /debug/profile returned $PROFILE_CODE"; exit 1; }
[ -s /tmp/verify-profile.folded ] || { echo "folded profile is empty"; exit 1; }
grep -q 'sinkhorn' /tmp/verify-profile.folded \
    || { echo "profile lacks sinkhorn frames"; cat /tmp/verify-profile.folded; exit 1; }
grep -q 'svd' /tmp/verify-profile.folded \
    || { echo "profile lacks svd frames"; cat /tmp/verify-profile.folded; exit 1; }
echo "folded profile OK ($(wc -l < /tmp/verify-profile.folded) stacks, sinkhorn + svd resolved)"

curl -sS "http://$ADDR/healthz" | grep -q '"status":"ok"' \
    || { echo "profiling server healthz not ok"; exit 1; }
echo "healthz ok under profiling"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$PROF_PID"
trap - EXIT
echo "profiling smoke OK"

echo "== slo burn-rate chaos =="
# Every Sinkhorn iteration sleeping past the request deadline turns all
# /measure traffic into 504s: the fast-burn alert must fire and flip
# /healthz to degraded, visible in both /metrics formats.
SLO_LOG=$(mktemp)
HC_FAILPOINT='sinkhorn.iteration:delay:50' "$HCM" serve --addr 127.0.0.1:0 \
    --workers 2 --request-timeout-ms 40 --slo-window-s 1 2>"$SLO_LOG" &
SLO_PID=$!
trap 'kill "$SLO_PID" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$SLO_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "slo server never announced its address"; cat "$SLO_LOG"; exit 1; }
echo "slo server on $ADDR (sinkhorn.iteration:delay:50, --request-timeout-ms 40)"

DEGRADED=0
for i in $(seq 1 40); do
    BODY="task,m1,m2
t1,$i.0,8.0
t2,6.0,3.5"
    CODE=$(printf '%s' "$BODY" | curl -sS -o /dev/null -w '%{http_code}' \
        -X POST --data-binary @- "http://$ADDR/measure") \
        || { echo "slo burn request $i: connection failed"; exit 1; }
    [ "$CODE" = "504" ] || { echo "slo burn request $i: got $CODE, want 504"; exit 1; }
    if curl -sS "http://$ADDR/healthz" | grep -q '"status":"degraded"'; then
        DEGRADED=1
        break
    fi
done
[ "$DEGRADED" = "1" ] || { echo "sustained 504s never flipped healthz to degraded"; exit 1; }
echo "healthz degraded after $i sustained 504s"

curl -sS -o /tmp/verify-slo-metrics.json "http://$ADDR/metrics"
grep -q '"degraded":true' /tmp/verify-slo-metrics.json \
    || { echo "metrics JSON lacks degraded:true"; exit 1; }
grep -q '"fast_alert":true' /tmp/verify-slo-metrics.json \
    || { echo "metrics JSON lacks firing fast alert"; exit 1; }
curl -sS -o /tmp/verify-slo-metrics.prom "http://$ADDR/metrics?format=prometheus"
grep -q '^hc_serve_slo_alert_firing{slo="availability",alert="fast"} 1' /tmp/verify-slo-metrics.prom \
    || { echo "prometheus exposition lacks firing fast alert"; exit 1; }
grep -q '^hc_serve_slo_degraded 1' /tmp/verify-slo-metrics.prom \
    || { echo "prometheus exposition lacks degraded gauge"; exit 1; }
echo "fast-burn alert visible in JSON and Prometheus expositions"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$SLO_PID"
trap - EXIT
echo "slo chaos OK"

echo "== overload loadgen smoke =="
# A 2x-capacity open-loop burst (sinkhorn slowed by failpoint, so capacity is
# known-low) must walk the admission ladder ok -> shedding -> ok: requests
# are shed as typed 503s rather than queued without bound (bounded p99 on the
# admitted ones), no connection is ever reset, the pool scales up, and the
# ladder recovers once the burst ends.
OL_LOG=$(mktemp)
HC_FAILPOINT='sinkhorn.iteration:delay:2' "$HCM" serve --addr 127.0.0.1:0 \
    --workers 1 --workers-min 1 --workers-max 2 --target-queue-delay-ms 10 \
    2>"$OL_LOG" &
OL_PID=$!
trap 'kill "$OL_PID" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$OL_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "overload server never announced its address"; cat "$OL_LOG"; exit 1; }
echo "overload server on $ADDR (sinkhorn.iteration:delay:2, --target-queue-delay-ms 10)"

curl -sS "http://$ADDR/healthz" | grep -q '"overload_state":"ok"' \
    || { echo "healthz lacks overload_state ok before the burst"; exit 1; }

./target/release/loadgen --addr "$ADDR" --rps 120 --duration-s 6 --connections 12 \
    --seed 42 --shape 32x32 --batch-parts 2 \
    --mix measure=85,cachehit=5,healthz=5,batch=5 > /tmp/verify-load.json \
    || { echo "loadgen run failed"; exit 1; }
ALL_LINE=$(grep '"class":"all"' /tmp/verify-load.json)
load_num() { printf '%s' "$ALL_LINE" | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"; }
RESETS=$(load_num reset)
CONNECT_FAILS=$(load_num connect_fail)
SHED=$(load_num http_503)
OKS=$(load_num ok)
P99=$(load_num p99_us)
[ "$RESETS" = "0" ] || { echo "burst saw $RESETS connection resets, want 0"; exit 1; }
[ "$CONNECT_FAILS" = "0" ] || { echo "burst saw $CONNECT_FAILS connect failures"; exit 1; }
[ -n "$SHED" ] && [ "$SHED" -ge 1 ] \
    || { echo "2x-capacity burst shed nothing (http_503=$SHED)"; exit 1; }
[ -n "$OKS" ] && [ "$OKS" -ge 1 ] || { echo "burst admitted nothing"; exit 1; }
# Admitted requests must see bounded delay (shed, don't queue): p99 from
# *intended* send time stays well under what an unbounded queue would build.
[ -n "$P99" ] && [ "$P99" -le 1500000 ] \
    || { echo "admitted p99 ${P99}us exceeds 1.5s — queue delay is unbounded"; exit 1; }
echo "burst OK: $OKS admitted, $SHED shed, 0 resets, p99 ${P99}us"

RECOVERED=0
for _ in $(seq 1 100); do
    if curl -sS "http://$ADDR/healthz" | grep -q '"overload_state":"ok"'; then
        RECOVERED=1
        break
    fi
    sleep 0.2
done
[ "$RECOVERED" = "1" ] || { echo "ladder never recovered to ok after the burst"; exit 1; }

curl -sS -o /tmp/verify-ol-metrics.json "http://$ADDR/metrics"
ol_metric() { sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p" /tmp/verify-ol-metrics.json; }
SHEDDING_ENTERED=$(ol_metric shedding_entered_total)
SCALE_UP=$(ol_metric worker_scale_up_total)
[ -n "$SHEDDING_ENTERED" ] && [ "$SHEDDING_ENTERED" -ge 1 ] \
    || { echo "ladder never reached shedding (shedding_entered_total=$SHEDDING_ENTERED)"; exit 1; }
[ -n "$SCALE_UP" ] && [ "$SCALE_UP" -ge 1 ] \
    || { echo "queue delay never scaled the pool up (worker_scale_up_total=$SCALE_UP)"; exit 1; }
grep -q '"overload":{"state":"ok"' /tmp/verify-ol-metrics.json \
    || { echo "metrics lack recovered overload block"; exit 1; }
echo "ladder walked ok -> shedding -> ok (shedding_entered_total=$SHEDDING_ENTERED, worker_scale_up_total=$SCALE_UP)"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$OL_PID"
trap - EXIT
echo "overload loadgen smoke OK"

echo "== verify: all green =="
