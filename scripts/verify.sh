#!/usr/bin/env bash
# Tier-1 verification: formatting and lint gates, offline release build, full
# test suite, and a live smoke test of the `hcm serve` daemon (start, POST
# /measure, GET /metrics, graceful shutdown). Exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== steady-state allocation check =="
# A warm Analyzer must serve repeated shapes with >= 90% fewer heap
# allocations than the one-shot characterize path (see snapshot --alloc-check).
./target/release/snapshot --alloc-check

echo "== serve smoke test =="
HCM=./target/release/hcm
LOG=$(mktemp)
"$HCM" serve --addr 127.0.0.1:0 --workers 2 2>"$LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# The startup banner on stderr carries the bound (ephemeral) port.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never announced its address"; cat "$LOG"; exit 1; }
echo "serving on $ADDR"

CSV='task,m1,m2
t1,2.0,8.0
t2,6.0,3.0'

MEASURE_CODE=$(printf '%s' "$CSV" | curl -sS -D /tmp/verify-measure-headers.txt \
    -o /tmp/verify-measure.json -w '%{http_code}' \
    -X POST --data-binary @- "http://$ADDR/measure")
[ "$MEASURE_CODE" = "200" ] || { echo "POST /measure returned $MEASURE_CODE"; exit 1; }
grep -q '"mph":' /tmp/verify-measure.json || { echo "measure response lacks mph"; exit 1; }
grep -qi '^x-request-id:' /tmp/verify-measure-headers.txt \
    || { echo "measure response lacks X-Request-Id"; exit 1; }
echo "POST /measure 200: $(cat /tmp/verify-measure.json)"

METRICS_CODE=$(curl -sS -o /tmp/verify-metrics.json -w '%{http_code}' "http://$ADDR/metrics")
[ "$METRICS_CODE" = "200" ] || { echo "GET /metrics returned $METRICS_CODE"; exit 1; }
grep -q '"requests_total":' /tmp/verify-metrics.json || { echo "metrics response malformed"; exit 1; }
grep -q '"sinkhorn_balance_total":' /tmp/verify-metrics.json \
    || { echo "metrics response lacks merged library counters"; exit 1; }
echo "GET /metrics 200 (library counters merged)"

PROM_CODE=$(curl -sS -D /tmp/verify-prom-headers.txt -o /tmp/verify-metrics.prom \
    -w '%{http_code}' "http://$ADDR/metrics?format=prometheus")
[ "$PROM_CODE" = "200" ] || { echo "GET /metrics?format=prometheus returned $PROM_CODE"; exit 1; }
grep -qi '^content-type: text/plain; version=0.0.4' /tmp/verify-prom-headers.txt \
    || { echo "prometheus scrape has wrong content type"; exit 1; }
grep -q '^hc_serve_requests_total{endpoint="measure"}' /tmp/verify-metrics.prom \
    || { echo "prometheus scrape lacks hc_serve_requests_total"; exit 1; }
grep -q '_bucket{' /tmp/verify-metrics.prom \
    || { echo "prometheus scrape lacks histogram buckets"; exit 1; }
echo "GET /metrics?format=prometheus 200 (exposition format OK)"

DEBUG_CODE=$(curl -sS -o /tmp/verify-debug.json -w '%{http_code}' "http://$ADDR/debug/requests")
[ "$DEBUG_CODE" = "200" ] || { echo "GET /debug/requests returned $DEBUG_CODE"; exit 1; }
REQ_ID=$(sed -n 's/.*"request_id":"\([^"]*\)".*/\1/p' /tmp/verify-debug.json | head -n1)
[ -n "$REQ_ID" ] || { echo "flight recorder holds no requests"; exit 1; }
curl -sS "http://$ADDR/debug/requests/$REQ_ID" | grep -q '"phases_us":' \
    || { echo "GET /debug/requests/$REQ_ID lacks phase timings"; exit 1; }
echo "GET /debug/requests/$REQ_ID 200 (flight record retrievable)"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$SERVE_PID"
trap - EXIT
echo "graceful shutdown OK"

echo "== chaos smoke test =="
# A server whose workers are killed after every 7th response must keep
# answering every request (no connection resets), respawn the dead workers,
# and account for it all in /metrics.
CHAOS_LOG=$(mktemp)
HC_FAILPOINT='worker.idle:panic:7' "$HCM" serve --addr 127.0.0.1:0 --workers 2 \
    --request-timeout-ms 30000 2>"$CHAOS_LOG" &
CHAOS_PID=$!
trap 'kill "$CHAOS_PID" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$CHAOS_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "chaos server never announced its address"; cat "$CHAOS_LOG"; exit 1; }
echo "chaos server on $ADDR (worker.idle:panic:7 armed)"

# 50 mixed requests: good matrices (varying) and malformed bodies. Every one
# must get an HTTP status — curl fails (exit != 0) on a reset connection.
for i in $(seq 1 50); do
    if [ $((i % 5)) -eq 0 ]; then
        BODY='definitely,not
a_matrix'
        WANT=400
    else
        BODY="task,m1,m2
t1,$i.0,8.0
t2,6.0,3.5"
        WANT=200
    fi
    CODE=$(printf '%s' "$BODY" | curl -sS -o /dev/null -w '%{http_code}' \
        -X POST --data-binary @- "http://$ADDR/measure") \
        || { echo "chaos request $i: connection failed"; exit 1; }
    [ "$CODE" = "$WANT" ] || { echo "chaos request $i: got $CODE, want $WANT"; exit 1; }
done
echo "50/50 chaos requests answered (0 connection resets)"

curl -sS -o /tmp/verify-chaos-metrics.json "http://$ADDR/metrics"
RESPAWNS=$(sed -n 's/.*"worker_respawns_total":\([0-9]*\).*/\1/p' /tmp/verify-chaos-metrics.json)
[ -n "$RESPAWNS" ] && [ "$RESPAWNS" -ge 1 ] \
    || { echo "expected worker_respawns_total >= 1, got '$RESPAWNS'"; exit 1; }
grep -q '"panics_total":' /tmp/verify-chaos-metrics.json \
    || { echo "metrics lack panics_total"; exit 1; }
grep -q '"deadline_exceeded_total":' /tmp/verify-chaos-metrics.json \
    || { echo "metrics lack deadline_exceeded_total"; exit 1; }
echo "worker_respawns_total=$RESPAWNS; fault counters present"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$CHAOS_PID"
trap - EXIT
echo "chaos smoke OK"

echo "== verify: all green =="
