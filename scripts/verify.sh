#!/usr/bin/env bash
# Tier-1 verification: formatting and lint gates, offline release build, full
# test suite, and a live smoke test of the `hcm serve` daemon (start, POST
# /measure, GET /metrics, graceful shutdown). Exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== steady-state allocation check =="
# A warm Analyzer must serve repeated shapes with >= 90% fewer heap
# allocations than the one-shot characterize path (see snapshot --alloc-check).
./target/release/snapshot --alloc-check

echo "== serve smoke test =="
HCM=./target/release/hcm
LOG=$(mktemp)
"$HCM" serve --addr 127.0.0.1:0 --workers 2 2>"$LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# The startup banner on stderr carries the bound (ephemeral) port.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never announced its address"; cat "$LOG"; exit 1; }
echo "serving on $ADDR"

CSV='task,m1,m2
t1,2.0,8.0
t2,6.0,3.0'

MEASURE_CODE=$(printf '%s' "$CSV" | curl -sS -D /tmp/verify-measure-headers.txt \
    -o /tmp/verify-measure.json -w '%{http_code}' \
    -X POST --data-binary @- "http://$ADDR/measure")
[ "$MEASURE_CODE" = "200" ] || { echo "POST /measure returned $MEASURE_CODE"; exit 1; }
grep -q '"mph":' /tmp/verify-measure.json || { echo "measure response lacks mph"; exit 1; }
grep -qi '^x-request-id:' /tmp/verify-measure-headers.txt \
    || { echo "measure response lacks X-Request-Id"; exit 1; }
echo "POST /measure 200: $(cat /tmp/verify-measure.json)"

METRICS_CODE=$(curl -sS -o /tmp/verify-metrics.json -w '%{http_code}' "http://$ADDR/metrics")
[ "$METRICS_CODE" = "200" ] || { echo "GET /metrics returned $METRICS_CODE"; exit 1; }
grep -q '"requests_total":' /tmp/verify-metrics.json || { echo "metrics response malformed"; exit 1; }
grep -q '"sinkhorn_balance_total":' /tmp/verify-metrics.json \
    || { echo "metrics response lacks merged library counters"; exit 1; }
echo "GET /metrics 200 (library counters merged)"

curl -sS "http://$ADDR/quitquitquit" >/dev/null
wait "$SERVE_PID"
trap - EXIT
echo "graceful shutdown OK"

echo "== verify: all green =="
