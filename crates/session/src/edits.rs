//! The line-oriented edit language accepted by `PATCH /session/{id}/etc`.
//!
//! The server has no JSON parser (the whole stack is registry-free), so edits
//! use the same CSV-flavoured plain text as the rest of the wire surface. One
//! edit per line, comma-separated, `#` comments and blank lines ignored:
//!
//! ```text
//! cell,<task>,<machine>,<value>     # one entry
//! row,<task>,v1,v2,...,vM           # a whole task row (M values)
//! col,<machine>,v1,v2,...,vT        # a whole machine column (T values)
//! ```
//!
//! `<task>`/`<machine>` resolve against the session's registered names first
//! (`t3`, `gpu-a`, ...), falling back to a 1-based index when the token is a
//! plain integer. Values are in the units the session was registered with:
//! ETC seconds by default (converted reciprocally, `inf` → "cannot run"), raw
//! ECS when the session was created with `?ecs=1`.

use std::fmt;

/// One parsed, index-resolved edit in *registered* units.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Replace a single entry.
    Cell {
        task: usize,
        machine: usize,
        value: f64,
    },
    /// Replace a whole task row.
    Row { task: usize, values: Vec<f64> },
    /// Replace a whole machine column.
    Col { machine: usize, values: Vec<f64> },
}

impl Edit {
    /// Number of entries this edit touches.
    pub fn cells(&self) -> usize {
        match self {
            Edit::Cell { .. } => 1,
            Edit::Row { values, .. } | Edit::Col { values, .. } => values.len(),
        }
    }
}

/// A parse failure, pointing at the offending 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct EditParseError {
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for EditParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edit line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for EditParseError {}

fn err(line: usize, reason: impl Into<String>) -> EditParseError {
    EditParseError {
        line,
        reason: reason.into(),
    }
}

/// Resolves a task/machine token: exact name match first, then a 1-based
/// index for plain integers.
fn resolve(
    token: &str,
    names: &[String],
    what: &str,
    line: usize,
) -> Result<usize, EditParseError> {
    if let Some(idx) = names.iter().position(|n| n == token) {
        return Ok(idx);
    }
    if let Ok(one_based) = token.parse::<usize>() {
        if one_based >= 1 && one_based <= names.len() {
            return Ok(one_based - 1);
        }
        return Err(err(
            line,
            format!("{what} index {one_based} out of range 1..={}", names.len()),
        ));
    }
    Err(err(line, format!("unknown {what} {token:?}")))
}

fn parse_value(token: &str, line: usize) -> Result<f64, EditParseError> {
    let v: f64 = token
        .trim()
        .parse()
        .map_err(|_| err(line, format!("bad numeric value {token:?}")))?;
    if v.is_nan() {
        return Err(err(line, "NaN is not a valid entry"));
    }
    Ok(v)
}

fn parse_values(
    tokens: &[&str],
    expected: usize,
    what: &str,
    line: usize,
) -> Result<Vec<f64>, EditParseError> {
    if tokens.len() != expected {
        return Err(err(
            line,
            format!("{what} edit needs {expected} values, got {}", tokens.len()),
        ));
    }
    tokens.iter().map(|t| parse_value(t, line)).collect()
}

/// Parses an edit document against the session's registered names.
pub fn parse_edits(
    text: &str,
    task_names: &[String],
    machine_names: &[String],
) -> Result<Vec<Edit>, EditParseError> {
    let mut edits = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        match fields[0] {
            "cell" => {
                if fields.len() != 4 {
                    return Err(err(line, "cell edit needs: cell,<task>,<machine>,<value>"));
                }
                let task = resolve(fields[1], task_names, "task", line)?;
                let machine = resolve(fields[2], machine_names, "machine", line)?;
                let value = parse_value(fields[3], line)?;
                edits.push(Edit::Cell {
                    task,
                    machine,
                    value,
                });
            }
            "row" => {
                if fields.len() < 2 {
                    return Err(err(line, "row edit needs: row,<task>,v1,...,vM"));
                }
                let task = resolve(fields[1], task_names, "task", line)?;
                let values = parse_values(&fields[2..], machine_names.len(), "row", line)?;
                edits.push(Edit::Row { task, values });
            }
            "col" => {
                if fields.len() < 2 {
                    return Err(err(line, "col edit needs: col,<machine>,v1,...,vT"));
                }
                let machine = resolve(fields[1], machine_names, "machine", line)?;
                let values = parse_values(&fields[2..], task_names.len(), "col", line)?;
                edits.push(Edit::Col { machine, values });
            }
            op => return Err(err(line, format!("unknown edit op {op:?} (cell|row|col)"))),
        }
    }
    if edits.is_empty() {
        return Err(err(0, "edit body contains no edits"));
    }
    Ok(edits)
}

/// Converts one registered-units value to ECS space. ETC is reciprocal speed:
/// `inf` seconds means "cannot run" (ECS 0), and 0 seconds is rejected
/// upstream by [`hc_core::ecs::Ecs::set`] validation via the resulting `inf`.
pub fn to_ecs_value(value: f64, etc_units: bool) -> f64 {
    if etc_units {
        if value.is_infinite() {
            0.0
        } else if value == 0.0 {
            f64::INFINITY
        } else {
            1.0 / value
        }
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(prefix: &str, n: usize) -> Vec<String> {
        (1..=n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn parses_cell_row_col_with_names_and_indices() {
        let t = names("t", 3);
        let m = names("m", 2);
        let doc = "# comment\n\ncell,t1,m2,4.5\nrow,2,1.0,2.0\ncol,m1,9,8,7\n";
        let edits = parse_edits(doc, &t, &m).unwrap();
        assert_eq!(
            edits,
            vec![
                Edit::Cell {
                    task: 0,
                    machine: 1,
                    value: 4.5
                },
                Edit::Row {
                    task: 1,
                    values: vec![1.0, 2.0]
                },
                Edit::Col {
                    machine: 0,
                    values: vec![9.0, 8.0, 7.0]
                },
            ]
        );
        assert_eq!(edits.iter().map(Edit::cells).sum::<usize>(), 6);
    }

    #[test]
    fn rejects_bad_lines_with_line_numbers() {
        let t = names("t", 2);
        let m = names("m", 2);
        for (doc, needle, line) in [
            ("cell,t1,m1", "cell edit needs", 1),
            ("\nrow,t9,1,2", "unknown task", 2),
            ("row,3,1,2", "out of range", 1),
            ("row,t1,1", "needs 2 values", 1),
            ("cell,t1,m1,abc", "bad numeric", 1),
            ("cell,t1,m1,nan", "NaN", 1),
            ("swap,t1,m1,1", "unknown edit op", 1),
            ("# only comments\n", "no edits", 0),
        ] {
            let e = parse_edits(doc, &t, &m).unwrap_err();
            assert!(e.reason.contains(needle), "{doc:?} -> {e}");
            assert_eq!(e.line, line, "{doc:?}");
        }
    }

    #[test]
    fn etc_conversion_is_reciprocal_with_inf_as_zero() {
        assert_eq!(to_ecs_value(4.0, true), 0.25);
        assert_eq!(to_ecs_value(f64::INFINITY, true), 0.0);
        assert_eq!(to_ecs_value(0.0, true), f64::INFINITY);
        assert_eq!(to_ecs_value(4.0, false), 4.0);
    }
}
