//! Sharded in-memory session store with TTL + LRU eviction and long-poll
//! watch support.
//!
//! Sessions live in 8 hash shards, each guarded by its own mutex so
//! independent sessions never contend. Every session is an
//! `Arc<SessionSlot>` holding its own state mutex + condvar: lookups clone
//! the `Arc` out of the shard and drop the shard lock before touching the
//! (potentially long-held) state lock, so a slow recompute on one session
//! never blocks creates or lookups of others.
//!
//! * **TTL** is enforced lazily — an expired session found on access is
//!   removed and reported as not-found — plus a sweep on every create.
//! * **LRU** eviction kicks in when `max_sessions` is reached: the slot with
//!   the globally oldest `last_used` stamp is dropped.
//! * **Watch** long-polls on the slot condvar in short slices until the
//!   version advances, the store drains, the session dies, or the caller's
//!   deadline expires.
//! * **Drain** flips a flag and wakes every watcher so shutdown never waits
//!   out a long-poll deadline.
//!
//! All locks go through `hc_obs::sync` poison-recovering helpers: a worker
//! panicking mid-recompute (see the serve chaos harness) poisons nothing
//! permanently, and versions stay monotonic because they live here, not in
//! any worker.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hc_core::ecs::Ecs;
use hc_core::error::MeasureError;
use hc_core::report::MeasureReport;
use hc_linalg::Budget;
use hc_obs::sync::{lock_recover, wait_timeout_recover};

use crate::edits::{to_ecs_value, Edit};
use crate::engine::{RecomputeStats, SessionEngine};

const SHARDS: usize = 8;
/// Deltas retained per session; watchers further behind get `truncated`.
const DELTA_RING: usize = 32;
/// Condvar wait slice — bounds how stale a drain/deadline check can be.
const WATCH_SLICE: Duration = Duration::from_millis(100);

/// One retained measure delta (the diff a watcher receives).
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub version: u64,
    pub mph: f64,
    pub tdh: f64,
    pub tma: f64,
    pub d_mph: f64,
    pub d_tdh: f64,
    pub d_tma: f64,
    pub stats: RecomputeStats,
}

/// A point-in-time copy of a session, safe to render outside any lock.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    pub id: String,
    pub version: u64,
    pub report: MeasureReport,
    pub task_names: Vec<String>,
    pub machine_names: Vec<String>,
    pub stats: RecomputeStats,
    pub etc_units: bool,
}

/// Outcome of a watch long-poll.
#[derive(Debug, Clone)]
pub enum WatchOutcome {
    /// The version advanced past the watermark; deltas since it (oldest
    /// first). `truncated` means the ring dropped some intermediate versions.
    Changed {
        snapshot: Box<SessionSnapshot>,
        deltas: Vec<Delta>,
        truncated: bool,
    },
    /// Deadline expired with no change.
    TimedOut { version: u64 },
}

/// Outcome of a non-blocking watch attempt ([`SessionStore::try_watch`]).
#[derive(Debug, Clone)]
pub enum TryWatch {
    /// The version already advanced; same payload as
    /// [`WatchOutcome::Changed`].
    Changed {
        snapshot: Box<SessionSnapshot>,
        deltas: Vec<Delta>,
        truncated: bool,
    },
    /// Nothing past the watermark yet; the caller may park a
    /// [`WatchWaker`] via [`SessionStore::add_waker`] and retry when fired.
    NotYet { version: u64 },
}

/// A one-shot callback a parked watcher leaves on a session; fired when the
/// session changes, is removed, or the store drains.
///
/// Wakers are cancellable from the other side (an event loop resuming a
/// watcher on its own deadline cancels the waker first), and firing is
/// idempotent: the first of `fire`/`cancel` wins, so a wake races a
/// cancellation without ever invoking the callback twice.
pub struct WatchWaker {
    cancelled: AtomicBool,
    wake: Box<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for WatchWaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchWaker")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl WatchWaker {
    /// A waker invoking `wake` at most once.
    pub fn new(wake: impl Fn() + Send + Sync + 'static) -> Self {
        WatchWaker {
            cancelled: AtomicBool::new(false),
            wake: Box::new(wake),
        }
    }

    /// Disarms the waker without invoking it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once fired or cancelled (the store prunes such wakers).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Invokes the callback unless already fired or cancelled.
    pub fn fire(&self) {
        if !self.cancelled.swap(true, Ordering::SeqCst) {
            (self.wake)();
        }
    }
}

/// Typed session-layer failures, mapped to HTTP statuses by the server.
#[derive(Debug)]
pub enum SessionError {
    /// Unknown, expired, or deleted session id.
    NotFound,
    /// `If-Match` version did not match the current one (409).
    VersionConflict { current: u64 },
    /// The store is draining for shutdown (503).
    Draining,
    /// The store is full and nothing could be evicted.
    Full { max_sessions: usize },
    /// Edit failed validation or recompute failed; the session is unchanged.
    Measure(MeasureError),
}

impl From<MeasureError> for SessionError {
    fn from(e: MeasureError) -> Self {
        SessionError::Measure(e)
    }
}

struct SessionState {
    engine: SessionEngine,
    version: u64,
    report: MeasureReport,
    stats: RecomputeStats,
    deltas: VecDeque<Delta>,
    etc_units: bool,
    /// Set when the session is removed while watchers are parked on it.
    closed: bool,
    /// Parked non-blocking watchers; fired (and emptied) whenever the
    /// version advances, the session is removed, or the store drains.
    wakers: Vec<Arc<WatchWaker>>,
}

struct SessionSlot {
    id: String,
    state: Mutex<SessionState>,
    cond: Condvar,
    /// Microseconds since store boot; drives TTL and LRU.
    last_used: AtomicU64,
}

/// Store sizing knobs (`--max-sessions` / `--session-ttl-s` on the daemon).
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    pub max_sessions: usize,
    pub ttl: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_sessions: 64,
            ttl: Duration::from_secs(900),
        }
    }
}

/// The sharded session store. One per server process; `Arc`-shared across
/// workers.
pub struct SessionStore {
    shards: [Mutex<HashMap<String, Arc<SessionSlot>>>; SHARDS],
    count: AtomicUsize,
    draining: AtomicBool,
    boot: Instant,
    id_seq: AtomicU64,
    config: SessionConfig,
}

fn shard_of(id: &str) -> usize {
    // FNV-1a over the id bytes; ids are uniform hex so any mix works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

impl SessionStore {
    pub fn new(config: SessionConfig) -> Self {
        SessionStore {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            count: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            boot: Instant::now(),
            id_seq: AtomicU64::new(0),
            config,
        }
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`SessionStore::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    fn now_micros(&self) -> u64 {
        self.boot.elapsed().as_micros() as u64
    }

    fn ttl_micros(&self) -> u64 {
        self.config.ttl.as_micros() as u64
    }

    fn next_id(&self) -> String {
        let seq = self.id_seq.fetch_add(1, Ordering::Relaxed);
        // splitmix64 over (boot-derived entropy, sequence) — unguessable
        // enough for log correlation, unique per process by construction.
        let mut z = seq
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.now_micros().wrapping_mul(0x2545_f491_4f6c_dd1d));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        format!("{:016x}", z ^ (z >> 31))
    }

    /// Registers a new session and runs its first (cold) analysis.
    pub fn create(
        &self,
        ecs: Ecs,
        etc_units: bool,
        budget: Option<&Budget>,
    ) -> Result<SessionSnapshot, SessionError> {
        if self.is_draining() {
            return Err(SessionError::Draining);
        }
        self.sweep_expired();
        while self.len() >= self.config.max_sessions {
            if !self.evict_lru() {
                return Err(SessionError::Full {
                    max_sessions: self.config.max_sessions,
                });
            }
        }
        let mut engine = SessionEngine::new(ecs);
        let (report, stats) = engine.recompute(budget)?;
        let id = self.next_id();
        let state = SessionState {
            engine,
            version: 1,
            report,
            stats,
            deltas: VecDeque::new(),
            etc_units,
            closed: false,
            wakers: Vec::new(),
        };
        let snapshot = snapshot_of(&id, &state);
        let slot = Arc::new(SessionSlot {
            id: id.clone(),
            state: Mutex::new(state),
            cond: Condvar::new(),
            last_used: AtomicU64::new(self.now_micros()),
        });
        let mut shard = lock_recover(&self.shards[shard_of(&id)]);
        shard.insert(id, slot);
        drop(shard);
        self.count.fetch_add(1, Ordering::Relaxed);
        hc_obs::obs_counter!("session_created_total").inc();
        hc_obs::obs_gauge!("session_active").set(self.len() as i64);
        Ok(snapshot)
    }

    /// Looks a session up, enforcing TTL, and stamps it as used.
    fn slot(&self, id: &str) -> Option<Arc<SessionSlot>> {
        let shard = lock_recover(&self.shards[shard_of(id)]);
        let slot = shard.get(id)?.clone();
        drop(shard);
        let now = self.now_micros();
        if now.saturating_sub(slot.last_used.load(Ordering::Relaxed)) > self.ttl_micros() {
            self.remove_slot(&slot, "session_expired_total");
            return None;
        }
        slot.last_used.store(now, Ordering::Relaxed);
        Some(slot)
    }

    /// Current state of a session.
    pub fn get(&self, id: &str) -> Option<SessionSnapshot> {
        let slot = self.slot(id)?;
        let state = lock_recover(&slot.state);
        if state.closed {
            return None;
        }
        Some(snapshot_of(&slot.id, &state))
    }

    /// Applies an edit batch atomically: every edit lands and the recompute
    /// succeeds, or the session is left exactly as it was.
    pub fn patch(
        &self,
        id: &str,
        edits: &[Edit],
        if_match: Option<u64>,
        budget: Option<&Budget>,
    ) -> Result<SessionSnapshot, SessionError> {
        if self.is_draining() {
            return Err(SessionError::Draining);
        }
        let slot = self.slot(id).ok_or(SessionError::NotFound)?;
        let mut state = lock_recover(&slot.state);
        if state.closed {
            return Err(SessionError::NotFound);
        }
        if let Some(expected) = if_match {
            if expected != state.version {
                hc_obs::obs_counter!("session_conflict_total").inc();
                return Err(SessionError::VersionConflict {
                    current: state.version,
                });
            }
        }
        let etc_units = state.etc_units;
        // Apply with an undo log so a failure midway (validation or
        // recompute) rolls the matrix back to the pre-PATCH state.
        let mut undo: Vec<(usize, usize, f64)> = Vec::new();
        let result = apply_edits(&mut state.engine, edits, etc_units, &mut undo)
            .map_err(SessionError::from)
            .and_then(|()| state.engine.recompute(budget).map_err(SessionError::from));
        let (report, stats) = match result {
            Ok(ok) => ok,
            Err(e) => {
                for &(t, m, old) in undo.iter().rev() {
                    state
                        .engine
                        .set(t, m, old)
                        .expect("undo restores a previously valid state");
                }
                return Err(e);
            }
        };
        state.version += 1;
        let delta = Delta {
            version: state.version,
            mph: report.mph,
            tdh: report.tdh,
            tma: report.tma,
            d_mph: report.mph - state.report.mph,
            d_tdh: report.tdh - state.report.tdh,
            d_tma: report.tma - state.report.tma,
            stats,
        };
        if state.deltas.len() == DELTA_RING {
            state.deltas.pop_front();
        }
        state.deltas.push_back(delta);
        let old = std::mem::replace(&mut state.report, report);
        state.stats = stats;
        let snapshot = snapshot_of(&slot.id, &state);
        // Old report buffers feed the workspace for the next recompute.
        let SessionState { engine, .. } = &mut *state;
        engine.recycle_report(old);
        // Wakers are taken under the state lock (no registration can race the
        // version bump) and fired after it is dropped.
        let wakers = std::mem::take(&mut state.wakers);
        drop(state);
        slot.cond.notify_all();
        for waker in wakers {
            waker.fire();
        }
        hc_obs::obs_counter!("session_patch_total").inc();
        Ok(snapshot)
    }

    /// Deletes a session, waking any parked watchers.
    pub fn delete(&self, id: &str) -> bool {
        let Some(slot) = self.slot(id) else {
            return false;
        };
        self.remove_slot(&slot, "session_deleted_total")
    }

    /// Long-polls until the session's version exceeds `since` or `deadline`
    /// passes. Returns `Err(NotFound)` if the session dies while waiting and
    /// `Err(Draining)` if the store starts shutting down.
    pub fn watch(
        &self,
        id: &str,
        since: u64,
        deadline: Instant,
    ) -> Result<WatchOutcome, SessionError> {
        hc_obs::obs_counter!("session_watch_total").inc();
        let slot = self.slot(id).ok_or(SessionError::NotFound)?;
        let mut state = lock_recover(&slot.state);
        loop {
            if state.closed {
                return Err(SessionError::NotFound);
            }
            if self.is_draining() {
                return Err(SessionError::Draining);
            }
            if state.version > since {
                hc_obs::obs_counter!("session_watch_wake_total").inc();
                let (snapshot, deltas, truncated) = changed_locked(&slot.id, &state, since);
                return Ok(WatchOutcome::Changed {
                    snapshot,
                    deltas,
                    truncated,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(WatchOutcome::TimedOut {
                    version: state.version,
                });
            }
            let slice = WATCH_SLICE.min(deadline - now);
            let (g, _timed_out) = wait_timeout_recover(&slot.cond, state, slice);
            state = g;
            // Keep the watcher's session alive while it is being watched.
            slot.last_used.store(self.now_micros(), Ordering::Relaxed);
        }
    }

    /// One non-blocking watch attempt: returns what a watcher past watermark
    /// `since` would see right now, without ever parking the calling thread.
    ///
    /// `count_entry` ticks `session_watch_total` — the caller passes `true`
    /// on a request's first attempt only, so a parked watcher resumed by a
    /// waker or a deadline does not count as a second watch.
    pub fn try_watch(
        &self,
        id: &str,
        since: u64,
        count_entry: bool,
    ) -> Result<TryWatch, SessionError> {
        if count_entry {
            hc_obs::obs_counter!("session_watch_total").inc();
        }
        if self.is_draining() {
            return Err(SessionError::Draining);
        }
        let slot = self.slot(id).ok_or(SessionError::NotFound)?;
        let state = lock_recover(&slot.state);
        if state.closed {
            return Err(SessionError::NotFound);
        }
        if state.version > since {
            hc_obs::obs_counter!("session_watch_wake_total").inc();
            let (snapshot, deltas, truncated) = changed_locked(&slot.id, &state, since);
            return Ok(TryWatch::Changed {
                snapshot,
                deltas,
                truncated,
            });
        }
        Ok(TryWatch::NotYet {
            version: state.version,
        })
    }

    /// Parks `waker` on a session, to be fired on the next change (patch,
    /// delete, expiry, drain).
    ///
    /// The watermark is re-checked under the session's state lock — the lock
    /// every version bump holds — so a change between a [`TryWatch::NotYet`]
    /// and this call cannot be lost: it returns `Ok(false)` ("changed
    /// already, run [`SessionStore::try_watch`] again") instead of parking.
    pub fn add_waker(
        &self,
        id: &str,
        since: u64,
        waker: Arc<WatchWaker>,
    ) -> Result<bool, SessionError> {
        if self.is_draining() {
            return Err(SessionError::Draining);
        }
        let slot = self.slot(id).ok_or(SessionError::NotFound)?;
        let mut state = lock_recover(&slot.state);
        if state.closed || state.version > since {
            return Ok(false);
        }
        // Cancelled wakers (watchers the event loop already resumed on their
        // deadlines) are dead weight; prune them on the way in so a session
        // watched in a park/timeout loop does not accumulate them.
        state.wakers.retain(|w| !w.is_cancelled());
        state.wakers.push(waker);
        Ok(true)
    }

    /// Marks the store draining and wakes every watcher. New creates and
    /// patches are refused; watchers return a typed `Draining` error
    /// immediately instead of waiting out their deadlines.
    pub fn drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shards {
            let slots: Vec<Arc<SessionSlot>> = lock_recover(shard).values().cloned().collect();
            for slot in slots {
                let wakers = std::mem::take(&mut lock_recover(&slot.state).wakers);
                slot.cond.notify_all();
                for waker in wakers {
                    waker.fire();
                }
            }
        }
        hc_obs::obs_counter!("session_drain_total").inc();
    }

    /// Removes a slot from its shard (idempotent), marks it closed, wakes
    /// watchers, and bumps `counter`.
    fn remove_slot(&self, slot: &Arc<SessionSlot>, counter: &'static str) -> bool {
        let mut shard = lock_recover(&self.shards[shard_of(&slot.id)]);
        let removed = shard.remove(&slot.id).is_some();
        drop(shard);
        if removed {
            self.count.fetch_sub(1, Ordering::Relaxed);
            let mut state = lock_recover(&slot.state);
            state.closed = true;
            let wakers = std::mem::take(&mut state.wakers);
            drop(state);
            slot.cond.notify_all();
            for waker in wakers {
                waker.fire();
            }
            hc_obs::metrics::counter(counter).inc();
            hc_obs::obs_gauge!("session_active").set(self.len() as i64);
        }
        removed
    }

    /// Drops every session whose idle time exceeds the TTL.
    fn sweep_expired(&self) {
        let now = self.now_micros();
        let ttl = self.ttl_micros();
        for shard in &self.shards {
            let expired: Vec<Arc<SessionSlot>> = lock_recover(shard)
                .values()
                .filter(|s| now.saturating_sub(s.last_used.load(Ordering::Relaxed)) > ttl)
                .cloned()
                .collect();
            for slot in expired {
                self.remove_slot(&slot, "session_expired_total");
            }
        }
    }

    /// Evicts the globally least-recently-used session. Returns false when
    /// the store is already empty.
    fn evict_lru(&self) -> bool {
        let mut oldest: Option<(u64, Arc<SessionSlot>)> = None;
        for shard in &self.shards {
            for slot in lock_recover(shard).values() {
                let used = slot.last_used.load(Ordering::Relaxed);
                if oldest.as_ref().is_none_or(|(best, _)| used < *best) {
                    oldest = Some((used, slot.clone()));
                }
            }
        }
        match oldest {
            Some((_, slot)) => self.remove_slot(&slot, "session_evicted_total"),
            None => false,
        }
    }
}

/// Builds the changed-watch payload for a watcher past watermark `since`,
/// with `state` already locked: deltas newer than `since`, a full snapshot,
/// and whether the delta ring has dropped history the watcher missed.
fn changed_locked(
    id: &str,
    state: &SessionState,
    since: u64,
) -> (Box<SessionSnapshot>, Vec<Delta>, bool) {
    let deltas: Vec<Delta> = state
        .deltas
        .iter()
        .filter(|d| d.version > since)
        .cloned()
        .collect();
    // The ring holds versions (version-len .. version]; anything older than
    // its head is gone.
    let oldest_retained = state.deltas.front().map_or(state.version, |d| d.version);
    let truncated = since + 1 < oldest_retained;
    (Box::new(snapshot_of(id, state)), deltas, truncated)
}

fn snapshot_of(id: &str, state: &SessionState) -> SessionSnapshot {
    SessionSnapshot {
        id: id.to_string(),
        version: state.version,
        report: state.report.clone(),
        task_names: state.engine.ecs().task_names().to_vec(),
        machine_names: state.engine.ecs().machine_names().to_vec(),
        stats: state.stats,
        etc_units: state.etc_units,
    }
}

/// Plays an edit batch into the engine, recording prior values for rollback.
fn apply_edits(
    engine: &mut SessionEngine,
    edits: &[Edit],
    etc_units: bool,
    undo: &mut Vec<(usize, usize, f64)>,
) -> Result<(), MeasureError> {
    let mut set = |engine: &mut SessionEngine, t: usize, m: usize, v: f64| {
        let in_bounds = t < engine.ecs().num_tasks() && m < engine.ecs().num_machines();
        let old = if in_bounds {
            engine.ecs().get(t, m)
        } else {
            f64::NAN
        };
        // Out-of-bounds indices reach `set`, which returns the typed error.
        engine.set(t, m, to_ecs_value(v, etc_units))?;
        undo.push((t, m, old));
        Ok::<(), MeasureError>(())
    };
    for edit in edits {
        match edit {
            Edit::Cell {
                task,
                machine,
                value,
            } => set(engine, *task, *machine, *value)?,
            Edit::Row { task, values } => {
                for (m, v) in values.iter().enumerate() {
                    set(engine, *task, m, *v)?;
                }
            }
            Edit::Col { machine, values } => {
                for (t, v) in values.iter().enumerate() {
                    set(engine, t, *machine, *v)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_linalg::Matrix;

    fn ecs(t: usize, m: usize) -> Ecs {
        Ecs::new(Matrix::from_fn(t, m, |i, j| {
            0.2 + ((i * 37 + j * 11 + 3) % 53) as f64 / 53.0
        }))
        .unwrap()
    }

    fn store(max: usize, ttl: Duration) -> SessionStore {
        SessionStore::new(SessionConfig {
            max_sessions: max,
            ttl,
        })
    }

    #[test]
    fn create_get_patch_delete_roundtrip() {
        let s = store(8, Duration::from_secs(60));
        let snap = s.create(ecs(6, 4), false, None).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(s.len(), 1);
        let got = s.get(&snap.id).unwrap();
        assert_eq!(got.version, 1);
        assert_eq!(got.report.tma.to_bits(), snap.report.tma.to_bits());

        let edits = [Edit::Cell {
            task: 0,
            machine: 1,
            value: 9.0,
        }];
        let p = s.patch(&snap.id, &edits, Some(1), None).unwrap();
        assert_eq!(p.version, 2);
        assert!(p.stats.warm);

        assert!(s.delete(&snap.id));
        assert!(s.get(&snap.id).is_none());
        assert!(!s.delete(&snap.id));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn version_conflict_is_typed_and_leaves_state_alone() {
        let s = store(8, Duration::from_secs(60));
        let snap = s.create(ecs(4, 4), false, None).unwrap();
        let edits = [Edit::Cell {
            task: 0,
            machine: 0,
            value: 2.0,
        }];
        match s.patch(&snap.id, &edits, Some(7), None) {
            Err(SessionError::VersionConflict { current }) => assert_eq!(current, 1),
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.get(&snap.id).unwrap().version, 1);
    }

    #[test]
    fn failed_patch_rolls_back_every_edit() {
        let s = store(8, Duration::from_secs(60));
        let snap = s.create(ecs(3, 3), false, None).unwrap();
        let before = s.get(&snap.id).unwrap();
        // Second edit is out of bounds; the first must be undone.
        let edits = [
            Edit::Cell {
                task: 0,
                machine: 0,
                value: 5.0,
            },
            Edit::Cell {
                task: 9,
                machine: 0,
                value: 1.0,
            },
        ];
        assert!(matches!(
            s.patch(&snap.id, &edits, None, None),
            Err(SessionError::Measure(_))
        ));
        let after = s.get(&snap.id).unwrap();
        assert_eq!(after.version, 1);
        assert_eq!(after.report.tma.to_bits(), before.report.tma.to_bits());
    }

    #[test]
    fn ttl_expires_idle_sessions() {
        let s = store(8, Duration::from_millis(20));
        let snap = s.create(ecs(3, 3), false, None).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert!(s.get(&snap.id).is_none(), "idle session must expire");
        assert_eq!(s.len(), 0);
        assert!(hc_obs::metrics::counter_value("session_expired_total").unwrap_or(0) >= 1);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_sessions() {
        let s = store(2, Duration::from_secs(60));
        let a = s.create(ecs(3, 3), false, None).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let b = s.create(ecs(3, 3), false, None).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        // Touch `a` so `b` becomes the LRU.
        assert!(s.get(&a.id).is_some());
        std::thread::sleep(Duration::from_millis(2));
        let c = s.create(ecs(3, 3), false, None).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.get(&a.id).is_some(), "recently used survives");
        assert!(s.get(&b.id).is_none(), "LRU evicted");
        assert!(s.get(&c.id).is_some());
    }

    #[test]
    fn watch_sees_patches_and_times_out_quietly() {
        let s = Arc::new(store(8, Duration::from_secs(60)));
        let snap = s.create(ecs(4, 4), false, None).unwrap();
        // Timeout path first.
        match s
            .watch(&snap.id, 1, Instant::now() + Duration::from_millis(30))
            .unwrap()
        {
            WatchOutcome::TimedOut { version } => assert_eq!(version, 1),
            other => panic!("expected timeout, got {other:?}"),
        }
        // Concurrent patch wakes the watcher.
        let s2 = Arc::clone(&s);
        let id = snap.id.clone();
        let patcher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let edits = [Edit::Cell {
                task: 1,
                machine: 1,
                value: 3.0,
            }];
            s2.patch(&id, &edits, None, None).unwrap();
        });
        match s
            .watch(&snap.id, 1, Instant::now() + Duration::from_secs(5))
            .unwrap()
        {
            WatchOutcome::Changed {
                snapshot,
                deltas,
                truncated,
            } => {
                assert_eq!(snapshot.version, 2);
                assert_eq!(deltas.len(), 1);
                assert_eq!(deltas[0].version, 2);
                assert!(!truncated);
            }
            other => panic!("expected change, got {other:?}"),
        }
        patcher.join().unwrap();
    }

    #[test]
    fn watch_reports_truncation_when_ring_overflows() {
        let s = store(8, Duration::from_secs(60));
        let snap = s.create(ecs(3, 3), false, None).unwrap();
        for i in 0..(DELTA_RING + 4) {
            let edits = [Edit::Cell {
                task: 0,
                machine: 0,
                value: 1.0 + (i % 7) as f64 * 0.1,
            }];
            s.patch(&snap.id, &edits, None, None).unwrap();
        }
        match s.watch(&snap.id, 1, Instant::now()).unwrap() {
            WatchOutcome::Changed {
                deltas, truncated, ..
            } => {
                assert!(truncated, "watermark older than the ring must truncate");
                assert_eq!(deltas.len(), DELTA_RING);
            }
            other => panic!("expected change, got {other:?}"),
        }
    }

    #[test]
    fn drain_refuses_writes_and_wakes_watchers() {
        let s = Arc::new(store(8, Duration::from_secs(60)));
        let snap = s.create(ecs(3, 3), false, None).unwrap();
        let s2 = Arc::clone(&s);
        let id = snap.id.clone();
        let watcher =
            std::thread::spawn(move || s2.watch(&id, 1, Instant::now() + Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(30));
        let t0 = Instant::now();
        s.drain();
        assert!(matches!(
            watcher.join().unwrap(),
            Err(SessionError::Draining)
        ));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "drain must not wait out the watch deadline"
        );
        assert!(matches!(
            s.create(ecs(3, 3), false, None),
            Err(SessionError::Draining)
        ));
        let edits = [Edit::Cell {
            task: 0,
            machine: 0,
            value: 2.0,
        }];
        assert!(matches!(
            s.patch(&snap.id, &edits, None, None),
            Err(SessionError::Draining)
        ));
    }

    #[test]
    fn etc_sessions_convert_reciprocally() {
        let s = store(8, Duration::from_secs(60));
        let snap = s.create(ecs(3, 3), true, None).unwrap();
        let edits = [Edit::Cell {
            task: 0,
            machine: 0,
            value: 4.0, // 4 seconds -> ECS 0.25
        }];
        let p = s.patch(&snap.id, &edits, None, None).unwrap();
        assert_eq!(p.version, 2);
        // Verify through a second patch's conflict arm that state advanced,
        // and through the engine units directly.
        let got = s.get(&snap.id).unwrap();
        assert_eq!(got.version, 2);
    }

    #[test]
    fn try_watch_reports_not_yet_then_changed() {
        let s = store(8, Duration::from_secs(60));
        let snap = s.create(ecs(4, 4), false, None).unwrap();
        match s.try_watch(&snap.id, 1, true).unwrap() {
            TryWatch::NotYet { version } => assert_eq!(version, 1),
            other => panic!("expected NotYet, got {other:?}"),
        }
        let edits = [Edit::Cell {
            task: 1,
            machine: 1,
            value: 3.0,
        }];
        s.patch(&snap.id, &edits, None, None).unwrap();
        match s.try_watch(&snap.id, 1, false).unwrap() {
            TryWatch::Changed {
                snapshot,
                deltas,
                truncated,
            } => {
                assert_eq!(snapshot.version, 2);
                assert_eq!(deltas.len(), 1);
                assert_eq!(deltas[0].version, 2);
                assert!(!truncated);
            }
            other => panic!("expected Changed, got {other:?}"),
        }
        assert!(matches!(
            s.try_watch("nope", 0, true),
            Err(SessionError::NotFound)
        ));
    }

    #[test]
    fn waker_fires_once_on_patch_and_prunes_cancelled() {
        let s = store(8, Duration::from_secs(60));
        let snap = s.create(ecs(4, 4), false, None).unwrap();
        let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let waker = Arc::new(WatchWaker::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(s.add_waker(&snap.id, 1, Arc::clone(&waker)).unwrap());

        // A cancelled waker parked alongside must never fire.
        let dead_fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let df = Arc::clone(&dead_fired);
        let dead = Arc::new(WatchWaker::new(move || {
            df.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(s.add_waker(&snap.id, 1, Arc::clone(&dead)).unwrap());
        dead.cancel();

        let edits = [Edit::Cell {
            task: 0,
            machine: 0,
            value: 2.0,
        }];
        s.patch(&snap.id, &edits, None, None).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(dead_fired.load(Ordering::SeqCst), 0);

        // Firing is one-shot even if invoked again.
        waker.fire();
        assert_eq!(fired.load(Ordering::SeqCst), 1);

        // Version already past the watermark: add_waker refuses to park.
        let late = Arc::new(WatchWaker::new(|| {}));
        assert!(!s.add_waker(&snap.id, 1, late).unwrap());
    }

    #[test]
    fn wakers_fire_on_delete_and_drain() {
        let s = store(8, Duration::from_secs(60));
        let a = s.create(ecs(3, 3), false, None).unwrap();
        let b = s.create(ecs(3, 3), false, None).unwrap();

        let del_fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let df = Arc::clone(&del_fired);
        s.add_waker(
            &a.id,
            1,
            Arc::new(WatchWaker::new(move || {
                df.fetch_add(1, Ordering::SeqCst);
            })),
        )
        .unwrap();
        assert!(s.delete(&a.id));
        assert_eq!(del_fired.load(Ordering::SeqCst), 1);

        let drain_fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let drf = Arc::clone(&drain_fired);
        s.add_waker(
            &b.id,
            1,
            Arc::new(WatchWaker::new(move || {
                drf.fetch_add(1, Ordering::SeqCst);
            })),
        )
        .unwrap();
        s.drain();
        assert_eq!(drain_fired.load(Ordering::SeqCst), 1);
        assert!(matches!(
            s.try_watch(&b.id, 1, true),
            Err(SessionError::Draining)
        ));
        assert!(matches!(
            s.add_waker(&b.id, 1, Arc::new(WatchWaker::new(|| {}))),
            Err(SessionError::Draining)
        ));
    }
}
