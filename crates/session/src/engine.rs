//! The incremental recompute engine behind a live session.
//!
//! A [`SessionEngine`] owns one ECS environment plus the *warm state* left by
//! the previous analysis — the Sinkhorn scaling vectors `D₁/D₂` and the SVD of
//! the standard form. After an edit, [`SessionEngine::recompute`] seeds both
//! solvers from that state:
//!
//! * Sinkhorn restarts from `diag(D₁)·A'·diag(D₂)` (see
//!   [`hc_sinkhorn::balance::balance_warm_budgeted_in`]) — for a small
//!   perturbation `A'` of the previously balanced matrix this is already near
//!   the fixed point.
//! * The SVD restarts one-sided Jacobi from the prior right singular vectors
//!   (see [`hc_linalg::svd::svd_warm_budgeted_in`]) — the seeded working
//!   matrix has near-orthogonal columns, so one or two sweeps suffice where a
//!   cold run needs a full Golub–Reinsch factorization.
//!
//! **Fallback criterion:** the warm path must clear exactly the tolerances the
//! cold path uses — the balance must report [`BalanceStatus::Converged`] under
//! the same `tol`, and the warm SVD must pass the same orthogonality audit. If
//! either fails, the engine silently recomputes cold and increments the
//! `session_warm_fallback_total` counter, so a warm answer is never *less*
//! converged than a cold one. The whole warm attempt is additionally
//! panic-isolated (`catch_unwind`): a panic inside it — chaos-injected via
//! `HC_FAILPOINT=sinkhorn.iteration:panic:N`, or a real bug — is another
//! fallback, never a failed request. Matrices with zeros always take the cold path
//! (their standard form may only exist as a limit; warm seeding has no theory
//! there).
//!
//! **Size cutover:** fewer iterations is not the same as less wall time. A
//! warm Jacobi sweep is O(n³) against Golub–Reinsch's heavily-optimized
//! bidiagonalization, so past a matrix size the warm path *loses* wall time
//! despite saving 100×+ combined iterations (measured: ~1.8–2× slower at
//! 256×256 and 512×512, `session_warm_vs_cold` in the bench snapshots).
//! Matrices above [`DEFAULT_WARM_CUTOVER_CELLS`] therefore skip the warm
//! attempt entirely and run cold; each skip is counted in
//! `session_warm_cutover_total` (a sibling of `session_warm_fallback_total`)
//! and flagged in [`RecomputeStats::cutover`].

use hc_core::ecs::Ecs;
use hc_core::error::MeasureError;
use hc_core::measures::{
    adjacent_ratio_homogeneity_in, machine_performances_in, task_difficulties_in,
};
use hc_core::report::{characterize_budgeted_in, MeasureReport};
use hc_core::standard::TmaOptions;
use hc_core::weights::Weights;
use hc_linalg::svd::{svd_warm_stats_budgeted_in, svd_with_stats_budgeted_in, Svd};
use hc_linalg::{Budget, LinAlgError, Workspace};
use hc_sinkhorn::balance::{
    standardize_budgeted_in, standardize_warm_budgeted_in, BalanceOutcome, BalanceStatus,
};

/// Matrices with more cells than this run cold even when a warm prior exists.
///
/// Chosen from the `session_warm_vs_cold` bench lane: warm wins wall time at
/// 64×64 (4 096 cells, ~2.7× faster) and loses it from 256×256 up (65 536
/// cells, ~1.8× slower), so the cutover sits at 128×128. Override per engine
/// with [`SessionEngine::with_warm_cutover`] (`usize::MAX` disables).
pub const DEFAULT_WARM_CUTOVER_CELLS: usize = 16_384;

/// How a [`SessionEngine::recompute`] call did its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecomputeStats {
    /// Sinkhorn iterations the standardization took.
    pub sinkhorn_iterations: usize,
    /// SVD iterations (Jacobi sweeps or Golub–Reinsch QR steps).
    pub svd_iterations: usize,
    /// `true` when the warm-started path produced the result.
    pub warm: bool,
    /// `true` when the warm path was attempted but failed its convergence
    /// check and the result came from a silent cold recompute.
    pub fallback: bool,
    /// `true` when a warm prior existed but the matrix exceeded the size
    /// cutover, so the warm attempt was skipped on wall-time grounds.
    pub cutover: bool,
}

impl RecomputeStats {
    /// Total solver iterations — the number the `session_warm_vs_cold` bench
    /// lane compares across paths.
    pub fn total_iterations(&self) -> usize {
        self.sinkhorn_iterations + self.svd_iterations
    }
}

/// Warm state carried between recomputes.
struct WarmState {
    row_scale: Vec<f64>,
    col_scale: Vec<f64>,
    svd: Svd,
}

/// A stateful analysis engine for one live session.
pub struct SessionEngine {
    ecs: Ecs,
    weights: Weights,
    opts: TmaOptions,
    ws: Workspace,
    warm: Option<WarmState>,
    force_cold: bool,
    warm_cutover_cells: usize,
}

impl SessionEngine {
    /// Wraps an environment; the first [`SessionEngine::recompute`] is
    /// necessarily cold.
    pub fn new(ecs: Ecs) -> Self {
        let weights = Weights::uniform(ecs.num_tasks(), ecs.num_machines());
        SessionEngine {
            ecs,
            weights,
            opts: TmaOptions::default(),
            ws: Workspace::new(),
            warm: None,
            force_cold: false,
            warm_cutover_cells: DEFAULT_WARM_CUTOVER_CELLS,
        }
    }

    /// Disables warm starting entirely (every recompute runs cold) — the
    /// control arm for benchmarks and A/B tests.
    pub fn with_force_cold(mut self, force_cold: bool) -> Self {
        self.force_cold = force_cold;
        self
    }

    /// Overrides the warm/cold size cutover (in matrix cells,
    /// tasks × machines). `usize::MAX` disables the cutover — the arm
    /// benchmarks use to measure iteration savings at sizes where wall time
    /// prefers cold.
    pub fn with_warm_cutover(mut self, cells: usize) -> Self {
        self.warm_cutover_cells = cells;
        self
    }

    /// The current environment.
    pub fn ecs(&self) -> &Ecs {
        &self.ecs
    }

    /// Edits one ECS entry in place (see [`Ecs::set`]); the next recompute
    /// picks it up incrementally.
    pub fn set(&mut self, task: usize, machine: usize, value: f64) -> Result<(), MeasureError> {
        self.ecs.set(task, machine, value)
    }

    /// Recomputes MPH/TDH/TMA, warm-starting from the previous solve when
    /// possible and falling back to a cold run when the warm path misses the
    /// cold path's convergence tolerances.
    pub fn recompute(
        &mut self,
        budget: Option<&Budget>,
    ) -> Result<(MeasureReport, RecomputeStats), MeasureError> {
        let mut obs = hc_obs::span("session.recompute");
        let cells = self.ecs.num_tasks() * self.ecs.num_machines();
        let over_cutover = cells > self.warm_cutover_cells;
        let warm_possible = !self.force_cold && self.warm.is_some() && self.ecs.is_positive();
        let warm_eligible = warm_possible && !over_cutover;
        // Only count a cutover when the cutover is what blocked an otherwise
        // viable warm start — force_cold/zero/no-prior skips are not cutovers.
        let cutover = warm_possible && over_cutover;
        if cutover {
            hc_obs::obs_counter!("session_warm_cutover_total").inc();
        }
        let mut fallback = false;
        // The warm attempt is opportunistic, so it is panic-isolated like a
        // handler (DESIGN.md §10): a panic inside it — a chaos failpoint such
        // as `sinkhorn.iteration:panic:N`, or a genuine bug — is contained
        // here and becomes a cold fallback, never a failed request. The prior
        // warm state is read-only during the attempt and is only replaced
        // after full success, so catching mid-solve leaves the engine valid.
        let result = if warm_eligible {
            let attempt =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.try_warm(budget)));
            match attempt {
                Ok(Ok(Some(ok))) => Some(ok),
                Ok(Err(e)) => return Err(e),
                Ok(Ok(None)) | Err(_) => {
                    fallback = true;
                    hc_obs::obs_counter!("session_warm_fallback_total").inc();
                    None
                }
            }
        } else {
            None
        };
        let (report, mut stats) = match result {
            Some(ok) => ok,
            None => self.cold(budget)?,
        };
        stats.fallback = fallback;
        stats.cutover = cutover;
        hc_obs::obs_counter!("session_recompute_total").inc();
        if stats.warm {
            hc_obs::obs_counter!("session_recompute_warm_total").inc();
        }
        hc_obs::recorder::note_u64(
            "session_sinkhorn_iterations",
            stats.sinkhorn_iterations as u64,
        );
        hc_obs::recorder::note_u64("session_svd_iterations", stats.svd_iterations as u64);
        hc_obs::recorder::note_u64("session_warm", u64::from(stats.warm));
        hc_obs::recorder::note_u64("session_cutover", u64::from(stats.cutover));
        if obs.armed() {
            obs.field_u64("tasks", self.ecs.num_tasks() as u64);
            obs.field_u64("machines", self.ecs.num_machines() as u64);
            obs.field_u64("sinkhorn_iterations", stats.sinkhorn_iterations as u64);
            obs.field_u64("svd_iterations", stats.svd_iterations as u64);
            obs.field_bool("warm", stats.warm);
            obs.field_bool("fallback", stats.fallback);
        }
        Ok((report, stats))
    }

    /// Warm path. `Ok(None)` means "fell short of the cold tolerances — run
    /// cold"; hard errors (deadline expiry, invalid input) propagate.
    #[allow(clippy::type_complexity)]
    fn try_warm(
        &mut self,
        budget: Option<&Budget>,
    ) -> Result<Option<(MeasureReport, RecomputeStats)>, MeasureError> {
        let _phase = hc_obs::span("session.warm_solve");
        let prior = self.warm.as_ref().expect("warm_eligible checked");
        let out = match standardize_warm_budgeted_in(
            self.ecs.matrix().view(),
            &prior.row_scale,
            &prior.col_scale,
            &self.opts.balance,
            budget,
            &mut self.ws,
        ) {
            Ok(out) => out,
            Err(LinAlgError::DeadlineExceeded {
                op,
                iterations,
                residual,
            }) => {
                return Err(MeasureError::DeadlineExceeded {
                    op,
                    iterations,
                    residual,
                })
            }
            // Shape changes and the like: the prior no longer applies.
            Err(_) => return Ok(None),
        };
        if !matches!(out.status, BalanceStatus::Converged) {
            out.recycle(&mut self.ws);
            return Ok(None);
        }
        let (svd, sweeps) =
            match svd_warm_stats_budgeted_in(out.matrix.view(), &prior.svd, budget, &mut self.ws) {
                Ok(r) => r,
                Err(LinAlgError::DeadlineExceeded {
                    op,
                    iterations,
                    residual,
                }) => {
                    out.recycle(&mut self.ws);
                    return Err(MeasureError::DeadlineExceeded {
                        op,
                        iterations,
                        residual,
                    });
                }
                Err(_) => {
                    out.recycle(&mut self.ws);
                    return Ok(None);
                }
            };
        let stats = RecomputeStats {
            sinkhorn_iterations: out.iterations,
            svd_iterations: sweeps,
            warm: true,
            ..RecomputeStats::default()
        };
        let report = self.assemble(&out, &svd, budget)?;
        self.store_warm(out, svd);
        Ok(Some((report, stats)))
    }

    /// Cold path: positive matrices drive the solvers directly (so the scaling
    /// vectors and spectrum can be retained as the next warm seed); matrices
    /// with zeros delegate to the standard characterize pipeline and leave no
    /// warm state.
    fn cold(
        &mut self,
        budget: Option<&Budget>,
    ) -> Result<(MeasureReport, RecomputeStats), MeasureError> {
        let _phase = hc_obs::span("session.cold_solve");
        if !self.ecs.is_positive() {
            self.clear_warm();
            let report = characterize_budgeted_in(
                &self.ecs,
                &self.weights,
                &self.opts,
                budget,
                &mut self.ws,
            )?;
            let stats = RecomputeStats {
                sinkhorn_iterations: report.standardization_iterations,
                ..RecomputeStats::default()
            };
            return Ok((report, stats));
        }
        let out = standardize_budgeted_in(
            self.ecs.matrix().view(),
            &self.opts.balance,
            budget,
            &mut self.ws,
        )?;
        if !out.is_converged() {
            let err = MeasureError::BalanceDidNotConverge {
                residual: out.residual,
                iterations: out.iterations,
            };
            out.recycle(&mut self.ws);
            return Err(err);
        }
        let (svd, svd_iterations) = match svd_with_stats_budgeted_in(
            out.matrix.view(),
            self.opts.svd,
            budget,
            &mut self.ws,
        ) {
            Ok(r) => r,
            Err(e) => {
                out.recycle(&mut self.ws);
                return Err(e.into());
            }
        };
        let stats = RecomputeStats {
            sinkhorn_iterations: out.iterations,
            svd_iterations,
            ..RecomputeStats::default()
        };
        let report = self.assemble(&out, &svd, budget)?;
        self.store_warm(out, svd);
        Ok((report, stats))
    }

    /// MPH/TDH/TMA from a converged standard form and its SVD — the same
    /// arithmetic as [`characterize_budgeted_in`], just with the solver outputs
    /// kept alive for the next warm start.
    fn assemble(
        &mut self,
        out: &BalanceOutcome,
        svd: &Svd,
        budget: Option<&Budget>,
    ) -> Result<MeasureReport, MeasureError> {
        if let Some(b) = budget {
            b.check("session-measures", 0, f64::NAN)?;
        }
        let mp = machine_performances_in(&self.ecs, &self.weights, &mut self.ws)?;
        let td = task_difficulties_in(&self.ecs, &self.weights, &mut self.ws)?;
        let mph = adjacent_ratio_homogeneity_in(&mp, &mut self.ws)?;
        let tdh = adjacent_ratio_homogeneity_in(&td, &mut self.ws)?;
        let k = svd.singular_values.len();
        let tma = if k <= 1 {
            0.0
        } else {
            let sum: f64 = svd.singular_values[1..].iter().sum();
            (sum / (k - 1) as f64).clamp(0.0, 1.0)
        };
        Ok(MeasureReport {
            mph,
            tdh,
            tma,
            machine_performances: mp,
            task_difficulties: td,
            standardization_iterations: out.iterations,
            regularized: false,
            reduced_to_core: false,
        })
    }

    /// Replaces the warm state with a fresh solve's outputs, recycling the
    /// displaced buffers and the balanced matrix (only the scalings and the
    /// spectrum are needed for seeding).
    fn store_warm(&mut self, out: BalanceOutcome, svd: Svd) {
        self.clear_warm();
        let BalanceOutcome {
            matrix,
            row_scale,
            col_scale,
            history,
            ..
        } = out;
        self.ws.recycle_matrix(matrix);
        self.ws.recycle_vec(history);
        self.warm = Some(WarmState {
            row_scale,
            col_scale,
            svd,
        });
    }

    fn clear_warm(&mut self) {
        if let Some(w) = self.warm.take() {
            self.ws.recycle_vec(w.row_scale);
            self.ws.recycle_vec(w.col_scale);
            w.svd.recycle(&mut self.ws);
        }
    }

    /// Returns a report's buffers to the engine's workspace (call when the
    /// report is no longer needed and the session will recompute again).
    pub fn recycle_report(&mut self, report: MeasureReport) {
        report.recycle(&mut self.ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_linalg::Matrix;

    fn fixture(t: usize, m: usize) -> Ecs {
        Ecs::new(Matrix::from_fn(t, m, |i, j| {
            0.1 + ((i * 131 + j * 31 + 7) % 97) as f64 / 97.0
        }))
        .unwrap()
    }

    #[test]
    fn first_recompute_is_cold_and_matches_characterize() {
        let ecs = fixture(12, 8);
        let expect = hc_core::report::characterize(&ecs).unwrap();
        let mut eng = SessionEngine::new(ecs);
        let (report, stats) = eng.recompute(None).unwrap();
        assert!(!stats.warm);
        assert!(!stats.fallback);
        assert_eq!(report.mph.to_bits(), expect.mph.to_bits());
        assert_eq!(report.tdh.to_bits(), expect.tdh.to_bits());
        assert_eq!(report.tma.to_bits(), expect.tma.to_bits());
        assert_eq!(
            report.standardization_iterations,
            expect.standardization_iterations
        );
    }

    #[test]
    fn warm_recompute_matches_cold_within_tolerance_and_saves_iterations() {
        let ecs = fixture(64, 64);
        let mut warm_eng = SessionEngine::new(ecs.clone());
        let mut cold_eng = SessionEngine::new(ecs).with_force_cold(true);
        warm_eng.recompute(None).unwrap();
        cold_eng.recompute(None).unwrap();

        // A stream of single-cell edits, recomputed after each.
        for (step, (i, j)) in [(3usize, 5usize), (10, 20), (40, 1), (63, 63)]
            .iter()
            .enumerate()
        {
            let v = warm_eng.ecs().get(*i, *j) * (1.0 + 0.01 * (step as f64 + 1.0));
            warm_eng.set(*i, *j, v).unwrap();
            cold_eng.set(*i, *j, v).unwrap();
            let (wr, ws) = warm_eng.recompute(None).unwrap();
            let (cr, cs) = cold_eng.recompute(None).unwrap();
            assert!(ws.warm, "step {step} should be warm");
            assert!(!ws.fallback);
            assert!(!cs.warm);
            // Acceptance criterion: warm measures match cold within the
            // solvers' convergence tolerance (balance tol 1e-8 on marginals
            // bounds the measure difference well below 1e-6).
            assert!(
                (wr.mph - cr.mph).abs() < 1e-9,
                "mph {} vs {}",
                wr.mph,
                cr.mph
            );
            assert!((wr.tdh - cr.tdh).abs() < 1e-9);
            assert!(
                (wr.tma - cr.tma).abs() < 1e-6,
                "tma {} vs {}",
                wr.tma,
                cr.tma
            );
            assert!(
                ws.total_iterations() < cs.total_iterations(),
                "warm {} vs cold {} at step {step}",
                ws.total_iterations(),
                cs.total_iterations()
            );
        }
    }

    #[test]
    fn size_cutover_skips_warm_and_counts_it() {
        // 8×8 = 64 cells with a cutover at 32: a warm prior exists, but the
        // second recompute must run cold on wall-time grounds and say why.
        let mut eng = SessionEngine::new(fixture(8, 8)).with_warm_cutover(32);
        let (_, s0) = eng.recompute(None).unwrap();
        assert!(!s0.warm);
        // First solve had no prior: big, but not a cutover.
        assert!(!s0.cutover);
        eng.set(1, 1, 3.0).unwrap();
        let before = hc_obs::metrics::counter_value("session_warm_cutover_total").unwrap_or(0);
        let (report, s1) = eng.recompute(None).unwrap();
        assert!(s1.cutover, "prior + oversize must flag the cutover");
        assert!(!s1.warm);
        assert!(!s1.fallback, "a cutover is not a fallback");
        let after = hc_obs::metrics::counter_value("session_warm_cutover_total").unwrap_or(0);
        assert!(after > before, "cutover counter must tick");
        // The cold result is still correct.
        let expect = hc_core::report::characterize(eng.ecs()).unwrap();
        assert!((report.tma - expect.tma).abs() < 1e-9);
        // Raising the cutover re-enables warm starting on the stored prior.
        let mut eng = eng.with_warm_cutover(usize::MAX);
        eng.set(2, 2, 1.25).unwrap();
        let (_, s2) = eng.recompute(None).unwrap();
        assert!(s2.warm && !s2.cutover);
    }

    #[test]
    fn zero_entries_force_cold_path() {
        let ecs = Ecs::from_rows(&[&[1.0, 2.0, 1.0], &[2.0, 1.0, 3.0], &[1.0, 1.0, 2.0]]).unwrap();
        let mut eng = SessionEngine::new(ecs);
        eng.recompute(None).unwrap();
        eng.set(0, 1, 0.0).unwrap();
        let (_, stats) = eng.recompute(None).unwrap();
        assert!(!stats.warm, "matrix with zeros must recompute cold");
        // And back to positive: the next recompute is cold (no warm state was
        // stored for the zero matrix), the one after is warm again.
        eng.set(0, 1, 2.0).unwrap();
        let (_, s1) = eng.recompute(None).unwrap();
        assert!(!s1.warm);
        eng.set(0, 0, 1.5).unwrap();
        let (_, s2) = eng.recompute(None).unwrap();
        assert!(s2.warm);
    }

    #[test]
    fn failpoint_forces_fallback_and_counts_it() {
        // Arm the Sinkhorn iteration failpoint with a panic *after* the warm
        // state exists: the warm balance panics... no — failpoints are
        // process-global; use the budget-free path with an error action
        // instead. The unit-level equivalent of the chaos test: a prior from a
        // *different* shape falls back cleanly.
        let mut eng = SessionEngine::new(fixture(6, 4));
        eng.recompute(None).unwrap();
        // Simulate drift the warm theory does not cover by replacing the
        // environment wholesale behind the same engine (shape change).
        eng.ecs = fixture(5, 3);
        eng.weights = Weights::uniform(5, 3);
        let before = hc_obs::metrics::counter_value("session_warm_fallback_total").unwrap_or(0);
        let (report, stats) = eng.recompute(None).unwrap();
        assert!(stats.fallback, "shape-changed prior must fall back");
        assert!(!stats.warm);
        let after = hc_obs::metrics::counter_value("session_warm_fallback_total").unwrap_or(0);
        assert!(after > before, "fallback counter must tick");
        let expect = hc_core::report::characterize(&fixture(5, 3)).unwrap();
        assert!((report.tma - expect.tma).abs() < 1e-9);
    }

    #[test]
    fn expired_budget_propagates() {
        let mut eng = SessionEngine::new(fixture(8, 8));
        eng.recompute(None).unwrap();
        eng.set(0, 0, 5.0).unwrap();
        let expired = Budget::with_deadline(std::time::Duration::ZERO);
        assert!(matches!(
            eng.recompute(Some(&expired)),
            Err(MeasureError::DeadlineExceeded { .. })
        ));
    }
}
