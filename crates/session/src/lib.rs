//! # hc-session — live-cluster sessions with warm-started solvers
//!
//! Stateful incremental analysis for the heterogeneity measures. A client
//! registers an ETC/ECS matrix once, then streams edits as the cluster
//! drifts; each edit triggers a recompute that *warm-starts* both numerical
//! kernels from the previous solve instead of starting from scratch:
//!
//! * **Sinkhorn** restarts from the previous `D₁/D₂` scaling vectors
//!   ([`hc_sinkhorn::balance::standardize_warm_budgeted_in`]) — a small edit
//!   leaves the seeded matrix near the balanced fixed point, so convergence
//!   takes a handful of sweeps instead of hundreds.
//! * **SVD** restarts one-sided Jacobi from the previous right singular
//!   vectors ([`hc_linalg::svd::svd_warm_stats_budgeted_in`]) — the seeded
//!   working matrix has near-orthogonal columns, so one or two sweeps replace
//!   a full cold factorization.
//!
//! Correctness is never traded for speed: the warm path must satisfy exactly
//! the cold path's convergence tolerances, and any miss falls back to a
//! silent cold recompute counted in `session_warm_fallback_total`. Nor is
//! speed traded for iteration counts: above a size cutover
//! ([`engine::DEFAULT_WARM_CUTOVER_CELLS`]) the warm attempt is skipped
//! outright — its O(n³) Jacobi sweeps stop paying for themselves in wall
//! time — counted in the sibling `session_warm_cutover_total`.
//!
//! The crate is layered:
//!
//! * [`engine`] — [`engine::SessionEngine`], one environment + warm state +
//!   the warm/cold/fallback recompute logic.
//! * [`edits`] — the line-oriented `cell,` / `row,` / `col,` edit language
//!   used by `PATCH /session/{id}/etc` (the stack has no JSON parser).
//! * [`store`] — the sharded, TTL'd, LRU-bounded session store with
//!   long-poll watch and drain support, shared across server workers.
//!
//! The HTTP surface lives in `hc-serve`; `hcm session` in the CLI runs an
//! offline demo of the same engine.

pub mod edits;
pub mod engine;
pub mod store;

pub use edits::{parse_edits, to_ecs_value, Edit, EditParseError};
pub use engine::{RecomputeStats, SessionEngine, DEFAULT_WARM_CUTOVER_CELLS};
pub use store::{
    Delta, SessionConfig, SessionError, SessionSnapshot, SessionStore, TryWatch, WatchOutcome,
    WatchWaker,
};
