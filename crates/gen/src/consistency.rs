//! ETC consistency classification (Braun et al. 2001 / Ali et al. 2000 — the
//! paper's references [4] and [6]).
//!
//! An ETC matrix is **consistent** when the machines have a global speed order:
//! if machine `a` is faster than machine `b` for one task, it is faster for every
//! task. It is **inconsistent** when no such order exists, and
//! **partially consistent** (semi-consistent) when a subset of the machine
//! columns forms a consistent submatrix.
//!
//! Consistency interacts directly with the paper's TMA measure: a perfectly
//! consistent matrix has (near-)proportional column *orderings* and typically low
//! affinity, whereas inconsistent matrices are where task-machine affinity lives.
//! [`consistency_degree`] quantifies the spectrum and the tests/benches document
//! the TMA correlation.

use hc_core::ecs::Etc;
use hc_core::error::MeasureError;
use hc_linalg::Matrix;

use crate::rng::{Rng, StdRng};

/// Classification of an ETC matrix's consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// A total machine speed order holds across all tasks.
    Consistent,
    /// No global order, but some pair of machines is consistently ordered.
    PartiallyConsistent,
    /// Every pair of machines swaps order for some pair of tasks.
    Inconsistent,
}

/// `true` when machine `a` is at least as fast as machine `b` for every task.
fn dominates(etc: &Matrix, a: usize, b: usize) -> bool {
    (0..etc.rows()).all(|i| etc[(i, a)] <= etc[(i, b)])
}

/// Classifies an ETC matrix.
pub fn classify(etc: &Matrix) -> Consistency {
    let m = etc.cols();
    if m < 2 {
        return Consistency::Consistent;
    }
    let mut ordered_pairs = 0usize;
    let mut total_pairs = 0usize;
    for a in 0..m {
        for b in (a + 1)..m {
            total_pairs += 1;
            if dominates(etc, a, b) || dominates(etc, b, a) {
                ordered_pairs += 1;
            }
        }
    }
    if ordered_pairs == total_pairs {
        Consistency::Consistent
    } else if ordered_pairs > 0 {
        Consistency::PartiallyConsistent
    } else {
        Consistency::Inconsistent
    }
}

/// Fraction of machine pairs that are consistently ordered, in `[0, 1]`
/// (1 = consistent, 0 = fully inconsistent).
pub fn consistency_degree(etc: &Matrix) -> f64 {
    let m = etc.cols();
    if m < 2 {
        return 1.0;
    }
    let mut ordered = 0usize;
    let mut total = 0usize;
    for a in 0..m {
        for b in (a + 1)..m {
            total += 1;
            if dominates(etc, a, b) || dominates(etc, b, a) {
                ordered += 1;
            }
        }
    }
    ordered as f64 / total as f64
}

/// Makes an ETC matrix consistent in place by sorting each row ascending — the
/// standard construction in the generation literature (after sorting, column `j`
/// is the `j`-th fastest machine for *every* task).
pub fn make_consistent(etc: &Matrix) -> Matrix {
    let mut out = etc.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        row.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    }
    out
}

/// Makes a **partially consistent** matrix: sorts each row only within the given
/// column subset (the classic "consistent submatrix" construction).
pub fn make_partially_consistent(
    etc: &Matrix,
    consistent_cols: &[usize],
) -> Result<Matrix, MeasureError> {
    for &j in consistent_cols {
        if j >= etc.cols() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("column {j} out of range ({})", etc.cols()),
            });
        }
    }
    let mut out = etc.clone();
    for i in 0..out.rows() {
        let mut vals: Vec<f64> = consistent_cols.iter().map(|&j| out[(i, j)]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for (&j, v) in consistent_cols.iter().zip(vals) {
            out[(i, j)] = v;
        }
    }
    Ok(out)
}

/// Generates a consistency-controlled ETC matrix: start from a range-based
/// draw, then sort a `fraction` of each row's entries (per-row random subset of
/// columns of that size, shared across rows for submatrix semantics).
pub fn consistency_controlled(
    base: &Matrix,
    fraction: f64,
    seed: u64,
) -> Result<Matrix, MeasureError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("fraction must be in [0, 1], got {fraction}"),
        });
    }
    let m = base.cols();
    let k = (fraction * m as f64).round() as usize;
    if k < 2 {
        return Ok(base.clone());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<usize> = (0..m).collect();
    // Fisher–Yates prefix shuffle to pick k distinct columns.
    for i in 0..k {
        let j = rng.gen_range(i..m);
        cols.swap(i, j);
    }
    make_partially_consistent(base, &cols[..k])
}

/// Convenience: classify a labeled environment.
pub fn classify_etc(etc: &Etc) -> Consistency {
    classify(etc.matrix())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range_based::{range_based, RangeParams};
    use hc_core::ecs::Ecs;
    use hc_core::standard::tma;

    #[test]
    fn classify_extremes() {
        // Columns globally ordered.
        let cons = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 9.0]]).unwrap();
        assert_eq!(classify(&cons), Consistency::Consistent);
        assert_eq!(consistency_degree(&cons), 1.0);
        // Every pair swaps.
        let incons = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(classify(&incons), Consistency::Inconsistent);
        assert_eq!(consistency_degree(&incons), 0.0);
        // Machines 1 and 2 ordered, machine 3 swaps with both.
        let partial = Matrix::from_rows(&[&[1.0, 2.0, 5.0], &[1.0, 2.0, 0.5]]).unwrap();
        assert_eq!(classify(&partial), Consistency::PartiallyConsistent);
        let d = consistency_degree(&partial);
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn single_machine_trivially_consistent() {
        let one = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert_eq!(classify(&one), Consistency::Consistent);
        assert_eq!(consistency_degree(&one), 1.0);
    }

    #[test]
    fn make_consistent_sorts_rows() {
        let raw = Matrix::from_rows(&[&[3.0, 1.0, 2.0], &[9.0, 7.0, 8.0]]).unwrap();
        let c = make_consistent(&raw);
        assert_eq!(classify(&c), Consistency::Consistent);
        // Row multisets preserved.
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(c.row(1), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn partial_consistency_only_touches_subset() {
        let raw = Matrix::from_rows(&[&[3.0, 1.0, 2.0], &[1.0, 9.0, 5.0]]).unwrap();
        let p = make_partially_consistent(&raw, &[0, 2]).unwrap();
        // Column 1 untouched.
        assert_eq!(p[(0, 1)], 1.0);
        assert_eq!(p[(1, 1)], 9.0);
        // Columns {0, 2} sorted within each row.
        assert!(p[(0, 0)] <= p[(0, 2)]);
        assert!(p[(1, 0)] <= p[(1, 2)]);
        assert!(make_partially_consistent(&raw, &[9]).is_err());
    }

    #[test]
    fn consistent_matrices_have_lower_tma() {
        // The bridge to the paper: making a heterogeneous ETC consistent
        // collapses most of its task-machine affinity.
        let mut incons_sum = 0.0;
        let mut cons_sum = 0.0;
        let n = 10;
        for seed in 0..n {
            let etc = range_based(&RangeParams::hi_hi(10, 5), seed).unwrap();
            let raw = etc.matrix().clone();
            let cons = make_consistent(&raw);
            let t_in = tma(&Ecs::new(raw.map(|v| 1.0 / v)).unwrap()).unwrap();
            let t_c = tma(&Ecs::new(cons.map(|v| 1.0 / v)).unwrap()).unwrap();
            incons_sum += t_in;
            cons_sum += t_c;
        }
        assert!(
            cons_sum < incons_sum * 0.8,
            "consistent TMA sum {cons_sum} should be well below inconsistent {incons_sum}"
        );
    }

    #[test]
    fn consistency_controlled_interpolates() {
        let base = range_based(&RangeParams::hi_hi(12, 6), 3).unwrap();
        let raw = base.matrix();
        let d0 = consistency_degree(&consistency_controlled(raw, 0.0, 0).unwrap());
        let d1 = consistency_degree(&consistency_controlled(raw, 1.0, 0).unwrap());
        assert!(d1 > d0, "full sorting must raise consistency: {d1} vs {d0}");
        assert_eq!(d1, 1.0);
        assert!(consistency_controlled(raw, 1.5, 0).is_err());
        // fraction too small to matter returns the base unchanged.
        let same = consistency_controlled(raw, 0.1, 0).unwrap();
        assert_eq!(&same, raw);
    }

    #[test]
    fn classify_etc_wrapper() {
        let etc = range_based(&RangeParams::lo_lo(4, 3), 0).unwrap();
        let c = make_consistent(etc.matrix());
        let labeled = Etc::new(c).unwrap();
        assert_eq!(classify_etc(&labeled), Consistency::Consistent);
    }
}
