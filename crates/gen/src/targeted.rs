//! Measure-targeted ECS synthesis: hit prescribed (MPH, TDH, TMA) values.
//!
//! The construction leans on three facts established by the paper:
//!
//! 1. **TMA is a function of the standard form only** (Eq. 8 + Theorem 2), and the
//!    standard form is invariant under diagonal row/column rescaling (Theorem 1's
//!    uniqueness up to scalars).
//! 2. **MPH and TDH are functions of the marginals only** (Eqs. 3 and 7), and a
//!    generalized Sinkhorn balance can impose any positive marginals on a positive
//!    matrix.
//! 3. Convex combinations of matrices balanced to the *same* marginals remain
//!    balanced, and share the Theorem-2 singular pair `(𝟙/√T, 𝟙/√M)`.
//!
//! So the generator (a) builds a *balanced* matrix with the target TMA by
//! bisecting a blend between a zero-affinity anchor (the uniform matrix: rank 1,
//! TMA = 0) and a maximal-affinity anchor (a standardized near-block-identity:
//! machines specialized on disjoint task groups), optionally mixing in a seeded
//! random balanced matrix for variety; then (b) rebalances the result to marginals
//! whose adjacent-ratio homogeneities are exactly the target MPH and TDH.

use hc_core::ecs::Ecs;
use hc_core::error::MeasureError;
use hc_linalg::svd::{svd_with, SvdAlgorithm};
use hc_linalg::Matrix;
use hc_sinkhorn::balance::{balance_with, standardize, BalanceOptions};

use crate::rng::{Rng, StdRng};

/// Target measure values for [`targeted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetSpec {
    /// Number of task types (rows).
    pub tasks: usize,
    /// Number of machines (columns).
    pub machines: usize,
    /// Target machine performance homogeneity, in `(0, 1]`.
    pub mph: f64,
    /// Target task difficulty homogeneity, in `(0, 1]`.
    pub tdh: f64,
    /// Target task-machine affinity, in `[0, max_achievable)` — the maximum
    /// depends on the shape and is slightly below 1; [`targeted`] reports it in
    /// the error when the target is out of reach.
    pub tma: f64,
    /// Fraction of a seeded random balanced matrix mixed into the zero-affinity
    /// anchor (0 = fully deterministic geometry, 1 = fully random base).
    pub jitter: f64,
}

impl TargetSpec {
    /// Spec with no jitter.
    pub fn exact(tasks: usize, machines: usize, mph: f64, tdh: f64, tma: f64) -> Self {
        TargetSpec {
            tasks,
            machines,
            mph,
            tdh,
            tma,
            jitter: 0.0,
        }
    }
}

/// Balancing options used internally (tight, generous budget — inputs are
/// positive so convergence is geometric).
fn bal_opts() -> BalanceOptions {
    BalanceOptions {
        tol: 1e-11,
        max_iters: 50_000,
        ..Default::default()
    }
}

/// TMA of an already-balanced matrix (mean of the non-maximum singular values).
fn tma_of_balanced(m: &Matrix) -> Result<f64, MeasureError> {
    let s = svd_with(m, SvdAlgorithm::Jacobi)?;
    let k = s.singular_values.len();
    if k <= 1 {
        return Ok(0.0);
    }
    let sum: f64 = s.singular_values[1..].iter().sum();
    Ok(sum / (k - 1) as f64)
}

/// The uniform balanced matrix (TMA = 0 anchor): every entry `1/√(TM)`.
fn uniform_anchor(t: usize, m: usize) -> Matrix {
    Matrix::filled(t, m, 1.0 / ((t * m) as f64).sqrt())
}

/// A maximal-affinity anchor: machines specialized on disjoint task groups
/// (`task i → machine i mod M`), softened by a tiny background so it is positive
/// and exactly balanceable, then standardized.
fn specialized_anchor(t: usize, m: usize) -> Result<Matrix, MeasureError> {
    let seed = Matrix::from_fn(t, m, |i, j| if j == i % m { 1.0 } else { 1e-9 });
    let out = standardize(&seed, &bal_opts())?;
    if !out.is_converged() {
        return Err(MeasureError::BalanceDidNotConverge {
            residual: out.residual,
            iterations: out.iterations,
        });
    }
    Ok(out.matrix)
}

/// A seeded random balanced matrix for jitter.
fn random_anchor(t: usize, m: usize, seed: u64) -> Result<Matrix, MeasureError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let raw = Matrix::from_fn(t, m, |_, _| rng.gen_range(0.2..5.0_f64));
    let out = standardize(&raw, &bal_opts())?;
    if !out.is_converged() {
        return Err(MeasureError::BalanceDidNotConverge {
            residual: out.residual,
            iterations: out.iterations,
        });
    }
    Ok(out.matrix)
}

/// Bisects `t ∈ [0, 1]` on the segment `(1−t)·a + t·b` until the balanced blend's
/// TMA is within `tol` of `target`. Requires `tma(a) ≤ target ≤ tma(b)`.
fn bisect_blend(a: &Matrix, b: &Matrix, target: f64, tol: f64) -> Result<Matrix, MeasureError> {
    let blend = |t: f64| -> Matrix {
        Matrix::from_fn(a.rows(), a.cols(), |i, j| {
            (1.0 - t) * a[(i, j)] + t * b[(i, j)]
        })
    };
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let m = blend(mid);
        let v = tma_of_balanced(&m)?;
        if (v - target).abs() <= tol {
            return Ok(m);
        }
        if v < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-15 {
            return Ok(m);
        }
    }
    Ok(blend(0.5 * (lo + hi)))
}

/// Geometric marginal vector of length `n` with adjacent-ratio homogeneity `h`,
/// ascending, scaled to sum to `total`.
fn geometric_marginals(n: usize, h: f64, total: f64) -> Vec<f64> {
    // v_k = h^{n-1-k} ascending (smallest first): ratios v_k/v_{k+1} = h.
    let raw: Vec<f64> = (0..n).map(|k| h.powi((n - 1 - k) as i32)).collect();
    let s: f64 = raw.iter().sum();
    raw.iter().map(|v| v * total / s).collect()
}

/// Like [`targeted`], but imposes caller-supplied marginals instead of geometric
/// ones. The resulting MPH/TDH are the adjacent-ratio homogeneities of
/// `col_targets`/`row_targets` (the caller controls them); TMA still equals
/// `spec.tma`. The marginal vectors are rescaled internally so their sums match.
pub fn targeted_with_marginals(
    spec: &TargetSpec,
    row_targets: &[f64],
    col_targets: &[f64],
    seed: u64,
) -> Result<Ecs, MeasureError> {
    if row_targets.len() != spec.tasks || col_targets.len() != spec.machines {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!(
                "marginal lengths ({}, {}) do not match the {}x{} spec",
                row_targets.len(),
                col_targets.len(),
                spec.tasks,
                spec.machines
            ),
        });
    }
    let balanced = balanced_with_tma(spec, seed)?;
    let total = ((spec.tasks * spec.machines) as f64).sqrt();
    let rsum: f64 = row_targets.iter().sum();
    let csum: f64 = col_targets.iter().sum();
    if (rsum <= 0.0 || rsum.is_nan()) || (csum <= 0.0 || csum.is_nan()) {
        return Err(MeasureError::InvalidEnvironment {
            reason: "marginal sums must be positive".into(),
        });
    }
    let rt: Vec<f64> = row_targets.iter().map(|v| v * total / rsum).collect();
    let ct: Vec<f64> = col_targets.iter().map(|v| v * total / csum).collect();
    let out = balance_with(&balanced, &rt, &ct, &bal_opts())?;
    if !out.is_converged() {
        return Err(MeasureError::BalanceDidNotConverge {
            residual: out.residual,
            iterations: out.iterations,
        });
    }
    Ecs::new(out.matrix)
}

/// Builds the balanced (standard-form) matrix with `spec.tma`, before any
/// marginal shaping.
fn balanced_with_tma(spec: &TargetSpec, seed: u64) -> Result<Matrix, MeasureError> {
    let (t, m) = (spec.tasks, spec.machines);
    if t < 2 || m < 2 {
        return Err(MeasureError::InvalidEnvironment {
            reason: "targeted generation needs at least 2 tasks and 2 machines".into(),
        });
    }
    for (name, v) in [("mph", spec.mph), ("tdh", spec.tdh)] {
        if !(v > 0.0 && v <= 1.0) {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("target {name} must be in (0, 1], got {v}"),
            });
        }
    }
    if !(0.0..=1.0).contains(&spec.tma) {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("target tma must be in [0, 1], got {}", spec.tma),
        });
    }
    if !(0.0..=1.0).contains(&spec.jitter) {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("jitter must be in [0, 1], got {}", spec.jitter),
        });
    }

    let u = uniform_anchor(t, m);
    let p = specialized_anchor(t, m)?;
    let max_tma = tma_of_balanced(&p)?;
    if spec.tma > max_tma {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!(
                "target tma {} exceeds the maximum {:.6} achievable for a {}x{} environment",
                spec.tma, max_tma, t, m
            ),
        });
    }

    // Zero-affinity-ish base, optionally jittered.
    let base = if spec.jitter > 0.0 {
        let r = random_anchor(t, m, seed)?;
        Matrix::from_fn(t, m, |i, j| {
            (1.0 - spec.jitter) * u[(i, j)] + spec.jitter * r[(i, j)]
        })
    } else {
        u.clone()
    };
    let base_tma = tma_of_balanced(&base)?;

    // Pick the segment that brackets the target and bisect.
    if spec.tma >= base_tma {
        bisect_blend(&base, &p, spec.tma, 1e-9)
    } else {
        bisect_blend(&u, &base, spec.tma, 1e-9)
    }
}

/// Generates a `T × M` positive ECS matrix whose MPH, TDH, and TMA equal the
/// targets (MPH/TDH exact by construction; TMA within `1e-6`).
///
/// Deterministic for a given `(spec, seed)`; `seed` only matters when
/// `spec.jitter > 0`.
///
/// ```
/// use hc_gen::targeted::{targeted, TargetSpec};
/// use hc_core::measures::{mph, tdh};
///
/// let e = targeted(&TargetSpec::exact(6, 4, 0.8, 0.6, 0.25), 0).unwrap();
/// assert!((mph(&e).unwrap() - 0.8).abs() < 1e-6);
/// assert!((tdh(&e).unwrap() - 0.6).abs() < 1e-6);
/// ```
pub fn targeted(spec: &TargetSpec, seed: u64) -> Result<Ecs, MeasureError> {
    let mut obs = hc_obs::span("gen.targeted");
    hc_obs::obs_counter!("gen_targeted_total").inc();
    if obs.armed() {
        obs.field_u64("tasks", spec.tasks as u64);
        obs.field_u64("machines", spec.machines as u64);
        obs.field_f64("mph", spec.mph);
        obs.field_f64("tdh", spec.tdh);
        obs.field_f64("tma", spec.tma);
    }
    let balanced = balanced_with_tma(spec, seed)?;
    // Impose the MPH/TDH marginals (TMA is invariant under this step).
    let total = ((spec.tasks * spec.machines) as f64).sqrt();
    let row_targets = geometric_marginals(spec.tasks, spec.tdh, total);
    let col_targets = geometric_marginals(spec.machines, spec.mph, total);
    let out = balance_with(&balanced, &row_targets, &col_targets, &bal_opts())?;
    if !out.is_converged() {
        return Err(MeasureError::BalanceDidNotConverge {
            residual: out.residual,
            iterations: out.iterations,
        });
    }
    Ecs::new(out.matrix)
}

/// Exact 2×2 synthesis (used for the paper's Fig. 8 pairs).
///
/// The 2×2 standard form with row/column sums 1 is `[[p, 1−p], [1−p, p]]` with
/// singular values `{1, |2p−1|}`, so `p = (1 + tma)/2` gives TMA exactly; the
/// marginals are then imposed by a generalized balance. Requires `tma < 1`
/// (a 2×2 with TMA = 1 has zeros and its MPH/TDH cannot be chosen freely).
pub fn synth2x2(mph: f64, tdh: f64, tma: f64) -> Result<Ecs, MeasureError> {
    for (name, v) in [("mph", mph), ("tdh", tdh)] {
        if !(v > 0.0 && v <= 1.0) {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("target {name} must be in (0, 1], got {v}"),
            });
        }
    }
    if !(0.0..1.0).contains(&tma) {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("synth2x2 requires tma in [0, 1), got {tma}"),
        });
    }
    let p = (1.0 + tma) / 2.0;
    let s = Matrix::from_rows(&[&[p, 1.0 - p], &[1.0 - p, p]])?;
    let row_targets = geometric_marginals(2, tdh, 2.0);
    let col_targets = geometric_marginals(2, mph, 2.0);
    let out = balance_with(&s, &row_targets, &col_targets, &bal_opts())?;
    if !out.is_converged() {
        return Err(MeasureError::BalanceDidNotConverge {
            residual: out.residual,
            iterations: out.iterations,
        });
    }
    Ecs::new(out.matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::measures::{mph, tdh};
    use hc_core::standard::tma;

    fn assert_targets(e: &Ecs, want_mph: f64, want_tdh: f64, want_tma: f64, tol: f64) {
        let got_mph = mph(e).unwrap();
        let got_tdh = tdh(e).unwrap();
        let got_tma = tma(e).unwrap();
        assert!(
            (got_mph - want_mph).abs() < tol,
            "MPH {got_mph} vs {want_mph}"
        );
        assert!(
            (got_tdh - want_tdh).abs() < tol,
            "TDH {got_tdh} vs {want_tdh}"
        );
        assert!(
            (got_tma - want_tma).abs() < tol.max(1e-5),
            "TMA {got_tma} vs {want_tma}"
        );
    }

    #[test]
    fn hits_targets_square() {
        let spec = TargetSpec::exact(6, 6, 0.7, 0.5, 0.3);
        let e = targeted(&spec, 0).unwrap();
        assert_targets(&e, 0.7, 0.5, 0.3, 1e-6);
    }

    #[test]
    fn hits_targets_rectangular() {
        let spec = TargetSpec::exact(12, 5, 0.82, 0.90, 0.07);
        let e = targeted(&spec, 0).unwrap();
        assert_targets(&e, 0.82, 0.90, 0.07, 1e-6);
        assert_eq!(e.num_tasks(), 12);
        assert_eq!(e.num_machines(), 5);
    }

    #[test]
    fn zero_tma_is_rank_one() {
        let spec = TargetSpec::exact(5, 4, 0.6, 0.8, 0.0);
        let e = targeted(&spec, 0).unwrap();
        assert_targets(&e, 0.6, 0.8, 0.0, 1e-6);
        let s = svd_with(e.matrix(), SvdAlgorithm::Jacobi).unwrap();
        assert!(s.singular_values[1] / s.singular_values[0] < 1e-6);
    }

    #[test]
    fn jitter_varies_matrix_but_not_measures() {
        let spec = TargetSpec {
            jitter: 0.5,
            ..TargetSpec::exact(6, 5, 0.75, 0.65, 0.2)
        };
        let a = targeted(&spec, 1).unwrap();
        let b = targeted(&spec, 2).unwrap();
        assert!(
            a.matrix().max_abs_diff(b.matrix()) > 1e-6,
            "seeds must differ"
        );
        assert_targets(&a, 0.75, 0.65, 0.2, 1e-5);
        assert_targets(&b, 0.75, 0.65, 0.2, 1e-5);
        // Same seed → identical.
        let c = targeted(&spec, 1).unwrap();
        assert_eq!(a.matrix(), c.matrix());
    }

    #[test]
    fn extreme_homogeneity_targets() {
        let e = targeted(&TargetSpec::exact(4, 4, 1.0, 1.0, 0.5), 0).unwrap();
        assert_targets(&e, 1.0, 1.0, 0.5, 1e-6);
        let e = targeted(&TargetSpec::exact(4, 4, 0.05, 0.05, 0.1), 0).unwrap();
        assert_targets(&e, 0.05, 0.05, 0.1, 1e-6);
    }

    #[test]
    fn near_max_tma() {
        let spec = TargetSpec::exact(6, 3, 0.9, 0.9, 0.9);
        let e = targeted(&spec, 0).unwrap();
        assert_targets(&e, 0.9, 0.9, 0.9, 1e-5);
    }

    #[test]
    fn unreachable_tma_reports_maximum() {
        // TMA = 1 exactly requires zeros; the positive generator must refuse.
        let spec = TargetSpec::exact(4, 4, 0.9, 0.9, 1.0);
        let err = targeted(&spec, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("maximum"), "message: {msg}");
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(targeted(&TargetSpec::exact(1, 4, 0.5, 0.5, 0.1), 0).is_err());
        assert!(targeted(&TargetSpec::exact(4, 4, 0.0, 0.5, 0.1), 0).is_err());
        assert!(targeted(&TargetSpec::exact(4, 4, 0.5, 1.5, 0.1), 0).is_err());
        assert!(targeted(&TargetSpec::exact(4, 4, 0.5, 0.5, -0.1), 0).is_err());
        let bad_jitter = TargetSpec {
            jitter: 2.0,
            ..TargetSpec::exact(4, 4, 0.5, 0.5, 0.1)
        };
        assert!(targeted(&bad_jitter, 0).is_err());
    }

    #[test]
    fn synth2x2_exact() {
        for (m, t, a) in [
            (0.31, 0.16, 0.05),
            (0.31, 0.05, 0.60),
            (0.9, 0.9, 0.0),
            (0.5, 0.5, 0.99),
        ] {
            let e = synth2x2(m, t, a).unwrap();
            assert_targets(&e, m, t, a, 1e-7);
        }
    }

    #[test]
    fn synth2x2_rejects_tma_one() {
        assert!(synth2x2(0.5, 0.5, 1.0).is_err());
        assert!(synth2x2(0.5, 0.5, -0.1).is_err());
        assert!(synth2x2(0.0, 0.5, 0.5).is_err());
    }

    #[test]
    fn custom_marginals_respected() {
        let spec = TargetSpec::exact(4, 3, 0.5, 0.5, 0.2);
        // Irregular marginals whose adjacent-ratio homogeneities we can compute.
        let rows = [1.0, 2.0, 2.5, 10.0];
        let cols = [3.0, 4.0, 9.0];
        let e = targeted_with_marginals(&spec, &rows, &cols, 0).unwrap();
        let want_tdh = hc_core::measures::adjacent_ratio_homogeneity(&rows).unwrap();
        let want_mph = hc_core::measures::adjacent_ratio_homogeneity(&cols).unwrap();
        assert!((tdh(&e).unwrap() - want_tdh).abs() < 1e-7);
        assert!((mph(&e).unwrap() - want_mph).abs() < 1e-7);
        assert!((tma(&e).unwrap() - 0.2).abs() < 1e-5);
        // Marginals are proportional to the requested vectors.
        let rs = e.matrix().row_sums();
        let k = rs[0] / rows[0];
        for (s, r) in rs.iter().zip(&rows) {
            assert!((s - r * k).abs() < 1e-7);
        }
    }

    #[test]
    fn custom_marginals_validation() {
        let spec = TargetSpec::exact(4, 3, 0.5, 0.5, 0.2);
        assert!(targeted_with_marginals(&spec, &[1.0; 3], &[1.0; 3], 0).is_err());
        assert!(targeted_with_marginals(&spec, &[1.0; 4], &[1.0; 2], 0).is_err());
    }

    #[test]
    fn geometric_marginals_have_exact_homogeneity() {
        let v = geometric_marginals(7, 0.43, 10.0);
        assert!((v.iter().sum::<f64>() - 10.0).abs() < 1e-12);
        let h = hc_core::measures::adjacent_ratio_homogeneity(&v).unwrap();
        assert!((h - 0.43).abs() < 1e-12);
        // Ascending.
        for w in v.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
