//! Samplers used by the generators: standard normal (Box–Muller polar) and gamma
//! (Marsaglia–Tsang), implemented over the in-tree [`crate::rng::Rng`] trait so the crate needs no
//! distribution crate.

use crate::rng::Rng;

/// Samples a standard normal variate (Marsaglia polar method).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `Gamma(shape, scale)` with mean `shape·scale` using Marsaglia–Tsang
/// (2000) for `shape ≥ 1` and the Johnk-style boost `Gamma(a) =
/// Gamma(a+1)·U^{1/a}` for `shape < 1`.
///
/// # Panics
/// Panics when `shape` or `scale` is not positive and finite.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "gamma: shape must be positive"
    );
    assert!(
        scale > 0.0 && scale.is_finite(),
        "gamma: scale must be positive"
    );
    if shape < 1.0 {
        // Boost: draw Gamma(shape + 1) and multiply by U^(1/shape).
        let g = gamma_ge1(rng, shape + 1.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return g * u.powf(1.0 / shape) * scale;
    }
    gamma_ge1(rng, shape) * scale
}

fn gamma_ge1<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Gamma distribution parameterized by mean and coefficient of variation, the
/// form used by the CVB ETC generator: `shape = 1/cov²`, `scale = mean·cov²`.
pub fn gamma_mean_cov<R: Rng + ?Sized>(rng: &mut R, mean: f64, cov: f64) -> f64 {
    assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
    assert!(cov > 0.0 && cov.is_finite(), "cov must be positive");
    let shape = 1.0 / (cov * cov);
    let scale = mean / shape;
    gamma(rng, shape, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..40_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn gamma_moments_shape_ge_1() {
        let mut rng = StdRng::seed_from_u64(7);
        let (shape, scale) = (4.0, 0.5);
        let samples: Vec<f64> = (0..40_000).map(|_| gamma(&mut rng, shape, scale)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - shape * scale).abs() < 0.03, "mean = {mean}");
        assert!((var - shape * scale * scale).abs() < 0.05, "var = {var}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_moments_shape_lt_1() {
        let mut rng = StdRng::seed_from_u64(13);
        let (shape, scale) = (0.5, 2.0);
        let samples: Vec<f64> = (0..60_000).map(|_| gamma(&mut rng, shape, scale)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 1.0).abs() < 0.04, "mean = {mean}");
        assert!((var - 2.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn gamma_mean_cov_parameterization() {
        let mut rng = StdRng::seed_from_u64(99);
        let samples: Vec<f64> = (0..60_000)
            .map(|_| gamma_mean_cov(&mut rng, 10.0, 0.3))
            .collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        let cov = var.sqrt() / mean;
        assert!((cov - 0.3).abs() < 0.01, "cov = {cov}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| gamma(&mut rng, 2.0, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| gamma(&mut rng, 2.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn gamma_rejects_bad_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        gamma(&mut rng, 0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn gamma_rejects_bad_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        gamma(&mut rng, 1.0, -1.0);
    }
}
