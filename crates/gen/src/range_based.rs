//! The range-based ETC generation method (Ali et al. 2000, the paper's
//! reference [4] — "used widely" per the paper's Sec. I).
//!
//! Each task gets a baseline `τ_i ~ U(1, R_task)`; each ETC entry multiplies the
//! baseline by an independent machine factor: `ETC(i, j) = τ_i · U(1, R_mach)`.
//! `R_task` controls task heterogeneity, `R_mach` machine heterogeneity. The
//! classic regimes are LoLo (low/low), LoHi, HiLo, HiHi with ranges around
//! 10/100/3000 in the literature.

use hc_core::ecs::Etc;
use hc_core::error::MeasureError;
use hc_linalg::Matrix;

use crate::rng::{Rng, StdRng};

/// Parameters for the range-based generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeParams {
    /// Number of task types (rows).
    pub tasks: usize,
    /// Number of machines (columns).
    pub machines: usize,
    /// Upper end of the task-baseline range `U(1, r_task)`.
    pub r_task: f64,
    /// Upper end of the machine-factor range `U(1, r_mach)`.
    pub r_mach: f64,
}

impl RangeParams {
    /// The classic low-task/low-machine heterogeneity regime.
    pub fn lo_lo(tasks: usize, machines: usize) -> Self {
        RangeParams {
            tasks,
            machines,
            r_task: 10.0,
            r_mach: 10.0,
        }
    }

    /// Low task, high machine heterogeneity.
    pub fn lo_hi(tasks: usize, machines: usize) -> Self {
        RangeParams {
            tasks,
            machines,
            r_task: 10.0,
            r_mach: 1000.0,
        }
    }

    /// High task, low machine heterogeneity.
    pub fn hi_lo(tasks: usize, machines: usize) -> Self {
        RangeParams {
            tasks,
            machines,
            r_task: 3000.0,
            r_mach: 10.0,
        }
    }

    /// High task, high machine heterogeneity.
    pub fn hi_hi(tasks: usize, machines: usize) -> Self {
        RangeParams {
            tasks,
            machines,
            r_task: 3000.0,
            r_mach: 1000.0,
        }
    }
}

/// Generates an ETC matrix with the range-based method, deterministically from
/// `seed`.
pub fn range_based(params: &RangeParams, seed: u64) -> Result<Etc, MeasureError> {
    if params.tasks == 0 || params.machines == 0 {
        return Err(MeasureError::InvalidEnvironment {
            reason: "range_based requires at least one task and one machine".into(),
        });
    }
    if !(params.r_task >= 1.0 && params.r_mach >= 1.0) {
        return Err(MeasureError::InvalidEnvironment {
            reason: "range_based ranges must be >= 1".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let baselines: Vec<f64> = (0..params.tasks)
        .map(|_| rng.gen_range(1.0..=params.r_task))
        .collect();
    let m = Matrix::from_fn(params.tasks, params.machines, |i, _| {
        baselines[i] * rng.gen_range(1.0..=params.r_mach)
    });
    Etc::new(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::measures::{mph, tdh};

    #[test]
    fn shape_and_positivity() {
        let etc = range_based(&RangeParams::lo_lo(8, 5), 1).unwrap();
        assert_eq!(etc.num_tasks(), 8);
        assert_eq!(etc.num_machines(), 5);
        assert!(etc.matrix().is_positive());
        assert!(etc.matrix().min().unwrap() >= 1.0);
        assert!(etc.matrix().max().unwrap() <= 100.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = range_based(&RangeParams::hi_hi(6, 4), 77).unwrap();
        let b = range_based(&RangeParams::hi_hi(6, 4), 77).unwrap();
        assert_eq!(a.matrix(), b.matrix());
        let c = range_based(&RangeParams::hi_hi(6, 4), 78).unwrap();
        assert!(a.matrix().max_abs_diff(c.matrix()) > 0.0);
    }

    #[test]
    fn regime_heterogeneity_ordering() {
        // Averaged over seeds, HiLo task ranges produce lower TDH (more task
        // heterogeneity) than LoLo; LoHi produces lower MPH than LoLo.
        let n = 24;
        let avg = |p: RangeParams, f: &dyn Fn(&hc_core::Ecs) -> f64| -> f64 {
            (0..n)
                .map(|s| f(&range_based(&p, s).unwrap().to_ecs()))
                .sum::<f64>()
                / n as f64
        };
        let tdh_lolo = avg(RangeParams::lo_lo(10, 6), &|e| tdh(e).unwrap());
        let tdh_hilo = avg(RangeParams::hi_lo(10, 6), &|e| tdh(e).unwrap());
        assert!(
            tdh_hilo < tdh_lolo,
            "high task range must lower TDH: {tdh_hilo} vs {tdh_lolo}"
        );
        let mph_lolo = avg(RangeParams::lo_lo(10, 6), &|e| mph(e).unwrap());
        let mph_lohi = avg(RangeParams::lo_hi(10, 6), &|e| mph(e).unwrap());
        assert!(
            mph_lohi < mph_lolo,
            "high machine range must lower MPH: {mph_lohi} vs {mph_lolo}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(range_based(
            &RangeParams {
                tasks: 0,
                machines: 3,
                r_task: 10.0,
                r_mach: 10.0
            },
            0
        )
        .is_err());
        assert!(range_based(
            &RangeParams {
                tasks: 2,
                machines: 2,
                r_task: 0.5,
                r_mach: 10.0
            },
            0
        )
        .is_err());
    }
}
