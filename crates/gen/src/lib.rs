//! # hc-gen — ETC matrix generation
//!
//! One of the paper's motivating applications is *"generating ETC matrices for
//! simulation studies that span the entire range of heterogeneities"* (reference
//! [2] of the paper). This crate implements three generators:
//!
//! * [`range_based`] — the classic range-based method of Ali et al. 2000
//!   (reference [4]), the de-facto standard in the resource-allocation literature.
//! * [`cvb`] — the coefficient-of-variation-based method (also Ali et al.), built
//!   on an in-crate Marsaglia–Tsang gamma sampler ([`dist`]).
//! * [`targeted`] — **measure-targeted synthesis**: produce an ECS matrix whose
//!   (MPH, TDH, TMA) hit prescribed values exactly (up to the stated tolerances),
//!   by combining three facts proved in the paper:
//!   1. the standard form fixes σ₁ = 1 and TMA is a function of the remaining
//!      singular values only (Theorem 2);
//!   2. TMA is invariant under diagonal rescaling (Theorem 1's uniqueness);
//!   3. MPH and TDH are functions of the marginals alone, which a generalized
//!      Sinkhorn balance can set to anything.
//!
//!   So: build a balanced matrix with the target TMA (bisection on a blend
//!   between a rank-1 "no affinity" matrix and a block-identity "full affinity"
//!   matrix), then rebalance it to marginals whose adjacent-ratio homogeneities
//!   are the target MPH and TDH.
//!
//! [`ensemble`] provides deterministic, seed-addressed parallel batch generation
//! for the benchmark sweeps.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod braun;
pub mod consistency;
pub mod cvb;
pub mod dist;
pub mod ensemble;
pub mod range_based;
pub mod rng;
pub mod targeted;

pub use consistency::{classify, consistency_degree, make_consistent, Consistency};
pub use cvb::{cvb, CvbParams};
pub use range_based::{range_based, RangeParams};
pub use targeted::{synth2x2, targeted, targeted_with_marginals, TargetSpec};
