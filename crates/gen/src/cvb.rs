//! The coefficient-of-variation-based (CVB) ETC generation method
//! (Ali et al. 2000): heterogeneity is specified by the COV of gamma
//! distributions rather than by ranges, giving independent, interpretable knobs.
//!
//! Procedure: draw a per-task mean `q_i ~ Gamma(mean = μ_task, cov = V_task)`;
//! each row is then filled with `ETC(i, j) ~ Gamma(mean = q_i, cov = V_mach)`.

use crate::dist::gamma_mean_cov;
use hc_core::ecs::Etc;
use hc_core::error::MeasureError;
use hc_linalg::Matrix;

use crate::rng::StdRng;

/// Parameters for the CVB generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvbParams {
    /// Number of task types (rows).
    pub tasks: usize,
    /// Number of machines (columns).
    pub machines: usize,
    /// Mean task execution time `μ_task`.
    pub mean_task: f64,
    /// Task heterogeneity: COV of the per-task means.
    pub v_task: f64,
    /// Machine heterogeneity: COV of the entries within a row.
    pub v_mach: f64,
}

impl CvbParams {
    /// A balanced default around the literature's common settings.
    pub fn new(tasks: usize, machines: usize, v_task: f64, v_mach: f64) -> Self {
        CvbParams {
            tasks,
            machines,
            mean_task: 1000.0,
            v_task,
            v_mach,
        }
    }
}

/// Generates an ETC matrix with the CVB method, deterministically from `seed`.
pub fn cvb(params: &CvbParams, seed: u64) -> Result<Etc, MeasureError> {
    if params.tasks == 0 || params.machines == 0 {
        return Err(MeasureError::InvalidEnvironment {
            reason: "cvb requires at least one task and one machine".into(),
        });
    }
    if (params.mean_task <= 0.0 || params.mean_task.is_nan())
        || (params.v_task <= 0.0 || params.v_task.is_nan())
        || (params.v_mach <= 0.0 || params.v_mach.is_nan())
    {
        return Err(MeasureError::InvalidEnvironment {
            reason: "cvb parameters must be positive".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let q: Vec<f64> = (0..params.tasks)
        .map(|_| gamma_mean_cov(&mut rng, params.mean_task, params.v_task))
        .collect();
    let m = Matrix::from_fn(params.tasks, params.machines, |i, _| {
        gamma_mean_cov(&mut rng, q[i], params.v_mach)
    });
    Etc::new(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::measures::{mph, tdh};
    use hc_core::standard::tma;

    #[test]
    fn shape_and_positivity() {
        let etc = cvb(&CvbParams::new(12, 5, 0.3, 0.3), 3).unwrap();
        assert_eq!(etc.num_tasks(), 12);
        assert_eq!(etc.num_machines(), 5);
        assert!(etc.matrix().is_positive());
    }

    #[test]
    fn determinism() {
        let a = cvb(&CvbParams::new(5, 4, 0.5, 0.2), 11).unwrap();
        let b = cvb(&CvbParams::new(5, 4, 0.5, 0.2), 11).unwrap();
        assert_eq!(a.matrix(), b.matrix());
    }

    #[test]
    fn vtask_controls_task_heterogeneity() {
        let n = 24;
        let avg_tdh = |v_task: f64| -> f64 {
            (0..n)
                .map(|s| {
                    tdh(&cvb(&CvbParams::new(10, 6, v_task, 0.1), s)
                        .unwrap()
                        .to_ecs())
                    .unwrap()
                })
                .sum::<f64>()
                / n as f64
        };
        let low = avg_tdh(0.1);
        let high = avg_tdh(1.0);
        assert!(high < low, "higher V_task must lower TDH: {high} vs {low}");
    }

    #[test]
    fn vmach_controls_affinity() {
        // With V_mach → 0 rows are near-proportional (TMA → 0); raising V_mach
        // decorrelates columns and raises TMA.
        let n = 16;
        let avg_tma = |v_mach: f64| -> f64 {
            (0..n)
                .map(|s| {
                    tma(&cvb(&CvbParams::new(8, 5, 0.3, v_mach), s).unwrap().to_ecs()).unwrap()
                })
                .sum::<f64>()
                / n as f64
        };
        let low = avg_tma(0.05);
        let high = avg_tma(1.0);
        assert!(low < 0.1, "near-proportional rows: TMA = {low}");
        assert!(high > low * 2.0, "V_mach must raise TMA: {high} vs {low}");
    }

    #[test]
    fn vmach_controls_machine_heterogeneity() {
        let n = 24;
        let avg_mph = |v_mach: f64| -> f64 {
            (0..n)
                .map(|s| {
                    mph(&cvb(&CvbParams::new(10, 6, 0.2, v_mach), s)
                        .unwrap()
                        .to_ecs())
                    .unwrap()
                })
                .sum::<f64>()
                / n as f64
        };
        let low = avg_mph(0.05);
        let high = avg_mph(1.2);
        assert!(high < low, "higher V_mach must lower MPH: {high} vs {low}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(cvb(&CvbParams::new(0, 5, 0.3, 0.3), 0).is_err());
        assert!(cvb(&CvbParams::new(5, 0, 0.3, 0.3), 0).is_err());
        assert!(cvb(
            &CvbParams {
                tasks: 2,
                machines: 2,
                mean_task: -1.0,
                v_task: 0.1,
                v_mach: 0.1
            },
            0
        )
        .is_err());
        assert!(cvb(&CvbParams::new(2, 2, 0.0, 0.3), 0).is_err());
    }
}
