//! The classic Braun et al. 2001 benchmark categories (the paper's reference
//! [6]): twelve ETC classes crossing heterogeneity regime × consistency class.
//!
//! Naming follows the literature: `u_x_ttmm` where `x ∈ {c, s, i}` (consistent,
//! semi-consistent, inconsistent) and `tt`/`mm` ∈ {hi, lo} are task/machine
//! heterogeneity. Semi-consistency sorts the even-indexed machine columns.

use crate::consistency::make_partially_consistent;
use crate::range_based::{range_based, RangeParams};
use hc_core::ecs::Etc;
use hc_core::error::MeasureError;

/// Heterogeneity regime for one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Het {
    /// High heterogeneity.
    Hi,
    /// Low heterogeneity.
    Lo,
}

/// Consistency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyClass {
    /// Rows fully sorted (global machine order).
    Consistent,
    /// Even-indexed columns sorted, odd columns untouched.
    SemiConsistent,
    /// No sorting.
    Inconsistent,
}

/// One of the twelve benchmark categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BraunCategory {
    /// Consistency class.
    pub class: ConsistencyClass,
    /// Task heterogeneity.
    pub task_het: Het,
    /// Machine heterogeneity.
    pub machine_het: Het,
}

impl BraunCategory {
    /// The literature's `u_x_tttmm` name.
    pub fn name(&self) -> String {
        let x = match self.class {
            ConsistencyClass::Consistent => 'c',
            ConsistencyClass::SemiConsistent => 's',
            ConsistencyClass::Inconsistent => 'i',
        };
        let tt = match self.task_het {
            Het::Hi => "hi",
            Het::Lo => "lo",
        };
        let mm = match self.machine_het {
            Het::Hi => "hi",
            Het::Lo => "lo",
        };
        format!("u_{x}_{tt}{mm}")
    }
}

/// All twelve categories in the canonical order.
pub fn all_categories() -> Vec<BraunCategory> {
    let mut out = Vec::with_capacity(12);
    for class in [
        ConsistencyClass::Consistent,
        ConsistencyClass::SemiConsistent,
        ConsistencyClass::Inconsistent,
    ] {
        for task_het in [Het::Hi, Het::Lo] {
            for machine_het in [Het::Hi, Het::Lo] {
                out.push(BraunCategory {
                    class,
                    task_het,
                    machine_het,
                });
            }
        }
    }
    out
}

/// Generates one ETC matrix of the given category (range-based base with the
/// literature's classic ranges: task 3000/100, machine 1000/10).
pub fn braun(
    category: BraunCategory,
    tasks: usize,
    machines: usize,
    seed: u64,
) -> Result<Etc, MeasureError> {
    let r_task = match category.task_het {
        Het::Hi => 3000.0,
        Het::Lo => 100.0,
    };
    let r_mach = match category.machine_het {
        Het::Hi => 1000.0,
        Het::Lo => 10.0,
    };
    let base = range_based(
        &RangeParams {
            tasks,
            machines,
            r_task,
            r_mach,
        },
        seed,
    )?;
    let raw = base.matrix();
    let shaped = match category.class {
        ConsistencyClass::Inconsistent => raw.clone(),
        ConsistencyClass::Consistent => {
            let all: Vec<usize> = (0..machines).collect();
            make_partially_consistent(raw, &all)?
        }
        ConsistencyClass::SemiConsistent => {
            let evens: Vec<usize> = (0..machines).step_by(2).collect();
            make_partially_consistent(raw, &evens)?
        }
    };
    Etc::new(shaped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::{classify, Consistency};
    use hc_core::measures::{mph, tdh};
    use hc_core::standard::tma;

    #[test]
    fn twelve_categories_with_unique_names() {
        let cats = all_categories();
        assert_eq!(cats.len(), 12);
        let mut names: Vec<String> = cats.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"u_c_hihi".to_string()));
        assert!(names.contains(&"u_i_lolo".to_string()));
        assert!(names.contains(&"u_s_hilo".to_string()));
    }

    #[test]
    fn consistency_classes_realized() {
        for cat in all_categories() {
            let etc = braun(cat, 10, 6, 7).unwrap();
            let got = classify(etc.matrix());
            match cat.class {
                ConsistencyClass::Consistent => {
                    assert_eq!(got, Consistency::Consistent, "{}", cat.name())
                }
                ConsistencyClass::SemiConsistent => {
                    assert_ne!(got, Consistency::Inconsistent, "{}", cat.name())
                }
                ConsistencyClass::Inconsistent => {
                    // Random range-based matrices of this size are essentially
                    // never globally consistent.
                    assert_ne!(got, Consistency::Consistent, "{}", cat.name())
                }
            }
        }
    }

    #[test]
    fn heterogeneity_axes_move_the_measures() {
        let avg = |cat: BraunCategory, f: &dyn Fn(&hc_core::Ecs) -> f64| -> f64 {
            (0..16)
                .map(|s| f(&braun(cat, 10, 6, s).unwrap().to_ecs()))
                .sum::<f64>()
                / 16.0
        };
        let hi_task = BraunCategory {
            class: ConsistencyClass::Inconsistent,
            task_het: Het::Hi,
            machine_het: Het::Lo,
        };
        let lo_task = BraunCategory {
            task_het: Het::Lo,
            ..hi_task
        };
        assert!(
            avg(hi_task, &|e| tdh(e).unwrap()) < avg(lo_task, &|e| tdh(e).unwrap()),
            "high task heterogeneity must lower TDH"
        );
        let hi_mach = BraunCategory {
            class: ConsistencyClass::Inconsistent,
            task_het: Het::Lo,
            machine_het: Het::Hi,
        };
        let lo_mach = BraunCategory {
            machine_het: Het::Lo,
            ..hi_mach
        };
        assert!(
            avg(hi_mach, &|e| mph(e).unwrap()) < avg(lo_mach, &|e| mph(e).unwrap()),
            "high machine heterogeneity must lower MPH"
        );
    }

    #[test]
    fn consistent_categories_have_lower_tma() {
        let avg_tma = |class: ConsistencyClass| -> f64 {
            (0..12)
                .map(|s| {
                    let cat = BraunCategory {
                        class,
                        task_het: Het::Hi,
                        machine_het: Het::Hi,
                    };
                    tma(&braun(cat, 10, 6, s).unwrap().to_ecs()).unwrap()
                })
                .sum::<f64>()
                / 12.0
        };
        let c = avg_tma(ConsistencyClass::Consistent);
        let i = avg_tma(ConsistencyClass::Inconsistent);
        let s = avg_tma(ConsistencyClass::SemiConsistent);
        assert!(c < i, "consistent TMA {c} must be below inconsistent {i}");
        assert!(c <= s && s <= i + 1e-9, "semi {s} between {c} and {i}");
    }

    #[test]
    fn deterministic() {
        let cat = all_categories()[0];
        let a = braun(cat, 6, 4, 3).unwrap();
        let b = braun(cat, 6, 4, 3).unwrap();
        assert_eq!(a.matrix(), b.matrix());
    }
}
