//! In-tree pseudo-random number generation: SplitMix64 and xoshiro256++.
//!
//! The workspace must build with **no registry access**, so instead of the
//! `rand` crate this module provides the two small, well-studied generators the
//! generators and schedulers actually need:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One multiply-xor
//!   pipeline per output; used standalone for cheap seed-addressed streams and
//!   as the state initializer for xoshiro (as its authors recommend, so that
//!   low-entropy seeds like `0`, `1`, `2`… still yield well-mixed states).
//! * [`Xoshiro256pp`] (alias [`StdRng`]) — Blackman & Vigna's xoshiro256++,
//!   the general-purpose generator: 256-bit state, period 2²⁵⁶−1, passes
//!   BigCrush. This is what every `seed_from_u64` call site gets.
//!
//! The API mirrors the subset of `rand` the workspace used — `seed_from_u64`,
//! `gen_range` over half-open/inclusive ranges, `gen_bool` — so call sites only
//! swap their imports. Determinism is part of the contract: a given seed must
//! produce the same stream on every platform and in every thread interleaving.

use std::ops::{Range, RangeInclusive};

/// The workspace's default seeded generator (xoshiro256++).
pub type StdRng = Xoshiro256pp;

/// Uniform sampling over a range type; the `gen_range` argument.
pub trait UniformRange<T> {
    /// Draws one uniform sample from `self` using `g`.
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> T;
}

/// Minimal random-generator trait: one source method (`next_u64`) plus derived
/// samplers, mirroring the `rand::Rng` surface the workspace uses.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2⁻⁵³: every value is exactly representable.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`) range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// SplitMix64: `z = (state += 0x9E3779B97F4A7C15)` pushed through two xor-shift
/// multiplies. Stateless beyond one `u64`, so ideal for seed derivation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ (Blackman & Vigna, 2019).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state from four SplitMix64 outputs, per the xoshiro
    /// reference implementation's seeding guidance.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 is a bijection on u64, so the four words cannot all be
        // zero unless the mixer maps four consecutive states to zero — it
        // does not, for any seed.
        Self { s }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl UniformRange<usize> for Range<usize> {
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        // Widening multiply maps 64 uniform bits onto [0, span) with bias
        // < span/2⁶⁴ — immaterial for the spans used here (≤ a few thousand).
        let hi = ((g.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

impl UniformRange<u64> for Range<u64> {
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        let hi = ((g.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl UniformRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // next_f64 < 1, so the result stays strictly below `end` (up to the
        // final rounding of the fused expression, which callers tolerate).
        self.start + g.next_f64() * (self.end - self.start)
    }
}

impl UniformRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        // Scale by 2⁻⁵³·(2⁵³−1)⁻¹-style denominator so `hi` is reachable.
        let u = (g.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn usize_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = r.gen_range(2..9usize);
            assert!((2..9).contains(&k));
            seen[k - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values hit: {seen:?}");
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y = r.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(z > 0.0 && z < 1.0);
        }
    }

    #[test]
    fn mean_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5..5usize);
    }
}
