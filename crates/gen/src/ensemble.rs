//! Deterministic, seed-addressed parallel ensemble generation.
//!
//! Benchmark sweeps need hundreds of matrices; each item is generated from
//! `base_seed + index`, so results are reproducible and independent of the thread
//! count (the parallel map preserves index order).

use crate::cvb::{cvb, CvbParams};
use crate::range_based::{range_based, RangeParams};
use crate::targeted::{targeted, TargetSpec};
use hc_core::ecs::{Ecs, Etc};
use hc_core::error::MeasureError;
use hc_linalg::par;

/// Generates `count` range-based ETC matrices in parallel (seeds
/// `base_seed..base_seed+count`).
pub fn range_based_ensemble(
    params: &RangeParams,
    base_seed: u64,
    count: usize,
) -> Vec<Result<Etc, MeasureError>> {
    par::par_map_indexed(count, par::num_threads(), |i| {
        range_based(params, base_seed + i as u64)
    })
}

/// Generates `count` CVB ETC matrices in parallel.
pub fn cvb_ensemble(
    params: &CvbParams,
    base_seed: u64,
    count: usize,
) -> Vec<Result<Etc, MeasureError>> {
    par::par_map_indexed(count, par::num_threads(), |i| {
        cvb(params, base_seed + i as u64)
    })
}

/// Generates `count` measure-targeted ECS matrices in parallel.
pub fn targeted_ensemble(
    spec: &TargetSpec,
    base_seed: u64,
    count: usize,
) -> Vec<Result<Ecs, MeasureError>> {
    par::par_map_indexed(count, par::num_threads(), |i| {
        targeted(spec, base_seed + i as u64)
    })
}

/// A grid of targeted specs spanning the (MPH, TDH, TMA) cube with `steps`
/// values per axis (endpoints included), for heterogeneity-sweep studies.
pub fn measure_grid(tasks: usize, machines: usize, steps: usize, tma_max: f64) -> Vec<TargetSpec> {
    assert!(steps >= 2, "grid needs at least 2 steps per axis");
    let axis = |lo: f64, hi: f64| -> Vec<f64> {
        (0..steps)
            .map(|k| lo + (hi - lo) * k as f64 / (steps - 1) as f64)
            .collect()
    };
    let mut specs = Vec::with_capacity(steps * steps * steps);
    for &mph in &axis(0.1, 1.0) {
        for &tdh in &axis(0.1, 1.0) {
            for &tma in &axis(0.0, tma_max) {
                specs.push(TargetSpec::exact(tasks, machines, mph, tdh, tma));
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_ensemble_deterministic_and_ordered() {
        let p = RangeParams::lo_lo(4, 3);
        let a = range_based_ensemble(&p, 100, 8);
        let b = range_based_ensemble(&p, 100, 8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_ref().unwrap().matrix(), y.as_ref().unwrap().matrix());
        }
        // Ensemble members differ.
        assert!(
            a[0].as_ref()
                .unwrap()
                .matrix()
                .max_abs_diff(a[1].as_ref().unwrap().matrix())
                > 0.0
        );
    }

    #[test]
    fn cvb_ensemble_works() {
        let p = CvbParams::new(5, 4, 0.3, 0.3);
        let out = cvb_ensemble(&p, 7, 6);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn targeted_ensemble_all_hit_targets() {
        let spec = TargetSpec {
            jitter: 0.4,
            ..TargetSpec::exact(5, 4, 0.7, 0.6, 0.15)
        };
        let out = targeted_ensemble(&spec, 0, 4);
        for r in &out {
            let e = r.as_ref().unwrap();
            assert!((hc_core::measures::mph(e).unwrap() - 0.7).abs() < 1e-5);
            assert!((hc_core::measures::tdh(e).unwrap() - 0.6).abs() < 1e-5);
        }
    }

    #[test]
    fn grid_covers_cube() {
        let g = measure_grid(4, 4, 3, 0.8);
        assert_eq!(g.len(), 27);
        assert!(g
            .iter()
            .any(|s| s.mph == 0.1 && s.tdh == 0.1 && s.tma == 0.0));
        assert!(g
            .iter()
            .any(|s| s.mph == 1.0 && s.tdh == 1.0 && (s.tma - 0.8).abs() < 1e-12));
    }

    #[test]
    #[should_panic]
    fn grid_needs_two_steps() {
        measure_grid(4, 4, 1, 0.5);
    }
}
