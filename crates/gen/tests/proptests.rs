//! Property-based tests for the generators: target accuracy, consistency
//! transforms, and distributional knobs.

use hc_core::measures::{adjacent_ratio_homogeneity, mph, tdh};
use hc_core::standard::tma;
use hc_gen::consistency::{classify, consistency_degree, make_consistent, Consistency};
use hc_gen::range_based::{range_based, RangeParams};
use hc_gen::targeted::{synth2x2, targeted, TargetSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn targeted_hits_arbitrary_targets(
        t in 3usize..7,
        m in 3usize..6,
        mph_t in 0.15f64..1.0,
        tdh_t in 0.15f64..1.0,
        tma_t in 0.0f64..0.5,
        seed in 0u64..50,
    ) {
        let e = targeted(
            &TargetSpec { tasks: t, machines: m, mph: mph_t, tdh: tdh_t, tma: tma_t, jitter: 0.4 },
            seed,
        ).unwrap();
        prop_assert!((mph(&e).unwrap() - mph_t).abs() < 1e-5);
        prop_assert!((tdh(&e).unwrap() - tdh_t).abs() < 1e-5);
        prop_assert!((tma(&e).unwrap() - tma_t).abs() < 1e-4);
    }

    #[test]
    fn synth2x2_exact_everywhere(
        mph_t in 0.05f64..1.0,
        tdh_t in 0.05f64..1.0,
        tma_t in 0.0f64..0.95,
    ) {
        let e = synth2x2(mph_t, tdh_t, tma_t).unwrap();
        prop_assert!((mph(&e).unwrap() - mph_t).abs() < 1e-7);
        prop_assert!((tdh(&e).unwrap() - tdh_t).abs() < 1e-7);
        prop_assert!((tma(&e).unwrap() - tma_t).abs() < 1e-5);
    }

    #[test]
    fn make_consistent_properties(seed in 0u64..200) {
        let etc = range_based(&RangeParams::hi_hi(8, 5), seed).unwrap();
        let c = make_consistent(etc.matrix());
        // Classified consistent, degree 1.
        prop_assert_eq!(classify(&c), Consistency::Consistent);
        prop_assert_eq!(consistency_degree(&c), 1.0);
        // Row multisets preserved.
        for i in 0..c.rows() {
            let mut orig: Vec<f64> = etc.matrix().row(i).to_vec();
            let mut sorted: Vec<f64> = c.row(i).to_vec();
            orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(orig, sorted);
        }
        // Idempotent.
        prop_assert_eq!(make_consistent(&c), c);
    }

    #[test]
    fn consistency_degree_bounded(seed in 0u64..200) {
        let etc = range_based(&RangeParams::lo_lo(6, 4), seed).unwrap();
        let d = consistency_degree(etc.matrix());
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn generated_marginal_homogeneities_are_valid(
        n in 2usize..9,
        h in 0.05f64..1.0,
    ) {
        // Internal invariant surfaced through the public API: a targeted matrix's
        // sorted marginals have adjacent-ratio homogeneity equal to the target.
        let e = targeted(&TargetSpec::exact(n.max(2), 3, 0.5, h, 0.1), 0).unwrap();
        let rows = e.matrix().row_sums();
        let got = adjacent_ratio_homogeneity(&rows).unwrap();
        prop_assert!((got - h).abs() < 1e-9, "{} vs {}", got, h);
    }

    #[test]
    fn range_based_entries_within_ranges(seed in 0u64..100) {
        let p = RangeParams { tasks: 6, machines: 4, r_task: 50.0, r_mach: 20.0 };
        let etc = range_based(&p, seed).unwrap();
        let m = etc.matrix();
        prop_assert!(m.min().unwrap() >= 1.0);
        prop_assert!(m.max().unwrap() <= 50.0 * 20.0);
    }
}

/// Non-proptest sanity: a rank-one check that the consistent transform cannot
/// raise TMA on average (statistical, so outside the per-case harness).
#[test]
fn consistency_never_raises_mean_tma() {
    let mut raw_sum = 0.0;
    let mut cons_sum = 0.0;
    for seed in 0..16 {
        let etc = range_based(&RangeParams::hi_hi(9, 5), seed).unwrap();
        let raw_ecs = hc_core::Ecs::new(etc.matrix().map(|v| 1.0 / v)).unwrap();
        let cons = make_consistent(etc.matrix());
        let cons_ecs = hc_core::Ecs::new(cons.map(|v| 1.0 / v)).unwrap();
        raw_sum += tma(&raw_ecs).unwrap();
        cons_sum += tma(&cons_ecs).unwrap();
    }
    assert!(
        cons_sum < raw_sum,
        "mean TMA must drop under consistency: {cons_sum} vs {raw_sum}"
    );
}
