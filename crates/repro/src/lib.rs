//! # hc-repro — the experiment harness
//!
//! Regenerates every figure of the paper plus the extension experiments listed in
//! DESIGN.md, as plain-text tables with paper-reported vs. measured values. The
//! `repro` binary drives it:
//!
//! ```text
//! repro --all            # everything
//! repro --figure 4       # one figure (1–8)
//! repro --section 6      # the Sec. VI zero-pattern cases
//! repro --ext x1         # extension experiments (x1–x4)
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod extensions;
pub mod figures;
pub mod table;

/// Runs every experiment, returning the concatenated report.
pub fn run_all() -> String {
    let mut out = String::new();
    for f in 1..=8 {
        out.push_str(&figures::figure(f));
        out.push('\n');
    }
    out.push_str(&figures::section6());
    out.push('\n');
    for x in ["x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9"] {
        out.push_str(&extensions::extension(x));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn run_all_mentions_every_experiment() {
        let s = super::run_all();
        for needle in [
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Section VI",
            "X1",
            "X2",
            "X3",
            "X4",
            "X5",
            "X6",
            "X7",
            "X8",
            "X9",
        ] {
            assert!(s.contains(needle), "report missing {needle}");
        }
    }
}
