//! Regeneration of the paper's Figures 1–8 and the Section VI cases.

use crate::table::{fmt, Table};
use hc_core::extremes::{
    fig4_standard_form_of_c, figure1_ecs, figure2_environments, figure3a, figure3b, FIG4_ALL,
};
use hc_core::measures::{
    cov, geometric_mean_measure, machine_performances, mph, mph_from_performances, ratio_measure,
    tdh,
};
use hc_core::report::characterize;
use hc_core::standard::{standard_form, tma, TmaOptions};
use hc_core::weights::Weights;
use hc_sinkhorn::balance::{balance_with, BalanceOptions};
use hc_sinkhorn::structure::{analyze_square, eq10_matrix, eq12_matrix};
use hc_spec::dataset::{cfp2006, cint2006, SpecDataset};
use hc_spec::fig8::{fig8a, fig8b, FIG8A_TARGETS, FIG8B_TARGETS};
use hc_spec::names::{machines, MACHINE_LABELS};

/// Dispatches to one figure's report (1–8).
pub fn figure(n: usize) -> String {
    let mut obs = hc_obs::span("repro.figure");
    obs.field_u64("figure", n as u64);
    hc_obs::obs_counter!("repro_figures_total").inc();
    match n {
        1 => figure1(),
        2 => figure2(),
        3 => figure3(),
        4 => figure4(),
        5 => figure5(),
        6 => figure6(),
        7 => figure7(),
        8 => figure8(),
        _ => format!("no Figure {n} in the paper (valid: 1-8)\n"),
    }
}

/// Figure 1: machine performance = ECS column sum; MP₁ = 17.
pub fn figure1() -> String {
    let e = figure1_ecs();
    let w = Weights::uniform(e.num_tasks(), e.num_machines());
    let mp = machine_performances(&e, &w).expect("static environment");
    let mut t = Table::new(vec!["machine", "performance (col sum)", "paper"]);
    for (j, v) in mp.iter().enumerate() {
        t.row(vec![
            format!("m{}", j + 1),
            fmt(*v),
            if j == 0 {
                "17".to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    format!(
        "== Figure 1: machine performance from an ECS matrix (Eq. 2) ==\n{}\n{}",
        e.matrix(),
        t.render()
    )
}

/// Figure 2: MPH vs the alternative measures R, G, COV on four environments.
pub fn figure2() -> String {
    let mut t = Table::new(vec![
        "environment",
        "performances",
        "MPH",
        "R",
        "G",
        "COV",
        "paper (MPH, R, G, COV)",
    ]);
    let paper = [
        "(0.5, 0.06, 0.5, 0.88)",
        "(0.77, 0.06, 0.5, 1.5)",
        "(0.77, 0.06, 0.5, 0.46)",
        "(0.63, 0.06, 0.5, 0.90)",
    ];
    for ((name, perf), p) in figure2_environments().iter().zip(paper) {
        t.row(vec![
            name.to_string(),
            format!("{perf:?}"),
            fmt(mph_from_performances(perf).expect("positive")),
            fmt(ratio_measure(perf).expect("positive")),
            fmt(geometric_mean_measure(perf).expect("positive")),
            fmt(cov(perf).expect("positive")),
            p.to_string(),
        ]);
    }
    format!(
        "== Figure 2: only MPH matches the intuitive heterogeneity ordering ==\n{}",
        t.render()
    )
}

/// Figure 3: equal MPH, different TMA.
pub fn figure3() -> String {
    let a = figure3a();
    let b = figure3b();
    let mut t = Table::new(vec!["matrix", "MPH", "TMA", "paper"]);
    t.row(vec![
        "(a) identical columns".to_string(),
        fmt(mph(&a).expect("static")),
        fmt(tma(&a).expect("static")),
        "MPH = 1, TMA = 0".to_string(),
    ]);
    t.row(vec![
        "(b) permuted columns".to_string(),
        fmt(mph(&b).expect("static")),
        fmt(tma(&b).expect("static")),
        "MPH = 1, TMA > 0".to_string(),
    ]);
    format!(
        "== Figure 3: MPH misses affinity; TMA captures it ==\n{}",
        t.render()
    )
}

/// Figure 4: eight extreme 2×2 matrices spanning the measure cube corners.
pub fn figure4() -> String {
    let mut t = Table::new(vec![
        "matrix",
        "entries",
        "MPH",
        "TDH",
        "TMA",
        "expected (MPH, TDH, TMA)",
    ]);
    for f in FIG4_ALL {
        let e = f.matrix();
        let (tma_high, mph_high, tdh_high) = f.expected();
        let lab = |b: bool| if b { "high" } else { "low" };
        let m = e.matrix();
        t.row(vec![
            f.label().to_string(),
            format!(
                "[[{}, {}], [{}, {}]]",
                m[(0, 0)],
                m[(0, 1)],
                m[(1, 0)],
                m[(1, 1)]
            ),
            fmt(mph(&e).expect("static")),
            fmt(tdh(&e).expect("static")),
            fmt(tma(&e).expect("static")),
            format!(
                "({}, {}, {})",
                lab(mph_high),
                lab(tdh_high),
                if tma_high { "1" } else { "0" }
            ),
        ]);
    }
    // The convergence claim: A, B, D → standard form of C.
    let target = fig4_standard_form_of_c();
    let mut conv = String::new();
    for f in FIG4_ALL {
        if matches!(f.label(), 'A' | 'B' | 'D') {
            let sf = standard_form(&f.matrix(), &TmaOptions::default()).expect("static");
            conv.push_str(&format!(
                "  {} -> standard form of C: max |delta| = {:.2e}\n",
                f.label(),
                sf.matrix.max_abs_diff(&target)
            ));
        }
    }
    format!(
        "== Figure 4: extreme 2x2 environments (reconstructed entries) ==\n{}\nEq. 9 limit check (paper: A, B, D all converge to the standard form of C):\n{conv}",
        t.render()
    )
}

/// Figure 5: the five SPEC machines.
pub fn figure5() -> String {
    let mut t = Table::new(vec!["label", "machine"]);
    for (l, n) in machines() {
        t.row(vec![l, n]);
    }
    format!("== Figure 5: the five SPEC machines ==\n{}", t.render())
}

fn spec_figure(title: &str, d: &SpecDataset) -> String {
    let e = d.ecs();
    let r = characterize(&e).expect("calibrated dataset");
    let mut t = Table::new(vec!["measure", "measured", "paper"]);
    t.row(vec!["TDH".to_string(), fmt(r.tdh), fmt(d.targets.tdh)]);
    t.row(vec!["MPH".to_string(), fmt(r.mph), fmt(d.targets.mph)]);
    t.row(vec!["TMA".to_string(), fmt(r.tma), fmt(d.targets.tma)]);
    t.row(vec![
        "Sinkhorn iterations (tol 1e-8)".to_string(),
        r.standardization_iterations.to_string(),
        d.targets.iterations.to_string(),
    ]);

    // Runtime table (like the paper's figure).
    let mut rt = Table::new(
        std::iter::once("task".to_string())
            .chain(MACHINE_LABELS.iter().map(|s| s.to_string()))
            .collect::<Vec<String>>(),
    );
    for (i, name) in d.etc.task_names().iter().enumerate() {
        let mut cells = vec![name.clone()];
        for j in 0..d.etc.num_machines() {
            cells.push(format!("{:.0}", d.etc.matrix()[(i, j)]));
        }
        rt.row(cells);
    }
    format!(
        "== {title} ({}; synthetic runtimes calibrated to the paper's measures) ==\n{}\n{}",
        d.name,
        rt.render(),
        t.render()
    )
}

/// Figure 6: the SPEC CINT2006Rate matrix and its measures.
pub fn figure6() -> String {
    spec_figure("Figure 6", &cint2006())
}

/// Figure 7: the SPEC CFP2006Rate matrix and its measures.
pub fn figure7() -> String {
    let mut s = spec_figure("Figure 7", &cfp2006());
    let cint = tma(&cint2006().ecs()).expect("calibrated");
    let cfp = tma(&cfp2006().ecs()).expect("calibrated");
    s.push_str(&format!(
        "Paper claim: CFP task types have more affinity than CINT — measured TMA {} > {}: {}\n",
        fmt(cfp),
        fmt(cint),
        cfp > cint
    ));
    s
}

/// Figure 8: two 2×2 ETC submatrices with near-equal MPH, wildly different TMA.
pub fn figure8() -> String {
    let mut t = Table::new(vec![
        "matrix",
        "tasks x machines",
        "TDH",
        "MPH",
        "TMA",
        "paper (TDH, MPH, TMA)",
    ]);
    for (name, etc, tg) in [
        ("(a)", fig8a(), FIG8A_TARGETS),
        ("(b)", fig8b(), FIG8B_TARGETS),
    ] {
        let e = etc.to_ecs();
        t.row(vec![
            name.to_string(),
            format!(
                "{{{}}} x {{{}}}",
                etc.task_names().join(", "),
                etc.machine_names().join(", ")
            ),
            fmt(tdh(&e).expect("static")),
            fmt(mph(&e).expect("static")),
            fmt(tma(&e).expect("static")),
            format!("({}, {}, {})", fmt(tg.tdh), fmt(tg.mph), fmt(tg.tma)),
        ]);
    }
    let mut out = format!(
        "== Figure 8: near-identical MPH, contrasting TMA (2x2 pairs) ==\n{}",
        t.render()
    );
    // Honesty check: the same cells cut from our synthetic full datasets (their
    // noise realization differs from the real data's local structure).
    if let Ok((a, b)) = hc_spec::fig8::synthetic_submatrices() {
        let row = |name: &str, e: &hc_core::Ecs| -> String {
            format!(
                "  {name}: TDH = {}, MPH = {}, TMA = {}\n",
                fmt(tdh(e).expect("valid env")),
                fmt(mph(e).expect("valid env")),
                fmt(tma(e).expect("valid env")),
            )
        };
        out.push_str("Same cells cut from the synthetic full datasets (for comparison only):\n");
        out.push_str(&row("(a)", &a));
        out.push_str(&row("(b)", &b));
    }
    out
}

/// Section VI: zero patterns that defeat normalization.
pub fn section6() -> String {
    let mut out = String::from("== Section VI: zero patterns and balanceability ==\n");

    let eq10 = eq10_matrix();
    let rep = analyze_square(&eq10);
    out.push_str(&format!(
        "Eq. 10 matrix (rows sums {:?}, col sums {:?}):\n{}\n\
         support: {}, total support: {}, fully indecomposable: {}\n\
         => no combination of row/column normalizations reaches a standard form (paper's claim)\n\n",
        eq10.row_sums(),
        eq10.col_sums(),
        eq10,
        rep.has_support,
        rep.has_total_support,
        rep.fully_indecomposable
    ));

    let eq12 = eq12_matrix();
    out.push_str(&format!(
        "Eq. 12 (last column moved to front — the Eq. 11 block-triangular form):\n{}\n",
        eq12
    ));

    // Balancing attempt evidence.
    let opts = BalanceOptions {
        max_iters: 300,
        ..Default::default()
    };
    let attempt = balance_with(&eq10, &[1.0; 3], &[1.0; 3], &opts).expect("valid input");
    out.push_str(&format!(
        "Direct Eq. 9 iteration on Eq. 10 for 300 iterations: status {:?}, residual {:.2e}, entries decayed: {}\n\n",
        attempt.status, attempt.residual, attempt.entries_decayed
    ));

    // The diagonal counterexample: decomposable yet balanceable.
    let diag = hc_linalg::Matrix::from_diag(&[2.0, 5.0, 0.1]);
    let drep = analyze_square(&diag);
    let dbal =
        balance_with(&diag, &[1.0; 3], &[1.0; 3], &BalanceOptions::default()).expect("valid input");
    out.push_str(&format!(
        "Diagonal counterexample diag(2, 5, 0.1): fully indecomposable: {} (decomposable), \
         yet balances to the identity in {} iterations (status {:?})\n",
        drep.fully_indecomposable, dbal.iterations, dbal.status
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders() {
        for n in 1..=8 {
            let s = figure(n);
            assert!(s.contains(&format!("Figure {n}")), "figure {n} header");
            assert!(s.len() > 100, "figure {n} too short");
        }
        assert!(figure(9).contains("no Figure"));
    }

    #[test]
    fn figure2_exact_values() {
        let s = figure2();
        // MPH column must show the paper's exact values.
        assert!(s.contains("0.50"));
        assert!(s.contains("0.77"));
        assert!(s.contains("0.63"));
        assert!(s.contains("1.50") || s.contains("1.5"));
    }

    #[test]
    fn figure4_conv_deltas_small() {
        let s = figure4();
        for l in s.lines().filter(|l| l.contains("max |delta| = ")) {
            let delta: f64 = l
                .split("max |delta| = ")
                .nth(1)
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            assert!(delta < 1e-6, "line: {l}");
        }
    }

    #[test]
    fn section6_reports_structure() {
        let s = section6();
        assert!(s.contains("support: true, total support: false"));
        assert!(s.contains("Diagonal counterexample"));
    }

    #[test]
    fn figure6_7_report_paper_targets() {
        let s6 = figure6();
        assert!(s6.contains("0.90"));
        assert!(s6.contains("0.82"));
        let s7 = figure7();
        assert!(s7.contains("measured TMA"));
        assert!(s7.contains("true"));
    }
}
