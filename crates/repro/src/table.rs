//! Minimal fixed-width text-table renderer for the experiment reports.

/// A text table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for k in 0..cols {
                if k > 0 {
                    s.push_str("  ");
                }
                let cell = &cells[k];
                s.push_str(cell);
                for _ in cell.chars().count()..widths[k] {
                    s.push(' ');
                }
            }
            s.trim_end().to_string()
        };
        let mut out = line(&self.header);
        out.push('\n');
        let sep: String = widths
            .iter()
            .enumerate()
            .map(|(k, w)| {
                let dash = "-".repeat(*w);
                if k > 0 {
                    format!("  {dash}")
                } else {
                    dash
                }
            })
            .collect();
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a float to 2–4 significant decimals for measure tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0.00".to_string()
    } else if v.abs() < 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["much longer name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // Columns align: "value" column starts at the same offset in all rows.
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off..off + 1], "1");
    }

    #[test]
    fn pads_missing_cells() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0.00");
        assert_eq!(fmt(0.5), "0.50");
        assert_eq!(fmt(0.001234), "0.0012");
        assert_eq!(fmt(17.0), "17.00");
    }
}
