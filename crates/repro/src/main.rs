//! `repro` — regenerate the paper's figures and the extension experiments.

use std::process::ExitCode;

fn usage() -> &'static str {
    "repro — regenerate every figure of 'Characterizing Task-Machine Affinity in\n\
     Heterogeneous Computing Environments' (IPDPS 2011)\n\n\
     USAGE:\n\
    \x20 repro --all               run everything\n\
    \x20 repro --figure <1-8>      one figure\n\
    \x20 repro --section 6         the Sec. VI zero-pattern cases\n\
    \x20 repro --ext <x1-x9>       one extension experiment\n\
    \x20 repro --help              this text\n"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print!("{}", hc_repro::run_all());
        return ExitCode::SUCCESS;
    }
    let mut i = 0;
    let mut printed = false;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                printed = true;
            }
            "--all" => {
                print!("{}", hc_repro::run_all());
                printed = true;
            }
            "--figure" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--figure needs a number 1-8\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                print!("{}", hc_repro::figures::figure(n));
                printed = true;
            }
            "--section" => {
                i += 1;
                if args.get(i).map(String::as_str) != Some("6") {
                    eprintln!("--section supports only 6\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
                print!("{}", hc_repro::figures::section6());
                printed = true;
            }
            "--ext" => {
                i += 1;
                let Some(id) = args.get(i) else {
                    eprintln!("--ext needs x1..x9\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                print!("{}", hc_repro::extensions::extension(id));
                printed = true;
            }
            other => {
                eprintln!("unknown argument {other}\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if !printed {
        print!("{}", usage());
    }
    ExitCode::SUCCESS
}
