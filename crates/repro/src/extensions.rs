//! Extension experiments X1–X9 (DESIGN.md): the paper's stated future work plus
//! the applications its introduction motivates.

use crate::table::{fmt, Table};
use hc_core::ecs::Ecs;
use hc_core::report::characterize;
use hc_core::standard::{tma_with, TmaOptions, ZeroPolicy};
use hc_core::whatif;
use hc_gen::ensemble::measure_grid;
use hc_gen::targeted::{targeted, TargetSpec};
use hc_sched::eval::{study_ensemble, win_table, InstanceStudy};
use hc_sched::heuristics::all_heuristics;
use hc_sinkhorn::balance::BalanceOptions;
use hc_sinkhorn::regularized::epsilon_sweep;
use hc_sinkhorn::structure::eq10_matrix;
use hc_spec::dataset::cint2006;

/// Dispatches to one extension experiment (`"x1"`–`"x9"`).
pub fn extension(id: &str) -> String {
    match id {
        "x1" => x1_regularized_tma(),
        "x2" => x2_targeted_sweep(),
        "x3" => x3_heuristic_selection(),
        "x4" => x4_whatif(),
        "x5" => x5_consistency_vs_tma(),
        "x6" => x6_rank1_residual_vs_tma(),
        "x7" => x7_eq5_vs_eq8(),
        "x8" => x8_dynamic_simulation(),
        "x9" => x9_workload_weighted_measures(),
        other => format!("no extension experiment {other} (valid: x1-x9)\n"),
    }
}

/// X1: TMA for non-balanceable matrices via ε-regularization (the paper's
/// future work).
pub fn x1_regularized_tma() -> String {
    let m = eq10_matrix();
    let opts = BalanceOptions {
        tol: 1e-7,
        max_iters: 2_000_000,
        stall_window: usize::MAX,
        ..Default::default()
    };
    let sweep = epsilon_sweep(&m, 1e-1, 10.0, 4, &opts).expect("valid input");
    let mut t = Table::new(vec![
        "epsilon",
        "iterations",
        "converged",
        "max entry at zero positions",
        "TMA (regularized)",
    ]);
    for step in &sweep {
        let e = Ecs::new(m.clone()).expect("eq10 is a valid ECS");
        let tma = tma_with(
            &e,
            &TmaOptions {
                zero_policy: ZeroPolicy::Regularize {
                    epsilon: step.epsilon,
                },
                balance: opts.clone(),
                ..Default::default()
            },
        )
        .expect("regularized TMA always defined");
        t.row(vec![
            format!("{:.0e}", step.epsilon),
            step.iterations.to_string(),
            step.converged.to_string(),
            format!("{:.3e}", step.max_at_zero_positions),
            fmt(tma),
        ]);
    }
    // The structural limit value for comparison.
    let e = Ecs::new(m).expect("valid");
    let limit = tma_with(
        &e,
        &TmaOptions {
            zero_policy: ZeroPolicy::Limit,
            ..Default::default()
        },
    )
    .expect("limit policy");
    format!(
        "== X1: epsilon-regularized TMA for the non-balanceable Eq. 10 matrix ==\n{}\
         Structural limit TMA (total-support core): {}\n\
         As epsilon -> 0 the regularized TMA approaches the structural limit.\n",
        t.render(),
        fmt(limit)
    )
}

/// X2: measure-targeted generation spanning the heterogeneity cube
/// (application [2]).
pub fn x2_targeted_sweep() -> String {
    let specs = measure_grid(8, 5, 3, 0.6);
    let mut t = Table::new(vec![
        "target (MPH, TDH, TMA)",
        "measured (MPH, TDH, TMA)",
        "max |delta|",
    ]);
    let mut worst: f64 = 0.0;
    for spec in &specs {
        let e = targeted(spec, 0).expect("targets within range");
        let r = characterize(&e).expect("positive environment");
        let d = (r.mph - spec.mph)
            .abs()
            .max((r.tdh - spec.tdh).abs())
            .max((r.tma - spec.tma).abs());
        worst = worst.max(d);
        t.row(vec![
            format!("({}, {}, {})", fmt(spec.mph), fmt(spec.tdh), fmt(spec.tma)),
            format!("({}, {}, {})", fmt(r.mph), fmt(r.tdh), fmt(r.tma)),
            format!("{d:.2e}"),
        ]);
    }
    format!(
        "== X2: measure-targeted ETC generation across the (MPH, TDH, TMA) cube ==\n\
         8 tasks x 5 machines, 27 grid points\n{}\
         Worst absolute deviation across the grid: {worst:.2e}\n",
        t.render()
    )
}

/// X3: heuristic selection by heterogeneity (application [3]).
pub fn x3_heuristic_selection() -> String {
    let mut out =
        String::from("== X3: mapping-heuristic performance vs task-machine affinity ==\n");
    let heuristics = all_heuristics();
    let mut t = Table::new(vec![
        "TMA regime",
        "winner distribution",
        "MET mean relative makespan",
        "Min-Min mean relative makespan",
    ]);
    for &(label, tma) in &[
        ("low (0.02)", 0.02),
        ("mid (0.25)", 0.25),
        ("high (0.55)", 0.55),
    ] {
        let envs: Vec<Ecs> = (0..12)
            .map(|s| {
                targeted(
                    &TargetSpec {
                        jitter: 0.6,
                        ..TargetSpec::exact(16, 5, 0.7, 0.7, tma)
                    },
                    s,
                )
                .expect("targets within range")
            })
            .collect();
        let studies: Vec<InstanceStudy> = study_ensemble(&envs, &heuristics, false)
            .into_iter()
            .map(|r| r.expect("valid environments"))
            .collect();
        let wins = win_table(&studies);
        let windesc: Vec<String> = wins.iter().map(|(n, c)| format!("{n}:{c}")).collect();
        let mean_rel = |name: &str| -> f64 {
            let v: Vec<f64> = studies
                .iter()
                .filter_map(|s| s.results.iter().find(|r| r.name == name))
                .map(|r| r.relative)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        t.row(vec![
            label.to_string(),
            windesc.join(" "),
            format!("{:.3}", mean_rel("MET")),
            format!("{:.3}", mean_rel("Min-Min")),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Reading: as TMA grows, execution-time-aware heuristics dominate the\n\
         load-only OLB, and MET's pile-up penalty shrinks because machines\n\
         specialize — the heterogeneity measures predict which heuristic family wins.\n",
    );
    out
}

/// X4: what-if studies — adding/removing tasks and machines (Sec. I application).
pub fn x4_whatif() -> String {
    let e = cint2006().ecs();
    let mut t = Table::new(vec!["edit", "dMPH", "dTDH", "dTMA"]);
    // Remove the most and least performant machines.
    for j in [0, e.num_machines() - 1] {
        let w = whatif::remove_machine(&e, j).expect("valid index");
        t.row(vec![
            w.description.clone(),
            format!("{:+.3}", w.delta_mph()),
            format!("{:+.3}", w.delta_tdh()),
            format!("{:+.3}", w.delta_tma()),
        ]);
    }
    // Remove one task.
    let w = whatif::remove_task(&e, 0).expect("valid index");
    t.row(vec![
        w.description.clone(),
        format!("{:+.3}", w.delta_mph()),
        format!("{:+.3}", w.delta_tdh()),
        format!("{:+.3}", w.delta_tma()),
    ]);
    // Add a GPU-like accelerator: dramatically better at two tasks, poor at the
    // rest — the paper's closing expectation is that accelerators raise TMA.
    let col: Vec<f64> = (0..e.num_tasks())
        .map(|i| {
            let base = e.matrix().row_sum(i) / e.num_machines() as f64;
            if i < 2 {
                base * 40.0
            } else {
                base * 0.2
            }
        })
        .collect();
    let w = whatif::add_machine(&e, "accelerator", &col).expect("valid column");
    let accel_delta = w.delta_tma();
    t.row(vec![
        w.description.clone(),
        format!("{:+.3}", w.delta_mph()),
        format!("{:+.3}", w.delta_tdh()),
        format!("{:+.3}", accel_delta),
    ]);
    format!(
        "== X4: what-if studies on the (synthetic) CINT environment ==\n{}\
         Paper's closing expectation: environments with accelerators/GPGPUs have higher\n\
         TMA and lower TDH/MPH — adding one here moves TMA by {:+.3}.\n",
        t.render(),
        accel_delta
    )
}

/// X5: ETC consistency (Braun et al. classification) vs the TMA measure —
/// consistent matrices concentrate at low affinity.
pub fn x5_consistency_vs_tma() -> String {
    use hc_gen::consistency::{consistency_controlled, consistency_degree};
    use hc_gen::range_based::{range_based, RangeParams};

    let mut t = Table::new(vec![
        "sorted column fraction",
        "mean consistency degree",
        "mean TMA",
    ]);
    let seeds = 12u64;
    for &fraction in &[0.0, 0.4, 0.7, 1.0] {
        let mut deg = 0.0;
        let mut tma_sum = 0.0;
        for seed in 0..seeds {
            let base = range_based(&RangeParams::hi_hi(12, 6), seed).expect("valid params");
            let etc = consistency_controlled(base.matrix(), fraction, seed).expect("valid");
            deg += consistency_degree(&etc);
            let ecs = Ecs::new(etc.map(|v| 1.0 / v)).expect("positive");
            tma_sum += characterize(&ecs).expect("positive env").tma;
        }
        t.row(vec![
            format!("{fraction:.1}"),
            fmt(deg / seeds as f64),
            fmt(tma_sum / seeds as f64),
        ]);
    }
    format!(
        "== X5: consistency vs task-machine affinity ==\n\
         range-based HiHi 12x6 ensembles, rows sorted over a growing column subset\n{}\
         Reading: fully consistent ETC matrices (a global machine speed order)\n\
         collapse most task-machine affinity — TMA quantifies what the classic\n\
         consistent/inconsistent taxonomy only labels.\n",
        t.render()
    )
}

/// X6: the relative rank-1 residual as an alternative affinity gauge, compared
/// against TMA on measure-targeted environments.
pub fn x6_rank1_residual_vs_tma() -> String {
    use hc_linalg::lowrank::rank_residual;

    let mut t = Table::new(vec![
        "target TMA",
        "measured TMA",
        "rank-1 residual of standard form",
    ]);
    let mut prev_resid = -1.0_f64;
    let mut monotone = true;
    for &tma_target in &[0.0, 0.1, 0.2, 0.35, 0.5, 0.65] {
        let e =
            targeted(&TargetSpec::exact(10, 6, 0.8, 0.8, tma_target), 0).expect("reachable target");
        let r = characterize(&e).expect("positive env");
        let sf =
            hc_core::standard::standard_form(&e, &TmaOptions::default()).expect("positive env");
        let resid = rank_residual(&sf.matrix, 1).expect("valid matrix");
        if resid < prev_resid {
            monotone = false;
        }
        prev_resid = resid;
        t.row(vec![fmt(tma_target), fmt(r.tma), fmt(resid)]);
    }
    format!(
        "== X6: rank-1 residual vs TMA ==\n\
         A rank-1 ECS matrix is exactly a zero-affinity environment, so the relative\n\
         Frobenius residual of the best rank-1 approximation of the standard form is\n\
         an alternative affinity gauge.\n{}\
         Monotone in TMA across the sweep: {monotone}. The two gauges agree on the\n\
         ordering; TMA additionally normalizes to [0, 1] with sigma_1 = 1 (Theorem 2).\n",
        t.render()
    )
}

/// X7: the paper's motivation for the standard form — the earlier
/// column-normalized TMA (Eq. 5, from the authors' HCW 2010 paper) is *not*
/// independent of TDH, the standard-form TMA (Eq. 8) is.
pub fn x7_eq5_vs_eq8() -> String {
    use hc_core::standard::{tma, tma_eq5_column_normalized};

    let base = targeted(&TargetSpec::exact(8, 5, 0.8, 0.8, 0.25), 1).expect("reachable");
    let mut t = Table::new(vec![
        "row-0 scale factor",
        "TDH",
        "TMA (Eq. 8, standard form)",
        "TMA (Eq. 5, column-normalized)",
    ]);
    let mut eq8_spread: f64 = 0.0;
    let mut eq5_spread: f64 = 0.0;
    let mut eq8_first = None;
    let mut eq5_first = None;
    for &factor in &[1.0, 4.0, 16.0, 64.0] {
        let mut m = base.matrix().clone();
        m.scale_row(0, factor);
        let e = Ecs::new(m).expect("positive");
        let r = characterize(&e).expect("positive env");
        let eq8 = tma(&e).expect("positive env");
        let eq5 = tma_eq5_column_normalized(&e).expect("positive env");
        eq8_spread = eq8_spread.max((eq8 - *eq8_first.get_or_insert(eq8)).abs());
        eq5_spread = eq5_spread.max((eq5 - *eq5_first.get_or_insert(eq5)).abs());
        t.row(vec![
            format!("{factor}x"),
            fmt(r.tdh),
            format!("{eq8:.6}"),
            format!("{eq5:.6}"),
        ]);
    }
    format!(
        "== X7: why the standard form matters (Eq. 5 vs Eq. 8) ==\n\
         Scaling one task's ECS row changes only the task difficulty profile.\n{}\
         Spread under row scaling: Eq. 8 = {eq8_spread:.2e} (invariant), \
         Eq. 5 = {eq5_spread:.2e} (confounded with TDH).\n\
         This is the paper's third measure property: with TDH introduced, the\n\
         simple column normalization of [2] no longer keeps the measures\n\
         independent — the iterative row+column standard form does.\n",
        t.render()
    )
}

/// X8: dynamic (discrete-event) simulation — the static measures predict online
/// scheduler behaviour under Poisson task streams.
pub fn x8_dynamic_simulation() -> String {
    use hc_sim::metrics::metrics;
    use hc_sim::policy::{BatchPolicy, OnlinePolicy, Policy};
    use hc_sim::sim::{simulate, SimConfig};
    use hc_sim::workload::{generate, WorkloadSpec};

    let policies = [
        Policy::Immediate(OnlinePolicy::Olb),
        Policy::Immediate(OnlinePolicy::Met),
        Policy::Immediate(OnlinePolicy::Mct),
        Policy::Batch {
            policy: BatchPolicy::MinMin,
            interval: 2.0,
        },
        Policy::Batch {
            policy: BatchPolicy::Sufferage,
            interval: 2.0,
        },
    ];
    let mut t = Table::new(vec![
        "TMA regime",
        "policy",
        "mean flowtime",
        "makespan",
        "relative to best",
    ]);
    for &(label, tma_target) in &[("low (0.02)", 0.02), ("high (0.50)", 0.50)] {
        let seeds = 6u64;
        // Mean makespans per policy over the ensemble.
        let mut totals = vec![0.0f64; policies.len()];
        let mut flows = vec![0.0f64; policies.len()];
        for seed in 0..seeds {
            let env = targeted(
                &TargetSpec {
                    jitter: 0.6,
                    ..TargetSpec::exact(8, 4, 0.7, 0.7, tma_target)
                },
                seed,
            )
            .expect("reachable target");
            // ETC in time units of ~1 so the arrival rate loads ~80% of capacity.
            let etc = env.to_etc();
            let mean_etc = etc.matrix().total_sum() / etc.matrix().len() as f64;
            let rate = 0.8 * etc.matrix().cols() as f64 / mean_etc;
            let wl = generate(&WorkloadSpec::uniform(400, rate, 8, seed)).expect("valid spec");
            for (k, policy) in policies.iter().enumerate() {
                let r = simulate(etc.matrix(), &wl, &SimConfig { policy: *policy })
                    .expect("valid simulation");
                let m = metrics(&r, 4);
                totals[k] += m.makespan;
                flows[k] += m.mean_flowtime;
            }
        }
        let best = totals.iter().copied().fold(f64::INFINITY, f64::min);
        for (k, policy) in policies.iter().enumerate() {
            t.row(vec![
                label.to_string(),
                policy.name(),
                format!("{:.2}", flows[k] / seeds as f64),
                format!("{:.2}", totals[k] / seeds as f64),
                format!("{:.3}", totals[k] / best),
            ]);
        }
    }
    format!(
        "== X8: dynamic simulation — online policies under Poisson arrivals ==\n\
         8 task types x 4 machines, 400 tasks per run, ~80% offered load, 6 seeds\n{}\
         Reading: at low TMA, MET (which chases fastest machines and ignores\n\
         queues) collapses — every task piles onto the same machines — while at\n\
         high TMA machines specialize and MET becomes optimal; OLB's\n\
         affinity-blindness costs it more as TMA grows. The static measure\n\
         predicts the online regime — application [9] (performance prediction).\n",
        t.render()
    )
}

/// X9: workload-derived weighting factors (Eqs. 4 and 6) — the measures of the
/// same machine set shift when the execution frequencies of the task types do.
pub fn x9_workload_weighted_measures() -> String {
    use hc_core::report::characterize_with;
    use hc_core::weights::Weights;
    use hc_sim::workload::{generate, weights_from_workload, WorkloadSpec};
    use hc_spec::dataset::cint2006;

    let ecs = cint2006().ecs();
    let (t, m) = (ecs.num_tasks(), ecs.num_machines());
    let uniform = Weights::uniform(t, m);
    let opts = TmaOptions::default();
    let base = characterize_with(&ecs, &uniform, &opts).expect("calibrated dataset");

    let mut t_out = Table::new(vec!["workload", "MPH", "TDH", "TMA"]);
    t_out.row(vec![
        "uniform weights (the paper's Figs. 6-7 setting)".to_string(),
        format!("{:.3}", base.mph),
        format!("{:.3}", base.tdh),
        format!("{:.3}", base.tma),
    ]);

    for (name, bias) in [
        ("perlbench-heavy stream (w ~ 20:1 on task 1)", 0usize),
        ("xalancbmk-heavy stream (w ~ 20:1 on task 12)", 11usize),
    ] {
        let mut type_weights = vec![1.0; t];
        type_weights[bias] = 20.0;
        let wl = generate(&WorkloadSpec {
            count: 5000,
            rate: 1.0,
            type_weights,
            seed: 9,
        })
        .expect("valid spec");
        let w = weights_from_workload(&wl, t, m).expect("valid workload");
        let r = characterize_with(&ecs, &w, &opts).expect("calibrated dataset");
        t_out.row(vec![
            name.to_string(),
            format!("{:.3}", r.mph),
            format!("{:.3}", r.tdh),
            format!("{:.3}", r.tma),
        ]);
    }
    format!(
        "== X9: workload-derived weighting factors (Eqs. 4 and 6) ==\n\
         Same machines, same ETC matrix — but the observed execution frequencies\n\
         of the task types act as w_t, so MPH and TDH respond to what actually\n\
         runs, while TMA (diagonal-scaling invariant) barely moves:\n{}",
        t_out.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x9_weights_move_homogeneities_not_tma() {
        let s = x9_workload_weighted_measures();
        // Pull the three TMA values from the table rows.
        let tmas: Vec<f64> = s
            .lines()
            .filter(|l| l.contains("weights") || l.contains("stream"))
            .filter_map(|l| l.split_whitespace().last()?.parse::<f64>().ok())
            .collect();
        assert_eq!(tmas.len(), 3, "{s}");
        let spread = tmas
            .iter()
            .cloned()
            .fold(0.0_f64, |a, b| a.max((b - tmas[0]).abs()));
        assert!(spread < 0.01, "TMA must barely move: {tmas:?}");
        // And TDH must actually move between the two biased streams.
        let tdhs: Vec<f64> = s
            .lines()
            .filter(|l| l.contains("stream"))
            .map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                cols[cols.len() - 2].parse::<f64>().unwrap()
            })
            .collect();
        assert_eq!(tdhs.len(), 2);
        assert!(
            (tdhs[0] - tdhs[1]).abs() > 0.005,
            "biased streams should differ in TDH: {tdhs:?}\n{s}"
        );
    }

    #[test]
    fn x8_olb_penalty_grows_with_tma() {
        let s = x8_dynamic_simulation();
        // Extract OLB's relative makespan in both regimes.
        let rels: Vec<f64> = s
            .lines()
            .filter(|l| l.contains("online-OLB") && (l.starts_with("low") || l.starts_with("high")))
            .map(|l| l.split_whitespace().last().unwrap().parse::<f64>().unwrap())
            .collect();
        assert_eq!(rels.len(), 2, "{s}");
        assert!(
            rels[1] > rels[0],
            "OLB's relative penalty must grow with TMA: {rels:?}\n{s}"
        );
    }

    #[test]
    fn x7_shows_eq5_confounding() {
        let s = x7_eq5_vs_eq8();
        let line = s
            .lines()
            .find(|l| l.contains("Spread under row scaling"))
            .expect("summary line");
        let eq8: f64 = line
            .split("Eq. 8 = ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let eq5: f64 = line
            .split("Eq. 5 = ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(eq8 < 1e-5, "Eq. 8 must be invariant, spread = {eq8}");
        assert!(eq5 > 1e-3, "Eq. 5 must move, spread = {eq5}");
    }

    #[test]
    fn x5_consistency_collapses_tma() {
        let s = x5_consistency_vs_tma();
        // Extract the mean TMA column for fractions 0.0 and 1.0.
        let rows: Vec<&str> = s
            .lines()
            .filter(|l| l.starts_with("0.") || l.starts_with("1."))
            .collect();
        let first: f64 = rows
            .first()
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        let last: f64 = rows
            .last()
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            last < first * 0.8,
            "consistency must collapse TMA: {first} -> {last}\n{s}"
        );
    }

    #[test]
    fn x6_monotone() {
        let s = x6_rank1_residual_vs_tma();
        assert!(s.contains("Monotone in TMA across the sweep: true"), "{s}");
    }

    #[test]
    fn x1_reports_convergence_to_limit() {
        let s = x1_regularized_tma();
        assert!(s.contains("Structural limit TMA"));
        assert!(s.contains("1e-1") || s.contains("1e-4"));
    }

    #[test]
    fn x2_grid_tight() {
        let s = x2_targeted_sweep();
        let worst: f64 = s
            .lines()
            .find(|l| l.starts_with("Worst absolute deviation"))
            .and_then(|l| l.split(": ").nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(worst < 1e-4, "worst grid deviation {worst}");
    }

    #[test]
    fn x3_produces_three_regimes() {
        let s = x3_heuristic_selection();
        assert!(s.contains("low (0.02)"));
        assert!(s.contains("high (0.55)"));
    }

    #[test]
    fn x4_accelerator_raises_tma() {
        let s = x4_whatif();
        let line = s
            .lines()
            .find(|l| l.contains("moves TMA by"))
            .expect("summary line");
        let v: f64 = line
            .split("moves TMA by ")
            .nth(1)
            .unwrap()
            .trim_end_matches('.')
            .trim()
            .parse()
            .unwrap();
        assert!(v > 0.0, "accelerator must raise TMA, got {v}");
    }

    #[test]
    fn unknown_extension() {
        assert!(extension("x10").contains("no extension"));
    }
}
