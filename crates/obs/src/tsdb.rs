//! In-process time-series store: retained per-second history for every
//! metric, with zero dependencies and bounded memory.
//!
//! `/metrics` is an instant snapshot; the SLO engine keeps only its burn
//! windows. Neither answers "what did the request rate look like over the
//! last five minutes?" without an external Prometheus. The TSDB does: a
//! collector thread (owned by `hc-serve`) calls [`Tsdb::record`] /
//! [`Tsdb::collect_registry`] once per second, and each sample lands in
//! **tiered ring buffers**:
//!
//! | tier | step | slots (default) | span    |
//! |------|------|-----------------|---------|
//! | 0    | 1 s  | 300             | 5 min   |
//! | 1    | 10 s | 360             | 1 h     |
//! | 2    | 60 s | 1440            | 24 h    |
//!
//! Every sample is written to **all** tiers; within a coarse slot the last
//! write wins (*last-slot downsampling* — for cumulative counters the last
//! sample is the newest cumulative value, for gauges it is the most recent
//! reading, so one rule serves both kinds). A slot stores its epoch
//! (`timestamp / step`) alongside the value, so a lapped ring never leaks a
//! previous pass — exactly the SLO engine's ring discipline.
//!
//! Memory is bounded and *accounted*: series × tiers × slots is fixed at
//! series-creation time and mirrored into the `tsdb_bytes` gauge of the
//! global metrics registry, so the store's own footprint shows up on the
//! dashboards it powers.
//!
//! The store is 8-way sharded by FNV-1a over the series name, like the
//! metrics registry, the flight recorder, and the result cache.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

use crate::metrics;
use crate::sync::lock_recover;

const SHARDS: usize = 8;

/// Default tier layout: `(step_seconds, slots)` per tier, finest first.
pub const DEFAULT_TIERS: [(u64, usize); 3] = [(1, 300), (10, 360), (60, 1440)];

/// How a series is interpreted at query time: counters are cumulative (the
/// caller renders rate()-style deltas via [`rate`]), gauges are instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Monotonically increasing cumulative value.
    Counter,
    /// Instantaneous reading.
    Gauge,
}

impl Kind {
    /// `"counter"` or `"gauge"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
        }
    }
}

/// One fixed ring of downsampled slots at a single resolution.
struct TierRing {
    step_s: u64,
    /// Epoch (`timestamp / step_s`) each slot currently holds; `u64::MAX`
    /// marks a never-written slot.
    epochs: Vec<u64>,
    values: Vec<f64>,
}

impl TierRing {
    fn new(step_s: u64, slots: usize) -> Self {
        TierRing {
            step_s: step_s.max(1),
            epochs: vec![u64::MAX; slots.max(1)],
            values: vec![0.0; slots.max(1)],
        }
    }

    /// Writes one sample; the last write into a slot's epoch wins.
    fn record(&mut self, ts_s: u64, v: f64) {
        let epoch = ts_s / self.step_s;
        let i = (epoch % self.epochs.len() as u64) as usize;
        self.epochs[i] = epoch;
        self.values[i] = v;
    }

    /// The sample covering `ts_s`, if that slot still holds the right epoch.
    fn get(&self, ts_s: u64) -> Option<f64> {
        let epoch = ts_s / self.step_s;
        let i = (epoch % self.epochs.len() as u64) as usize;
        (self.epochs[i] == epoch).then(|| self.values[i])
    }

    /// Seconds of history this tier can span.
    fn span_s(&self) -> u64 {
        self.step_s * self.epochs.len() as u64
    }
}

struct SeriesEntry {
    kind: Kind,
    tiers: Vec<TierRing>,
}

/// One queried series: tier resolution, alignment, and raw samples.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Series kind (drives rate rendering in callers).
    pub kind: Kind,
    /// Resolution of the returned points, in seconds.
    pub step_s: u64,
    /// Timestamp of `points[0]`, aligned to `step_s`.
    pub start_s: u64,
    /// One sample per step, oldest first; `None` where no sample landed.
    pub points: Vec<Option<f64>>,
}

/// The tiered, sharded time-series store. See the module docs.
pub struct Tsdb {
    shards: [Mutex<BTreeMap<String, SeriesEntry>>; SHARDS],
    tiers: Vec<(u64, usize)>,
    bytes: AtomicI64,
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name, as everywhere else in the workspace.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// Approximate heap bytes of one series: per-tier slot storage (epoch + value
/// = 16 bytes/slot) plus map-entry overhead for the name.
fn series_bytes(name_len: usize, tiers: &[(u64, usize)]) -> usize {
    let slots: usize = tiers.iter().map(|&(_, n)| n).sum();
    slots * 16 + name_len + 96
}

impl Tsdb {
    /// A store with an explicit tier layout (`(step_seconds, slots)`, finest
    /// first). Empty layouts fall back to [`DEFAULT_TIERS`].
    pub fn new(tiers: &[(u64, usize)]) -> Self {
        let tiers = if tiers.is_empty() {
            DEFAULT_TIERS.to_vec()
        } else {
            tiers.to_vec()
        };
        Tsdb {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            tiers,
            bytes: AtomicI64::new(0),
        }
    }

    /// A store whose coarsest tier retains `retention_s` seconds, keeping the
    /// default 1 s / 10 s / 60 s steps: the 1 s tier spans up to 5 minutes,
    /// the 10 s tier up to 1 hour, and the 60 s tier the full retention.
    pub fn with_retention(retention_s: u64) -> Self {
        let r = retention_s.max(60);
        Tsdb::new(&[
            (1, r.min(300) as usize),
            (10, (r.min(3600) / 10).max(1) as usize),
            (60, (r / 60).max(1) as usize),
        ])
    }

    /// The tier layout, finest first.
    pub fn tiers(&self) -> &[(u64, usize)] {
        &self.tiers
    }

    /// Approximate heap bytes currently held by all series rings.
    pub fn bytes(&self) -> i64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Writes one sample into every tier of `name`, creating the series (and
    /// charging the `tsdb_bytes` gauge) on first sight. A kind change on an
    /// existing series is ignored — first registration wins, as in the
    /// metrics registry.
    pub fn record(&self, kind: Kind, name: &str, ts_s: u64, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut shard = lock_recover(&self.shards[shard_of(name)]);
        let entry = match shard.get_mut(name) {
            Some(e) => e,
            None => {
                let added = series_bytes(name.len(), &self.tiers) as i64;
                let total = self.bytes.fetch_add(added, Ordering::Relaxed) + added;
                metrics::gauge("tsdb_bytes").set(total);
                shard
                    .entry(name.to_string())
                    .or_insert_with(|| SeriesEntry {
                        kind,
                        tiers: self
                            .tiers
                            .iter()
                            .map(|&(step, slots)| TierRing::new(step, slots))
                            .collect(),
                    })
            }
        };
        for tier in &mut entry.tiers {
            tier.record(ts_s, v);
        }
    }

    /// Every registered series, sorted by name, with its kind.
    pub fn series_names(&self) -> Vec<(String, Kind)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = lock_recover(shard);
            out.extend(guard.iter().map(|(n, e)| (n.clone(), e.kind)));
        }
        out.sort();
        out
    }

    /// Picks the finest tier index that spans `window_s`; windows past the
    /// coarsest tier clamp to it.
    fn tier_for(&self, window_s: u64) -> usize {
        self.tiers
            .iter()
            .position(|&(step, slots)| step * slots as u64 >= window_s)
            .unwrap_or(self.tiers.len() - 1)
    }

    /// Reads `window_s` seconds of `name` ending at `now_s`, aligned to the
    /// chosen tier's step (or to `step_s` when given and coarser). Counters
    /// return raw cumulative samples — render deltas with [`rate`]. Returns
    /// `None` for an unknown series.
    pub fn query(
        &self,
        name: &str,
        now_s: u64,
        window_s: u64,
        step_s: Option<u64>,
    ) -> Option<QueryResult> {
        let window_s = window_s.max(1);
        let tier_idx = self.tier_for(window_s);
        let shard = lock_recover(&self.shards[shard_of(name)]);
        let entry = shard.get(name)?;
        let tier = &entry.tiers[tier_idx];
        let step = step_s.unwrap_or(0).max(tier.step_s);
        let window_s = window_s.min(tier.span_s());
        let end_epoch = now_s / step;
        let n_points = (window_s / step).max(1) as usize;
        let mut points = Vec::with_capacity(n_points);
        let start_epoch = (end_epoch + 1).saturating_sub(n_points as u64);
        for e in start_epoch..=end_epoch {
            // A coarser-than-tier step takes the last tier sample inside the
            // step window — the same last-wins downsampling the write path
            // applies inside a slot.
            let mut v = None;
            let lo = e * step;
            let hi = lo + step - 1;
            let mut t = lo - (lo % tier.step_s);
            while t <= hi {
                if let Some(sample) = tier.get(t) {
                    v = Some(sample);
                }
                t += tier.step_s;
            }
            points.push(v);
        }
        Some(QueryResult {
            kind: entry.kind,
            step_s: step,
            start_s: start_epoch * step,
            points,
        })
    }

    /// Snapshots the whole global metrics registry into the store at `ts_s`:
    /// counters as cumulative counter series, gauges as gauge series, and
    /// each histogram as `<name>_count` / `<name>_sum` counter series.
    pub fn collect_registry(&self, ts_s: u64) {
        let (counters, gauges, hists) = metrics::snapshot_all();
        for (name, v) in counters {
            self.record(Kind::Counter, name, ts_s, v as f64);
        }
        for (name, v) in gauges {
            self.record(Kind::Gauge, name, ts_s, v as f64);
        }
        for (name, (count, sum, _)) in hists {
            self.record(Kind::Counter, &format!("{name}_count"), ts_s, count as f64);
            self.record(Kind::Counter, &format!("{name}_sum"), ts_s, sum as f64);
        }
    }
}

/// Turns cumulative counter samples into per-step rates: `(v[i] − v[i−1]) /
/// step`, clamped at zero so a process restart (counter reset) renders as a
/// quiet second rather than a negative spike. The first point (no
/// predecessor) and gaps yield `None`.
pub fn rate(points: &[Option<f64>], step_s: u64) -> Vec<Option<f64>> {
    let step = step_s.max(1) as f64;
    let mut out = Vec::with_capacity(points.len());
    let mut prev: Option<f64> = None;
    for p in points {
        out.push(match (prev, p) {
            (Some(a), Some(b)) => Some(((b - a) / step).max(0.0)),
            _ => None,
        });
        if p.is_some() {
            prev = *p;
        }
    }
    out
}

/// Renders samples as a fixed-height sparkline (eight block levels, `·` for
/// gaps), scaled to the series' own min..max. Used by
/// `/debug/timeseries?format=sparkline` and `hcm top`.
pub fn sparkline(points: &[Option<f64>]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = points.iter().flatten().copied().collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    points
        .iter()
        .map(|p| match p {
            None => '·',
            Some(v) => {
                if max > min {
                    let t = ((v - min) / (max - min) * 7.0).round() as usize;
                    LEVELS[t.min(7)]
                } else {
                    LEVELS[0]
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tsdb {
        Tsdb::new(&[(1, 10), (10, 6), (60, 4)])
    }

    #[test]
    fn gauge_round_trips_at_full_resolution() {
        let db = small();
        for t in 0..5u64 {
            db.record(Kind::Gauge, "g", t, t as f64);
        }
        let q = db.query("g", 4, 5, None).unwrap();
        assert_eq!(q.kind, Kind::Gauge);
        assert_eq!(q.step_s, 1);
        assert_eq!(q.start_s, 0);
        assert_eq!(
            q.points,
            vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0), Some(4.0)]
        );
    }

    #[test]
    fn last_write_wins_inside_a_coarse_slot() {
        let db = small();
        // Seconds 10..19 land in one 10 s slot; 19's value must win.
        for t in 10..20u64 {
            db.record(Kind::Gauge, "g", t, t as f64);
        }
        // Window of 60 s forces the 10 s tier (1 s tier spans only 10 s).
        let q = db.query("g", 19, 60, None).unwrap();
        assert_eq!(q.step_s, 10);
        assert_eq!(q.points.last().copied().flatten(), Some(19.0));
    }

    #[test]
    fn tier_selection_prefers_finest_that_covers_the_window() {
        let db = small();
        db.record(Kind::Gauge, "g", 100, 1.0);
        assert_eq!(db.query("g", 100, 10, None).unwrap().step_s, 1);
        assert_eq!(db.query("g", 100, 11, None).unwrap().step_s, 10);
        assert_eq!(db.query("g", 100, 60, None).unwrap().step_s, 10);
        assert_eq!(db.query("g", 100, 61, None).unwrap().step_s, 60);
        // Past the coarsest tier's span: clamps rather than failing. (Near
        // t=0 the window also clips at the epoch floor; with real unix-time
        // stamps the full slot count is always available.)
        let q = db.query("g", 100, 100_000, None).unwrap();
        assert_eq!(q.step_s, 60);
        assert_eq!(q.points.len(), 2);
        let q = db.query("g", 100_000, 100_000, None).unwrap();
        assert_eq!(q.points.len(), 4);
    }

    #[test]
    fn slot_alignment_holds_across_tier_transitions() {
        // Writes at 59 and 60 straddle a 60 s slot boundary: they must land
        // in different coarse slots, with epochs aligned to ts/step.
        let db = small();
        db.record(Kind::Gauge, "g", 59, 59.0);
        db.record(Kind::Gauge, "g", 60, 60.0);
        let q = db.query("g", 119, 240, None).unwrap();
        assert_eq!(q.step_s, 60);
        assert_eq!(q.start_s, 0);
        // Slot [0,60) holds the 59 s write, slot [60,120) the 60 s write.
        assert_eq!(q.points[0], Some(59.0));
        assert_eq!(q.points[1], Some(60.0));
    }

    #[test]
    fn lapped_rings_do_not_leak_old_epochs() {
        let db = small();
        db.record(Kind::Gauge, "g", 0, 1.0);
        // Second 10 laps the 10-slot 1 s ring over second 0's slot.
        db.record(Kind::Gauge, "g", 10, 2.0);
        let q = db.query("g", 10, 10, None).unwrap();
        assert_eq!(q.step_s, 1);
        // Seconds 1..=9 hold nothing; only second 10 has a (fresh) sample.
        assert_eq!(q.points.iter().flatten().count(), 1);
        assert_eq!(q.points.last().copied().flatten(), Some(2.0));
    }

    #[test]
    fn explicit_step_downsamples_with_last_wins() {
        let db = small();
        for t in 0..10u64 {
            db.record(Kind::Gauge, "g", t, t as f64);
        }
        let q = db.query("g", 9, 10, Some(5)).unwrap();
        assert_eq!(q.step_s, 5);
        assert_eq!(q.points, vec![Some(4.0), Some(9.0)]);
        // A step finer than the tier clamps up to the tier's resolution.
        let q = db.query("g", 9, 60, Some(1)).unwrap();
        assert_eq!(q.step_s, 10);
    }

    #[test]
    fn counter_rate_is_clamped_and_gap_aware() {
        let points = vec![Some(100.0), Some(160.0), None, Some(40.0), Some(70.0)];
        let r = rate(&points, 1);
        // 160→(reset)→40 clamps to 0 instead of going negative; the gap
        // itself renders as None.
        assert_eq!(r, vec![None, Some(60.0), None, Some(0.0), Some(30.0)]);
        let r10 = rate(&[Some(0.0), Some(600.0)], 10);
        assert_eq!(r10, vec![None, Some(60.0)]);
    }

    #[test]
    fn unknown_series_is_none_and_names_are_sorted() {
        let db = small();
        assert!(db.query("missing", 0, 10, None).is_none());
        db.record(Kind::Counter, "b_total", 0, 1.0);
        db.record(Kind::Gauge, "a_gauge", 0, 1.0);
        let names = db.series_names();
        assert_eq!(
            names,
            vec![
                ("a_gauge".to_string(), Kind::Gauge),
                ("b_total".to_string(), Kind::Counter)
            ]
        );
    }

    #[test]
    fn bytes_are_accounted_per_series() {
        let db = small();
        assert_eq!(db.bytes(), 0);
        db.record(Kind::Gauge, "one", 0, 1.0);
        let one = db.bytes();
        assert!(one > 0);
        // Re-recording the same series charges nothing new.
        db.record(Kind::Gauge, "one", 1, 2.0);
        assert_eq!(db.bytes(), one);
        db.record(Kind::Gauge, "two", 0, 1.0);
        assert!(db.bytes() > one);
    }

    #[test]
    fn collect_registry_stores_counters_gauges_and_histogram_totals() {
        let db = small();
        metrics::counter("tsdb_test_total").add(7);
        metrics::gauge("tsdb_test_gauge").set(-3);
        metrics::histogram("tsdb_test_hist").observe(5);
        db.collect_registry(42);
        let c = db.query("tsdb_test_total", 42, 10, None).unwrap();
        assert_eq!(c.kind, Kind::Counter);
        assert_eq!(c.points.last().copied().flatten(), Some(7.0));
        let g = db.query("tsdb_test_gauge", 42, 10, None).unwrap();
        assert_eq!(g.kind, Kind::Gauge);
        assert_eq!(g.points.last().copied().flatten(), Some(-3.0));
        assert!(db.query("tsdb_test_hist_count", 42, 10, None).is_some());
        assert!(db.query("tsdb_test_hist_sum", 42, 10, None).is_some());
    }

    #[test]
    fn sparkline_scales_and_marks_gaps() {
        let s = sparkline(&[Some(0.0), Some(3.5), Some(7.0), None]);
        assert_eq!(s, "▁▅█·");
        // A flat series renders at the floor rather than dividing by zero.
        assert_eq!(sparkline(&[Some(2.0), Some(2.0)]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let db = small();
        db.record(Kind::Gauge, "g", 0, f64::NAN);
        assert!(db.query("g", 0, 10, None).is_none());
    }
}
