//! `hc-obs` — zero-dependency observability for the hetero-measures workspace.
//!
//! Two independent facilities share this crate:
//!
//! 1. **Tracing** ([`span`], [`event`]): scoped timers with monotonic-clock
//!    durations, thread-local parent/child nesting, and structured fields.
//!    Nothing is emitted (and almost nothing is paid — one relaxed atomic
//!    load) until a sink is installed via [`install_json_sink`],
//!    [`install_trace_sink`], or [`install_capture_sink`].
//! 2. **Metrics** ([`metrics`]): typed counters, gauges, and log₂-bucketed
//!    histograms in a global sharded registry. These are always live — an
//!    atomic add per record — and are exported as JSON by
//!    [`metrics::export_json`], which `hc-serve` merges into `/metrics`.
//!
//! Three further facilities build on those two:
//!
//! * [`recorder`] — the flight recorder: per-request span trees, events, and
//!   numeric telemetry retained in a sharded ring buffer with tail-biased
//!   (survivor-ring) retention, so any recent request can be explained after
//!   the fact.
//! * [`trace`] — W3C `traceparent` parse/generate/echo, so the daemon joins
//!   distributed traces with zero dependencies.
//! * [`prom`] — Prometheus text exposition (format 0.0.4) over the metrics
//!   registry: counters, gauges, and log₂ histograms as cumulative
//!   `_bucket{le=...}` series.
//! * [`profile`] — an always-on continuous sampling profiler: a sampler
//!   thread snapshots every registered thread's live span stack through a
//!   lock-free seqlock path and folds the samples into epoch ring buffers,
//!   rendered as collapsed-stack text or a JSON top table.
//! * [`slo`] — rolling multi-window availability/latency objectives with
//!   Google-SRE fast/slow burn-rate alerting, feeding `/metrics` and the
//!   `degraded` state on `/healthz`.
//! * [`tsdb`] — an in-process time-series store: tiered per-second ring
//!   buffers (1 s / 10 s / 60 s, last-slot downsampling) fed by a collector
//!   thread, powering `/debug/timeseries` and the `hcm top` dashboard with
//!   retained history and no external Prometheus. Histograms additionally
//!   retain per-bucket **exemplars** — the most recent (request-id,
//!   traceparent, value) observation — rendered by [`prom`] and joinable to
//!   the flight recorder.
//!
//! Two fault-containment utilities also live here, at the bottom of the
//! dependency graph so both the kernels and the daemon can share them:
//! [`sync`] (poison-recovering lock helpers) and [`failpoints`] (the
//! `HC_FAILPOINT` chaos-injection registry).
//!
//! The crate is std-only by design: it sits below `hc-linalg` in the
//! dependency graph so every other crate in the workspace can instrument
//! itself without cycles, and the workspace builds fully offline.
//!
//! # Example
//!
//! ```
//! // A scoped span with fields; emitted (if a sink is installed) on drop.
//! {
//!     let mut s = hc_obs::span("example.work");
//!     s.field_u64("items", 42);
//! }
//!
//! // A cached counter handle: one atomic add per call after the first.
//! hc_obs::obs_counter!("example_calls_total").inc();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod failpoints;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod prom;
pub mod recorder;
pub mod sink;
pub mod slo;
pub mod span;
pub mod sync;
pub mod trace;
pub mod tsdb;

pub use sink::{
    install_capture_sink, install_json_sink, install_trace_sink, set_level, sink_installed,
    uninstall_all_sinks, CaptureHandle, Level,
};
pub use span::{event, span, FieldValue, SpanGuard};
