//! Minimal JSON string/number rendering.
//!
//! `hc-obs` sits below `hc-core` in the dependency graph, so it cannot reuse
//! `hc_core::report::json_string`; this is the same contract re-implemented:
//! RFC 8259 string escaping (quotes, backslash, and all control characters)
//! and float formatting that never produces invalid JSON tokens.

/// Appends `s` to `out` as a JSON string literal, including the quotes.
///
/// Control characters (U+0000..U+001F) are escaped as `\uXXXX` except for
/// the common short forms `\n`, `\r`, and `\t`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Renders an `f64` as a JSON value; non-finite values become `null`
/// (JSON has no NaN/Infinity tokens).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `format!` may print integral floats without a decimal point, which
        // is still valid JSON, so no fixup is needed.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("a\tb"), "\"a\\tb\"");
        assert_eq!(escape("a\rb"), "\"a\\rb\"");
        assert_eq!(escape("a\u{0}b"), "\"a\\u0000b\"");
        assert_eq!(escape("a\u{1b}b"), "\"a\\u001bb\"");
        assert_eq!(escape("a\u{1f}b"), "\"a\\u001fb\"");
    }

    #[test]
    fn passes_unicode_through() {
        assert_eq!(escape("héllo ∑"), "\"héllo ∑\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }
}
