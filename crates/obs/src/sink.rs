//! Global sink management and record rendering.
//!
//! Tracing is off by default: [`sink_installed`] is a single relaxed atomic
//! load, which is all an un-instrumented process ever pays per span. When one
//! or more sinks are installed, every span/event is rendered once per output
//! format and fanned out under a single short-lived lock.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;

/// Severity / verbosity level for events and the global filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-loss conditions.
    Error = 0,
    /// Degraded behaviour worth flagging (e.g. slow requests).
    Warn = 1,
    /// Normal operational milestones; spans emit at this level.
    Info = 2,
    /// High-volume diagnostic detail.
    Debug = 3,
    /// Maximum verbosity.
    Trace = 4,
}

impl Level {
    /// Lower-case name, as rendered in JSON lines and the console format.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values render as JSON `null`.
    F64(f64),
    /// Owned string, escaped on render.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl FieldValue {
    pub(crate) fn render_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => out.push_str(&json::fmt_f64(*v)),
            FieldValue::Str(v) => json::escape_into(out, v),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }

    fn render_human(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => format!("{v:.6e}"),
            FieldValue::Str(v) => v.clone(),
            FieldValue::Bool(v) => v.to_string(),
        }
    }
}

/// Whether a record is a completed span or a point-in-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A scoped timer that just ended; `dur_us` is set.
    Span,
    /// An instantaneous structured log line.
    Event,
}

/// A fully-described trace record, borrowed from the emitting span/event.
pub struct Record<'a> {
    /// Span or event.
    pub kind: RecordKind,
    /// Severity (spans always emit at [`Level::Info`]).
    pub level: Level,
    /// Static name, dot-namespaced by crate (`"sinkhorn.balance"`).
    pub name: &'a str,
    /// Name of the enclosing span on this thread, if any.
    pub parent: Option<&'a str>,
    /// Nesting depth on this thread (0 = top level).
    pub depth: usize,
    /// Elapsed monotonic time in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Structured fields in insertion order.
    pub fields: &'a [(&'static str, FieldValue)],
}

/// An owned copy of an emitted record, as captured by [`install_capture_sink`].
#[derive(Debug, Clone)]
pub struct Captured {
    /// Span or event.
    pub kind: RecordKind,
    /// Severity.
    pub level: Level,
    /// Record name.
    pub name: String,
    /// Enclosing span name, if any.
    pub parent: Option<String>,
    /// Nesting depth on the emitting thread.
    pub depth: usize,
    /// Duration in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Owned copies of the structured fields.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// The exact JSON line a file sink would have written (no trailing newline).
    pub json_line: String,
}

/// Handle returned by [`install_capture_sink`]; reads back captured records.
#[derive(Clone)]
pub struct CaptureHandle(Arc<Mutex<Vec<Captured>>>);

impl CaptureHandle {
    /// Snapshot of everything captured so far.
    pub fn records(&self) -> Vec<Captured> {
        self.0.lock().unwrap().clone()
    }
}

enum SinkImpl {
    JsonLines(File),
    Trace,
    Capture(Arc<Mutex<Vec<Captured>>>),
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

fn sinks() -> &'static Mutex<Vec<SinkImpl>> {
    static SINKS: OnceLock<Mutex<Vec<SinkImpl>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// True if at least one sink is installed. One relaxed atomic load: this is
/// the disabled-path cost of every span in the workspace.
#[inline]
pub fn sink_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// True if a record at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    sink_installed() && level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Sets the global level filter (default [`Level::Info`]).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current global level filter.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

fn push_sink(s: SinkImpl) {
    sinks().lock().unwrap().push(s);
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Installs a JSON-lines sink writing to `path` (created or truncated).
/// Each record is written and flushed as one line, so the file is valid
/// JSON-lines even if the process is killed.
pub fn install_json_sink<P: AsRef<Path>>(path: P) -> io::Result<()> {
    let file = File::create(path)?;
    push_sink(SinkImpl::JsonLines(file));
    Ok(())
}

/// Installs the human-readable console sink (stderr), used by `--trace`.
pub fn install_trace_sink() {
    push_sink(SinkImpl::Trace);
}

/// Installs an in-memory capture sink and returns a handle to read it back.
/// Intended for tests and for asserting emission end-to-end.
pub fn install_capture_sink() -> CaptureHandle {
    let buf = Arc::new(Mutex::new(Vec::new()));
    push_sink(SinkImpl::Capture(buf.clone()));
    CaptureHandle(buf)
}

/// Removes every installed sink and resets the level filter to the default.
/// Tracing returns to its zero-cost disabled state.
pub fn uninstall_all_sinks() {
    let mut guard = sinks().lock().unwrap();
    guard.clear();
    INSTALLED.store(false, Ordering::Relaxed);
    LEVEL.store(Level::Info as u8, Ordering::Relaxed);
}

fn render_json(record: &Record<'_>) -> String {
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut out = String::with_capacity(128);
    out.push_str("{\"ts_us\":");
    out.push_str(&ts_us.to_string());
    out.push_str(",\"kind\":");
    out.push_str(match record.kind {
        RecordKind::Span => "\"span\"",
        RecordKind::Event => "\"event\"",
    });
    out.push_str(",\"level\":\"");
    out.push_str(record.level.as_str());
    out.push_str("\",\"name\":");
    json::escape_into(&mut out, record.name);
    let thread = std::thread::current();
    if let Some(name) = thread.name() {
        out.push_str(",\"thread\":");
        json::escape_into(&mut out, name);
    }
    if record.depth > 0 {
        out.push_str(",\"depth\":");
        out.push_str(&record.depth.to_string());
    }
    if let Some(parent) = record.parent {
        out.push_str(",\"parent\":");
        json::escape_into(&mut out, parent);
    }
    if let Some(dur) = record.dur_us {
        out.push_str(",\"dur_us\":");
        out.push_str(&dur.to_string());
    }
    if !record.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in record.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, k);
            out.push(':');
            v.render_json(&mut out);
        }
        out.push('}');
    }
    out.push('}');
    out
}

fn render_human(record: &Record<'_>) -> String {
    let mut out = String::with_capacity(96);
    out.push('[');
    out.push_str(record.level.as_str());
    out.push_str("] ");
    for _ in 0..record.depth {
        out.push_str("  ");
    }
    out.push_str(record.name);
    for (k, v) in record.fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(&v.render_human());
    }
    if let Some(dur) = record.dur_us {
        if dur >= 10_000 {
            out.push_str(&format!(" ({:.1}ms)", dur as f64 / 1000.0));
        } else {
            out.push_str(&format!(" ({dur}\u{00b5}s)"));
        }
    }
    out
}

/// Renders `record` once per needed format and fans it out to every sink.
/// Callers should gate on [`enabled`] first; this re-checks cheaply.
pub fn emit(record: &Record<'_>) {
    if !enabled(record.level) {
        return;
    }
    let mut guard = sinks().lock().unwrap();
    if guard.is_empty() {
        return;
    }
    let needs_json = guard.iter().any(|s| !matches!(s, SinkImpl::Trace));
    let json_line = if needs_json {
        render_json(record)
    } else {
        String::new()
    };
    for sink in guard.iter_mut() {
        match sink {
            SinkImpl::JsonLines(file) => {
                // Ignore I/O errors: observability must never take down the
                // instrumented process.
                let _ = writeln!(file, "{json_line}");
                let _ = file.flush();
            }
            SinkImpl::Trace => {
                eprintln!("{}", render_human(record));
            }
            SinkImpl::Capture(buf) => {
                buf.lock().unwrap().push(Captured {
                    kind: record.kind,
                    level: record.level,
                    name: record.name.to_string(),
                    parent: record.parent.map(str::to_string),
                    depth: record.depth,
                    dur_us: record.dur_us,
                    fields: record.fields.to_vec(),
                    json_line: json_line.clone(),
                });
            }
        }
    }
}
