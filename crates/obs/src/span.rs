//! Scoped trace spans with thread-local nesting, and point-in-time events.
//!
//! A span is opened with [`span`], annotated with `field_*` calls, and
//! emitted when the guard drops — measuring wall time with the monotonic
//! clock. Each thread keeps its own stack of open span names, so parent and
//! depth are tracked without any cross-thread synchronization.
//!
//! When no sink is installed and no flight record is active on the thread,
//! [`span`] returns a disarmed guard without touching the thread-local stack
//! or reading the clock: the total cost is two relaxed atomic loads (sink
//! level + profiler gate) plus one thread-local flag read, which is what
//! keeps always-on instrumentation in the numeric hot paths affordable (see
//! DESIGN.md §8, §11, and §13 for budgets).
//!
//! Every span — armed or not — additionally mirrors itself onto the
//! continuous profiler's per-thread frame stack when the sampler is running
//! (see [`crate::profile`]); that path is a seqlock'd pair of atomic stores
//! and never blocks.
//!
//! Armed spans fan out twice on drop: to the installed sinks (if any) and to
//! the current thread's active flight record (if any) — so the recorder
//! captures full span trees even in processes that log nothing.

use std::cell::RefCell;
use std::time::Instant;

use crate::recorder;
use crate::sink::{self, Level, Record, RecordKind};

pub use crate::sink::FieldValue;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; emits a [`RecordKind::Span`] record on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    depth: usize,
    parent: Option<&'static str>,
    fields: Vec<(&'static str, FieldValue)>,
    armed: bool,
    /// True when this span was pushed onto the continuous profiler's frame
    /// stack and owes a pop on drop (kept separate from `armed` so the
    /// profiler can run with no sink installed, and so an enable/disable
    /// race mid-span never unbalances the frame stack).
    profiled: bool,
}

/// Opens a span named `name` on the current thread.
///
/// If no sink is installed and no flight record is active (the common case),
/// this is a no-op guard: no allocation, no clock read, no span-stack access.
/// When the continuous profiler is sampling, the span is also mirrored onto
/// the per-thread profile frame stack regardless of arming.
pub fn span(name: &'static str) -> SpanGuard {
    let profiled = crate::profile::frame_push(name);
    if !sink::enabled(Level::Info) && !recorder::recording() {
        return SpanGuard {
            name,
            start: None,
            depth: 0,
            parent: None,
            fields: Vec::new(),
            armed: false,
            profiled,
        };
    }
    let (depth, parent) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        let depth = s.len();
        s.push(name);
        (depth, parent)
    });
    SpanGuard {
        name,
        start: Some(Instant::now()),
        depth,
        parent,
        fields: Vec::new(),
        armed: true,
        profiled,
    }
}

impl SpanGuard {
    /// Attaches an unsigned-integer field (no-op when disarmed).
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        if self.armed {
            self.fields.push((key, FieldValue::U64(value)));
        }
    }

    /// Attaches a signed-integer field (no-op when disarmed).
    pub fn field_i64(&mut self, key: &'static str, value: i64) {
        if self.armed {
            self.fields.push((key, FieldValue::I64(value)));
        }
    }

    /// Attaches a float field (no-op when disarmed).
    pub fn field_f64(&mut self, key: &'static str, value: f64) {
        if self.armed {
            self.fields.push((key, FieldValue::F64(value)));
        }
    }

    /// Attaches a string field (no-op when disarmed; the string is only
    /// materialized when the span is armed).
    pub fn field_str(&mut self, key: &'static str, value: &str) {
        if self.armed {
            self.fields.push((key, FieldValue::Str(value.to_string())));
        }
    }

    /// Attaches a boolean field (no-op when disarmed).
    pub fn field_bool(&mut self, key: &'static str, value: bool) {
        if self.armed {
            self.fields.push((key, FieldValue::Bool(value)));
        }
    }

    /// True if this span will emit on drop (a sink was installed or a flight
    /// record was active when it opened). Lets callers skip expensive field
    /// computation.
    pub fn armed(&self) -> bool {
        self.armed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::frame_pop();
        }
        if !self.armed {
            return;
        }
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let dur_us = self.start.map(|t| t.elapsed().as_micros() as u64);
        let record = Record {
            kind: RecordKind::Span,
            level: Level::Info,
            name: self.name,
            parent: self.parent,
            depth: self.depth,
            dur_us,
            fields: &self.fields,
        };
        recorder::capture(&record);
        sink::emit(&record);
    }
}

/// Emits a point-in-time event at `level` with the given fields.
///
/// Events inherit the current thread's span context (depth and parent), so a
/// slow-request warning emitted inside `serve.request` is attributed to it.
pub fn event(level: Level, name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !sink::enabled(level) && !recorder::recording() {
        return;
    }
    let (depth, parent) = STACK.with(|s| {
        let s = s.borrow();
        (s.len(), s.last().copied())
    });
    let record = Record {
        kind: RecordKind::Event,
        level,
        name,
        parent,
        depth,
        dur_us: None,
        fields,
    };
    recorder::capture(&record);
    sink::emit(&record);
}
