//! Poison-recovering synchronization helpers.
//!
//! A panicking thread poisons every `std::sync::Mutex` it holds. For the
//! workspace's shared state — result caches, metrics registries, work queues,
//! per-column rotation locks — poisoning is not a correctness signal worth
//! dying for: every protected structure is either valid at all times (atomic
//! counters, intrusive lists repaired on next use) or safe to serve slightly
//! stale (caches). These helpers recover the guard via
//! [`std::sync::PoisonError::into_inner`] instead of propagating the panic,
//! and count every recovery in the global metrics registry under
//! `lock_poison_recovered_total` so operators can see that a panic happened.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

fn note_recovery() {
    crate::obs_counter!("lock_poison_recovered_total").inc();
}

/// Locks `m`, recovering (and counting) a poisoned guard instead of panicking.
///
/// The poison flag is cleared on recovery, so one panic costs one recovery —
/// subsequent locks are ordinary.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            note_recovery();
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// [`lock_recover`] with a repair hook: `repair` runs on the recovered value
/// only when the lock was poisoned, letting callers reset state a panicking
/// holder may have left half-updated (e.g. clearing a cache). Clearing the
/// poison flag makes the repair run exactly once per poisoning, not on every
/// later lock.
pub fn lock_recover_then<T, F: FnOnce(&mut T)>(m: &Mutex<T>, repair: F) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            note_recovery();
            m.clear_poison();
            let mut g = poisoned.into_inner();
            repair(&mut g);
            g
        }
    }
}

/// [`Condvar::wait`] that recovers a poisoned guard instead of panicking.
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => {
            note_recovery();
            poisoned.into_inner()
        }
    }
}

/// [`Condvar::wait_timeout`] that recovers a poisoned guard instead of panicking.
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    match cv.wait_timeout(guard, dur) {
        Ok(r) => r,
        Err(poisoned) => {
            note_recovery();
            poisoned.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recover_survives_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        let mut g = lock_recover(&m);
        assert_eq!(*g, 7);
        *g = 8;
        drop(g);
        // Recovery cleared the poison: later locks are ordinary again.
        assert!(!m.is_poisoned());
        assert_eq!(*m.lock().unwrap(), 8);
    }

    #[test]
    fn lock_recover_then_repairs_only_on_poison() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        // Healthy lock: repair must not run.
        let g = lock_recover_then(&m, |v| v.clear());
        assert_eq!(g.len(), 3);
        drop(g);
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        let g = lock_recover_then(&m, |v| v.clear());
        assert!(g.is_empty(), "repair must run after poisoning");
        drop(g);
        // One panic, one repair: the next lock is healthy and must not repair.
        let mut g = lock_recover_then(&m, |v| v.push(9));
        assert!(g.is_empty());
        g.push(4);
        drop(g);
        assert_eq!(lock_recover_then(&m, |v| v.clear()).as_slice(), &[4]);
    }

    #[test]
    fn wait_timeout_recover_returns_after_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _g = p2.0.lock().unwrap();
            panic!("poison it");
        })
        .join();
        let (m, cv) = (&pair.0, &pair.1);
        let g = lock_recover(m);
        let (g, timed_out) = wait_timeout_recover(cv, g, Duration::from_millis(1));
        assert!(timed_out.timed_out());
        assert!(!*g);
    }
}
