//! Always-on continuous sampling profiler over the span stacks.
//!
//! A dedicated sampler thread wakes `hz` times per second and snapshots the
//! live span stack of every registered worker thread, folding each snapshot
//! into a sharded profile store. Because the samples are span *names* (not
//! machine addresses) the output is already symbolized: the folded render is
//! directly consumable by `flamegraph.pl` / speedscope, and the JSON render
//! is a self/total-time top table.
//!
//! # Never block a worker
//!
//! The worker-side cost must stay negligible (the <3% budget is enforced by
//! `tests/overhead.rs` and the `profiler_overhead` bench lane), so the
//! worker → sampler hand-off takes no locks on the worker side after
//! registration:
//!
//! * Each thread owns one [`ThreadStack`]: a fixed `[AtomicU32; MAX_DEPTH]`
//!   frame array plus an atomic depth, guarded by a **seqlock** sequence
//!   counter. Pushing or popping a frame is a handful of relaxed stores
//!   bracketed by the sequence bump (odd = write in progress) with
//!   release fences; no CAS loops, no waiting.
//! * The sampler reads optimistically: it snapshots the frames between two
//!   reads of the sequence counter and discards the sample as *torn*
//!   (`profile_samples_torn_total`) if the counter moved or was odd. Torn
//!   samples are rare (a write window is a few nanoseconds) and dropping
//!   them biases nothing measurable.
//! * Span names are interned to `u32` ids once per (thread, call site) via a
//!   thread-local pointer-keyed cache, so steady-state pushes never touch
//!   the global interner lock.
//!
//! Thread registration appends an `Arc<ThreadStack>` to a global list (one
//! mutex acquisition per thread lifetime); a thread-local destructor flips
//! the stack's `alive` flag so the sampler prunes dead threads — workers
//! respawned by the pool's drop sentinel re-register transparently.
//!
//! # Epoch rings
//!
//! Folded stacks accumulate in [`SHARDS`] shards, each holding a since-boot
//! map plus a ring of the last [`RING_EPOCHS`] epochs of [`EPOCH_SECS`]
//! seconds. A windowed query (`?seconds=30`) merges only the epochs that
//! overlap the window; an unwindowed query reads the boot maps. Stacks
//! deeper than [`MAX_DEPTH`] are truncated (counted in
//! `profile_stacks_truncated_total`) but depth keeps counting so pops stay
//! balanced.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json;
use crate::sync::lock_recover;

/// Maximum span-stack depth captured per sample; deeper frames are truncated.
pub const MAX_DEPTH: usize = 32;
/// Number of independent shards in the folded-stack store.
pub const SHARDS: usize = 8;
/// Length of one accumulation epoch, in seconds.
pub const EPOCH_SECS: u64 = 10;
/// Number of epochs retained per shard (36 × 10 s = the last 6 minutes).
pub const RING_EPOCHS: usize = 36;
/// Optimistic-read retries before a snapshot is abandoned as torn.
const SEQLOCK_RETRIES: usize = 8;

/// Fast-path gate read by every span open; off means the profiler costs one
/// relaxed load per span.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Sampling rate of the running sampler (0 when stopped).
static HZ: AtomicU32 = AtomicU32::new(0);

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

struct Interner {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

fn intern(name: &'static str) -> u32 {
    let mut i = lock_recover(interner());
    if let Some(&id) = i.map.get(name) {
        return id;
    }
    let id = i.names.len() as u32;
    i.names.push(name);
    i.map.insert(name, id);
    id
}

fn name_of(id: u32) -> &'static str {
    let i = lock_recover(interner());
    i.names.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Per-thread seqlock'd span stack
// ---------------------------------------------------------------------------

struct ThreadStack {
    /// Seqlock sequence: odd while a push/pop is in flight.
    seq: AtomicU32,
    /// Logical depth; may exceed [`MAX_DEPTH`] (frames beyond are dropped).
    depth: AtomicU32,
    frames: [AtomicU32; MAX_DEPTH],
    /// Cleared by the owning thread's TLS destructor; the sampler prunes
    /// dead stacks from the registry on its next pass.
    alive: AtomicBool,
}

impl ThreadStack {
    fn new() -> Self {
        ThreadStack {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            alive: AtomicBool::new(true),
        }
    }

    fn push(&self, id: u32) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed) as usize;
        if d < MAX_DEPTH {
            self.frames[d].store(id, Ordering::Relaxed);
        } else {
            crate::obs_counter!("profile_stacks_truncated_total").inc();
        }
        self.depth.store(d as u32 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    fn pop(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        fence(Ordering::Release);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Optimistic snapshot of the live stack into `buf`. Returns the depth
    /// (clamped to [`MAX_DEPTH`]) or `None` if every retry raced a writer.
    fn snapshot(&self, buf: &mut [u32; MAX_DEPTH]) -> Option<usize> {
        for _ in 0..SEQLOCK_RETRIES {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let d = (self.depth.load(Ordering::Relaxed) as usize).min(MAX_DEPTH);
            for (slot, frame) in buf.iter_mut().zip(self.frames.iter()).take(d) {
                *slot = frame.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Some(d);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Thread registration
// ---------------------------------------------------------------------------

fn registry() -> &'static Mutex<Vec<Arc<ThreadStack>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadStack>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct LocalStack {
    stack: Arc<ThreadStack>,
    /// Call-site id cache keyed by the `&'static str` data pointer, so the
    /// global interner lock is taken once per (thread, span name).
    ids: HashMap<usize, u32>,
}

impl Drop for LocalStack {
    fn drop(&mut self) {
        self.stack.alive.store(false, Ordering::Release);
    }
}

thread_local! {
    static LOCAL: std::cell::RefCell<Option<LocalStack>> =
        const { std::cell::RefCell::new(None) };
}

fn register_current_thread() -> LocalStack {
    let stack = Arc::new(ThreadStack::new());
    lock_recover(registry()).push(Arc::clone(&stack));
    LocalStack {
        stack,
        ids: HashMap::new(),
    }
}

/// Records a span open on the current thread's profile stack. Returns `true`
/// iff a matching [`frame_pop`] is owed (profiler enabled and TLS usable) —
/// the span guard stores the flag so enable/disable races stay balanced.
pub(crate) fn frame_push(name: &'static str) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    LOCAL
        .try_with(|cell| {
            let mut cell = cell.borrow_mut();
            let local = cell.get_or_insert_with(register_current_thread);
            let key = name.as_ptr() as usize;
            let id = match local.ids.get(&key) {
                Some(&id) => id,
                None => {
                    let id = intern(name);
                    local.ids.insert(key, id);
                    id
                }
            };
            local.stack.push(id);
            true
        })
        .unwrap_or(false)
}

/// Records a span close; called only when the matching [`frame_push`]
/// returned `true`.
pub(crate) fn frame_pop() {
    let _ = LOCAL.try_with(|cell| {
        if let Some(local) = cell.borrow_mut().as_mut() {
            local.stack.pop();
        }
    });
}

// ---------------------------------------------------------------------------
// Folded-stack store
// ---------------------------------------------------------------------------

type Key = Box<[u32]>;

#[derive(Default)]
struct Shard {
    boot: HashMap<Key, u64>,
    /// Ring of `(epoch_id, counts)`, newest at the back.
    epochs: VecDeque<(u64, HashMap<Key, u64>)>,
}

fn store() -> &'static [Mutex<Shard>; SHARDS] {
    static STORE: OnceLock<[Mutex<Shard>; SHARDS]> = OnceLock::new();
    STORE.get_or_init(|| std::array::from_fn(|_| Mutex::new(Shard::default())))
}

fn shard_of(key: &[u32]) -> usize {
    // FNV-1a over the id bytes; only distribution matters here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in key {
        for b in id.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h as usize) % SHARDS
}

fn record_sample(key: &[u32], epoch: u64) {
    let mut shard = lock_recover(&store()[shard_of(key)]);
    if let Some(n) = shard.boot.get_mut(key) {
        *n += 1;
    } else {
        shard.boot.insert(key.to_vec().into_boxed_slice(), 1);
    }
    let rotate = match shard.epochs.back() {
        Some((e, _)) => *e != epoch,
        None => true,
    };
    if rotate {
        shard.epochs.push_back((epoch, HashMap::new()));
        while shard.epochs.len() > RING_EPOCHS {
            shard.epochs.pop_front();
        }
    }
    let (_, counts) = shard.epochs.back_mut().expect("just pushed");
    if let Some(n) = counts.get_mut(key) {
        *n += 1;
    } else {
        counts.insert(key.to_vec().into_boxed_slice(), 1);
    }
}

/// Monotonic origin shared by the sampler's epoch clock and window queries.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn merged(window: Option<Duration>) -> HashMap<Key, u64> {
    let mut out: HashMap<Key, u64> = HashMap::new();
    match window {
        None => {
            for shard in store().iter() {
                let shard = lock_recover(shard);
                for (k, v) in &shard.boot {
                    *out.entry(k.clone()).or_insert(0) += v;
                }
            }
        }
        Some(dur) => {
            let elapsed = origin().elapsed().as_secs();
            let min_epoch = elapsed.saturating_sub(dur.as_secs()) / EPOCH_SECS;
            for shard in store().iter() {
                let shard = lock_recover(shard);
                for (epoch, counts) in &shard.epochs {
                    if *epoch < min_epoch {
                        continue;
                    }
                    for (k, v) in counts {
                        *out.entry(k.clone()).or_insert(0) += v;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Sampler thread
// ---------------------------------------------------------------------------

fn sampler_handle() -> &'static Mutex<Option<JoinHandle<()>>> {
    static HANDLE: OnceLock<Mutex<Option<JoinHandle<()>>>> = OnceLock::new();
    HANDLE.get_or_init(|| Mutex::new(None))
}

fn sampler_loop(hz: u32) {
    let period = Duration::from_nanos(1_000_000_000u64 / u64::from(hz.max(1)));
    let mut buf = [0u32; MAX_DEPTH];
    let mut stacks: Vec<Arc<ThreadStack>> = Vec::new();
    while ENABLED.load(Ordering::Relaxed) {
        let tick = Instant::now();
        let epoch = origin().elapsed().as_secs() / EPOCH_SECS;
        {
            let mut reg = lock_recover(registry());
            reg.retain(|s| s.alive.load(Ordering::Acquire));
            stacks.clear();
            stacks.extend(reg.iter().cloned());
        }
        for stack in &stacks {
            match stack.snapshot(&mut buf) {
                Some(0) => crate::obs_counter!("profile_samples_idle_total").inc(),
                Some(d) => {
                    record_sample(&buf[..d], epoch);
                    crate::obs_counter!("profile_samples_total").inc();
                }
                None => crate::obs_counter!("profile_samples_torn_total").inc(),
            }
        }
        std::thread::sleep(period.saturating_sub(tick.elapsed()));
    }
}

/// Starts the sampler thread at `hz` samples per second. Idempotent: the
/// first caller wins and later calls (any rate) return `false`, so multiple
/// in-process servers share one profiler. `hz == 0` disables profiling and
/// returns `false`. Returns `true` when this call started the sampler.
pub fn start(hz: u32) -> bool {
    if hz == 0 {
        return false;
    }
    let mut handle = lock_recover(sampler_handle());
    if handle.is_some() {
        return false;
    }
    origin(); // pin the epoch clock before the first sample
    HZ.store(hz, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    match std::thread::Builder::new()
        .name("hc-profile-sampler".into())
        .spawn(move || sampler_loop(hz))
    {
        Ok(h) => {
            *handle = Some(h);
            true
        }
        Err(_) => {
            ENABLED.store(false, Ordering::Relaxed);
            HZ.store(0, Ordering::Relaxed);
            false
        }
    }
}

/// Stops the sampler and joins its thread. Intended for tests and benches;
/// the daemon never stops a started profiler (it is process-global).
pub fn stop() {
    let mut handle = lock_recover(sampler_handle());
    ENABLED.store(false, Ordering::Relaxed);
    HZ.store(0, Ordering::Relaxed);
    if let Some(h) = handle.take() {
        let _ = h.join();
    }
}

/// True while the sampler thread is running.
pub fn running() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The configured sampling rate, or 0 when the profiler is stopped.
pub fn hz() -> u32 {
    HZ.load(Ordering::Relaxed)
}

/// Total non-idle samples folded into the store since process start.
pub fn samples_total() -> u64 {
    crate::metrics::counter_value("profile_samples_total").unwrap_or(0)
}

/// Clears the folded-stack store (both boot and epoch maps). Test-only: the
/// daemon's profile is cumulative by design.
#[doc(hidden)]
pub fn reset_store() {
    for shard in store().iter() {
        let mut shard = lock_recover(shard);
        shard.boot.clear();
        shard.epochs.clear();
    }
}

// ---------------------------------------------------------------------------
// Renders
// ---------------------------------------------------------------------------

/// Renders the profile as collapsed-stack ("folded") text: one
/// `root;child;leaf count` line per distinct stack, sorted lexically, as
/// consumed by `flamegraph.pl` and speedscope. `window` of `None` renders
/// the since-boot profile.
pub fn render_folded(window: Option<Duration>) -> String {
    let merged = merged(window);
    let mut lines: Vec<String> = Vec::with_capacity(merged.len());
    for (key, count) in &merged {
        let mut line = String::new();
        for (i, id) in key.iter().enumerate() {
            if i > 0 {
                line.push(';');
            }
            line.push_str(name_of(*id));
        }
        line.push(' ');
        line.push_str(&count.to_string());
        lines.push(line);
    }
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Renders a JSON top-`k` table of frames by total time. Per frame: `self`
/// (samples where the frame was the leaf), `total` (samples where the frame
/// appeared anywhere on the stack, deduplicated per stack), and both
/// converted to seconds at the current sampling rate. Frames are ordered by
/// descending `total`, ties broken by name.
pub fn top_json(window: Option<Duration>, k: usize) -> String {
    let merged = merged(window);
    let mut self_counts: HashMap<u32, u64> = HashMap::new();
    let mut total_counts: HashMap<u32, u64> = HashMap::new();
    let mut samples: u64 = 0;
    let mut seen: Vec<u32> = Vec::with_capacity(MAX_DEPTH);
    for (key, count) in &merged {
        samples += count;
        if let Some(leaf) = key.last() {
            *self_counts.entry(*leaf).or_insert(0) += count;
        }
        seen.clear();
        for id in key.iter() {
            if !seen.contains(id) {
                seen.push(*id);
                *total_counts.entry(*id).or_insert(0) += count;
            }
        }
    }
    let mut frames: Vec<(u32, u64)> = total_counts.iter().map(|(k, v)| (*k, *v)).collect();
    frames.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| name_of(a.0).cmp(name_of(b.0))));
    frames.truncate(k);

    let rate = hz().max(1) as f64;
    let mut out = String::with_capacity(256 + frames.len() * 96);
    out.push_str("{\"window_seconds\":");
    match window {
        Some(d) => out.push_str(&d.as_secs().to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"hz\":");
    out.push_str(&hz().to_string());
    out.push_str(",\"samples\":");
    out.push_str(&samples.to_string());
    out.push_str(",\"top\":[");
    for (i, (id, total)) in frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let self_n = self_counts.get(id).copied().unwrap_or(0);
        out.push_str("{\"frame\":");
        json::escape_into(&mut out, name_of(*id));
        out.push_str(",\"self\":");
        out.push_str(&self_n.to_string());
        out.push_str(",\"total\":");
        out.push_str(&total.to_string());
        out.push_str(",\"self_seconds\":");
        out.push_str(&json::fmt_f64(self_n as f64 / rate));
        out.push_str(",\"total_seconds\":");
        out.push_str(&json::fmt_f64(*total as f64 / rate));
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiler is process-global; these tests serialize on one mutex so
    /// start/stop and store resets do not interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn seqlock_push_pop_snapshot_roundtrip() {
        let _g = serial();
        let s = ThreadStack::new();
        let a = intern("profile.test.a");
        let b = intern("profile.test.b");
        s.push(a);
        s.push(b);
        let mut buf = [0u32; MAX_DEPTH];
        assert_eq!(s.snapshot(&mut buf), Some(2));
        assert_eq!(&buf[..2], &[a, b]);
        s.pop();
        assert_eq!(s.snapshot(&mut buf), Some(1));
        assert_eq!(buf[0], a);
        s.pop();
        assert_eq!(s.snapshot(&mut buf), Some(0));
    }

    #[test]
    fn overflow_depth_truncates_but_stays_balanced() {
        let _g = serial();
        let s = ThreadStack::new();
        let id = intern("profile.test.deep");
        for _ in 0..(MAX_DEPTH + 5) {
            s.push(id);
        }
        let mut buf = [0u32; MAX_DEPTH];
        // Clamped snapshot: the logical depth exceeds the frame array.
        assert_eq!(s.snapshot(&mut buf), Some(MAX_DEPTH));
        for _ in 0..(MAX_DEPTH + 5) {
            s.pop();
        }
        assert_eq!(s.snapshot(&mut buf), Some(0));
        // An extra pop under-flows harmlessly.
        s.pop();
        assert_eq!(s.snapshot(&mut buf), Some(0));
    }

    #[test]
    fn store_merges_and_renders_folded() {
        let _g = serial();
        reset_store();
        let a = intern("profile.test.root");
        let b = intern("profile.test.leaf");
        record_sample(&[a, b], 0);
        record_sample(&[a, b], 0);
        record_sample(&[a], 0);
        let folded = render_folded(None);
        assert!(
            folded.contains("profile.test.root;profile.test.leaf 2"),
            "missing folded stack in:\n{folded}"
        );
        assert!(folded.contains("profile.test.root 1"));
        reset_store();
    }

    #[test]
    fn top_json_computes_self_and_total() {
        let _g = serial();
        reset_store();
        let a = intern("profile.test.outer");
        let b = intern("profile.test.inner");
        record_sample(&[a, b], 0);
        record_sample(&[a, b], 0);
        record_sample(&[a], 0);
        let json = top_json(None, 10);
        // outer: total 3, self 1; inner: total 2, self 2.
        assert!(
            json.contains("{\"frame\":\"profile.test.outer\",\"self\":1,\"total\":3"),
            "unexpected top table: {json}"
        );
        assert!(json.contains("{\"frame\":\"profile.test.inner\",\"self\":2,\"total\":2"));
        assert!(json.contains("\"samples\":3"));
        reset_store();
    }

    #[test]
    fn recursive_stack_total_counts_once() {
        let _g = serial();
        reset_store();
        let a = intern("profile.test.recur");
        record_sample(&[a, a, a], 0);
        let json = top_json(None, 10);
        assert!(
            json.contains("{\"frame\":\"profile.test.recur\",\"self\":1,\"total\":1"),
            "recursion must not inflate totals: {json}"
        );
        reset_store();
    }

    #[test]
    fn epoch_ring_is_bounded_and_windowed() {
        let _g = serial();
        reset_store();
        let a = intern("profile.test.epoch");
        for epoch in 0..(RING_EPOCHS as u64 + 10) {
            record_sample(&[a], epoch);
        }
        let shard = lock_recover(&store()[shard_of(&[a])]);
        assert_eq!(shard.epochs.len(), RING_EPOCHS);
        assert_eq!(
            shard.boot.get(&vec![a].into_boxed_slice()).copied(),
            Some(RING_EPOCHS as u64 + 10)
        );
        drop(shard);
        reset_store();
    }

    #[test]
    fn sampler_profiles_a_held_span() {
        let _g = serial();
        reset_store();
        assert!(start(997), "sampler must start");
        // Hold a span open on a worker thread long enough to be sampled.
        let t = std::thread::spawn(|| {
            let _outer = crate::span("profile.test.sampled.outer");
            let _inner = crate::span("profile.test.sampled.inner");
            std::thread::sleep(Duration::from_millis(120));
        });
        t.join().unwrap();
        stop();
        let folded = render_folded(None);
        assert!(
            folded.contains("profile.test.sampled.outer;profile.test.sampled.inner"),
            "sampler saw no nested stack:\n{folded}"
        );
        assert!(!running());
        assert_eq!(hz(), 0);
        reset_store();
    }

    #[test]
    fn start_is_idempotent_first_wins() {
        let _g = serial();
        assert!(start(1009));
        assert!(!start(50), "second start must lose");
        assert_eq!(hz(), 1009);
        assert!(running());
        stop();
        assert!(!running());
        // After stop, a fresh start is allowed again (bench interleaving).
        assert!(start(1013));
        stop();
    }

    #[test]
    fn zero_hz_never_starts() {
        let _g = serial();
        assert!(!start(0));
        assert!(!running());
    }
}
