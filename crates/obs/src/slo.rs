//! Rolling multi-window SLO tracking with Google-SRE burn-rate alerts.
//!
//! An [`SloEngine`] is fed one `(status, latency)` observation per finished
//! request and answers, at any moment, "how fast are we burning error
//! budget?" over three nested windows (short / mid / long — by default
//! 1 m / 5 m / 1 h). Two objectives are tracked:
//!
//! * **Availability** — a request is *bad* when its status is ≥ 500 (client
//!   errors spend no budget: a 4xx means the daemon worked).
//! * **Latency** — optional; a request is *bad* when it took longer than the
//!   configured threshold, regardless of status.
//!
//! # Window math
//!
//! Each objective keeps one fixed ring of per-second slots (`long_secs`
//! slots; slot *i* holds the second `now ≡ i (mod len)` and is lazily reset
//! when written or read under a stale second stamp). A window of `w` seconds
//! sums the newest `w` slots — so the three windows share one ring, one
//! mutex, and O(long_secs) memory, and reads are exact rather than decayed
//! approximations.
//!
//! The **burn rate** of a window is `error_rate / (1 − objective)`: 1.0
//! means the error budget is being spent exactly as fast as the objective
//! allows; 14.4 means a 30-day budget dies in ~2 days. Following the SRE
//! workbook, an alert requires *two* windows to burn simultaneously so a
//! single bad second cannot page and a long-resolved incident cannot page
//! either:
//!
//! * **fast** (page) — short *and* mid windows both ≥ `fast_burn_threshold`
//!   (default 14.4).
//! * **slow** (ticket) — mid *and* long windows both ≥ `slow_burn_threshold`
//!   (default 6.0).
//!
//! Windows with zero traffic burn nothing. The engine is pure bookkeeping —
//! JSON/Prometheus rendering lives in the daemon, which also maps the alert
//! state onto `/healthz` (`degraded` while any alert fires).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::sync::lock_recover;

/// Configuration for an [`SloEngine`]; see the module docs for semantics.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Availability objective in (0, 1), e.g. `0.999`.
    pub availability_objective: f64,
    /// Latency objective in (0, 1) (share of requests that must beat the
    /// threshold), e.g. `0.999`.
    pub latency_objective: f64,
    /// Latency threshold in milliseconds; `0` disables the latency SLO.
    pub latency_threshold_ms: u64,
    /// Short (paging) window length in seconds.
    pub short_secs: u64,
    /// Mid window length in seconds.
    pub mid_secs: u64,
    /// Long (ticketing) window length in seconds; also the ring length.
    pub long_secs: u64,
    /// Burn rate at which the short+mid pair fires the fast alert.
    pub fast_burn_threshold: f64,
    /// Burn rate at which the mid+long pair fires the slow alert.
    pub slow_burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            availability_objective: 0.999,
            latency_objective: 0.999,
            latency_threshold_ms: 0,
            short_secs: 60,
            mid_secs: 300,
            long_secs: 3600,
            fast_burn_threshold: 14.4,
            slow_burn_threshold: 6.0,
        }
    }
}

impl SloConfig {
    /// Scales the default 1 m / 5 m / 1 h windows by `short_secs / 60`,
    /// keeping the 1:5:60 ratio (used by `--slo-window-s`, and by tests that
    /// cannot wait out real windows).
    pub fn with_short_window(mut self, short_secs: u64) -> Self {
        let s = short_secs.max(1);
        self.short_secs = s;
        self.mid_secs = s * 5;
        self.long_secs = s * 60;
        self
    }
}

/// One per-second accumulator slot in the ring.
#[derive(Clone, Copy, Default)]
struct Slot {
    /// Absolute second (since engine start) this slot currently holds.
    second: u64,
    good: u64,
    bad: u64,
}

/// Fixed ring of per-second slots; `slots[s % len]` holds second `s`.
struct Ring {
    slots: Vec<Slot>,
}

impl Ring {
    fn new(len: u64) -> Self {
        Ring {
            slots: vec![Slot::default(); len.max(1) as usize],
        }
    }

    fn record(&mut self, second: u64, bad: bool) {
        let len = self.slots.len() as u64;
        let slot = &mut self.slots[(second % len) as usize];
        if slot.second != second {
            *slot = Slot {
                second,
                good: 0,
                bad: 0,
            };
        }
        if bad {
            slot.bad += 1;
        } else {
            slot.good += 1;
        }
    }

    /// Sums the `window` seconds ending at `second` (inclusive), skipping
    /// slots whose stamp shows they hold an older lap of the ring.
    fn window(&self, second: u64, window: u64) -> (u64, u64) {
        let len = self.slots.len() as u64;
        let window = window.min(len);
        let (mut good, mut bad) = (0u64, 0u64);
        let oldest = second.saturating_sub(window - 1);
        for s in oldest..=second {
            let slot = &self.slots[(s % len) as usize];
            if slot.second == s {
                good += slot.good;
                bad += slot.bad;
            }
        }
        (good, bad)
    }
}

/// Error-rate and burn-rate readings for one window of one objective.
#[derive(Debug, Clone, Copy)]
pub struct WindowStats {
    /// Window length in seconds.
    pub seconds: u64,
    /// Requests observed in the window.
    pub total: u64,
    /// Bad requests observed in the window.
    pub bad: u64,
    /// `bad / total`, or 0 with no traffic.
    pub error_rate: f64,
    /// `error_rate / (1 − objective)`, or 0 with no traffic.
    pub burn_rate: f64,
}

/// Point-in-time reading of one objective across its three windows.
#[derive(Debug, Clone, Copy)]
pub struct ObjectiveSnapshot {
    /// The configured objective (e.g. 0.999).
    pub objective: f64,
    /// Short (paging) window reading.
    pub short: WindowStats,
    /// Mid window reading.
    pub mid: WindowStats,
    /// Long (ticketing) window reading.
    pub long: WindowStats,
    /// True while the short+mid fast-burn alert fires.
    pub fast_alert: bool,
    /// True while the mid+long slow-burn alert fires.
    pub slow_alert: bool,
}

/// Point-in-time reading of the whole engine.
#[derive(Debug, Clone, Copy)]
pub struct SloSnapshot {
    /// Availability objective reading.
    pub availability: ObjectiveSnapshot,
    /// Latency objective reading (threshold in ms, reading), when enabled.
    pub latency: Option<(u64, ObjectiveSnapshot)>,
    /// True while any burn-rate alert on any objective fires; surfaces as
    /// `"degraded"` on `/healthz`.
    pub degraded: bool,
}

struct Rings {
    availability: Ring,
    latency: Ring,
}

/// Thread-safe rolling SLO tracker; see the module docs.
pub struct SloEngine {
    config: SloConfig,
    start: Instant,
    inner: Mutex<Rings>,
}

impl SloEngine {
    /// Creates an engine; time starts now.
    pub fn new(config: SloConfig) -> Self {
        let rings = Rings {
            availability: Ring::new(config.long_secs),
            latency: Ring::new(if config.latency_threshold_ms > 0 {
                config.long_secs
            } else {
                1
            }),
        };
        SloEngine {
            config,
            start: Instant::now(),
            inner: Mutex::new(rings),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Feeds one finished request: `status` is the HTTP status sent,
    /// `latency` the accept-to-response wall time.
    pub fn record(&self, status: u16, latency: Duration) {
        let second = self.start.elapsed().as_secs();
        let mut rings = lock_recover(&self.inner);
        rings.availability.record(second, status >= 500);
        if self.config.latency_threshold_ms > 0 {
            let slow = latency > Duration::from_millis(self.config.latency_threshold_ms);
            rings.latency.record(second, slow);
        }
    }

    fn stats(ring: &Ring, second: u64, seconds: u64, objective: f64) -> WindowStats {
        let (good, bad) = ring.window(second, seconds);
        let total = good + bad;
        let error_rate = if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        };
        let budget = (1.0 - objective).max(f64::EPSILON);
        WindowStats {
            seconds,
            total,
            bad,
            error_rate,
            burn_rate: error_rate / budget,
        }
    }

    fn objective_snapshot(&self, ring: &Ring, second: u64, objective: f64) -> ObjectiveSnapshot {
        let short = Self::stats(ring, second, self.config.short_secs, objective);
        let mid = Self::stats(ring, second, self.config.mid_secs, objective);
        let long = Self::stats(ring, second, self.config.long_secs, objective);
        let fast = self.config.fast_burn_threshold;
        let slow = self.config.slow_burn_threshold;
        ObjectiveSnapshot {
            objective,
            short,
            mid,
            long,
            fast_alert: short.burn_rate >= fast && mid.burn_rate >= fast,
            slow_alert: mid.burn_rate >= slow && long.burn_rate >= slow,
        }
    }

    /// Reads the current multi-window state of every objective.
    pub fn snapshot(&self) -> SloSnapshot {
        let second = self.start.elapsed().as_secs();
        let rings = lock_recover(&self.inner);
        let availability = self.objective_snapshot(
            &rings.availability,
            second,
            self.config.availability_objective,
        );
        let latency = if self.config.latency_threshold_ms > 0 {
            Some((
                self.config.latency_threshold_ms,
                self.objective_snapshot(&rings.latency, second, self.config.latency_objective),
            ))
        } else {
            None
        };
        let mut degraded = availability.fast_alert || availability.slow_alert;
        if let Some((_, l)) = &latency {
            degraded = degraded || l.fast_alert || l.slow_alert;
        }
        SloSnapshot {
            availability,
            latency,
            degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig::default().with_short_window(60)
    }

    #[test]
    fn with_short_window_keeps_ratio() {
        let c = SloConfig::default().with_short_window(2);
        assert_eq!((c.short_secs, c.mid_secs, c.long_secs), (2, 10, 120));
    }

    #[test]
    fn clean_traffic_does_not_alert() {
        let e = SloEngine::new(cfg());
        for _ in 0..100 {
            e.record(200, Duration::from_millis(1));
        }
        let s = e.snapshot();
        assert!(!s.degraded);
        assert_eq!(s.availability.short.total, 100);
        assert_eq!(s.availability.short.bad, 0);
        assert_eq!(s.availability.short.burn_rate, 0.0);
        assert!(s.latency.is_none(), "latency SLO off by default");
    }

    #[test]
    fn client_errors_spend_no_availability_budget() {
        let e = SloEngine::new(cfg());
        for _ in 0..50 {
            e.record(400, Duration::from_millis(1));
            e.record(404, Duration::from_millis(1));
        }
        let s = e.snapshot();
        assert_eq!(s.availability.short.bad, 0);
        assert!(!s.degraded);
    }

    #[test]
    fn sustained_5xx_fires_fast_alert() {
        let e = SloEngine::new(cfg());
        for _ in 0..20 {
            e.record(504, Duration::from_millis(1));
        }
        let s = e.snapshot();
        // 100% errors against a 0.1% budget: burn rate 1000 on every window
        // that has traffic.
        assert!(s.availability.short.burn_rate > 14.4);
        assert!(s.availability.fast_alert, "fast alert must fire");
        assert!(s.degraded);
    }

    #[test]
    fn empty_windows_burn_nothing() {
        let e = SloEngine::new(cfg());
        let s = e.snapshot();
        assert_eq!(s.availability.short.total, 0);
        assert_eq!(s.availability.short.burn_rate, 0.0);
        assert!(!s.degraded);
    }

    #[test]
    fn latency_slo_counts_slow_requests_of_any_status() {
        let mut c = cfg();
        c.latency_threshold_ms = 10;
        let e = SloEngine::new(c);
        for _ in 0..10 {
            e.record(200, Duration::from_millis(50));
        }
        let s = e.snapshot();
        let (threshold, l) = s.latency.expect("latency SLO enabled");
        assert_eq!(threshold, 10);
        assert_eq!(l.short.bad, 10);
        assert!(l.fast_alert);
        assert!(s.degraded);
        // Availability stayed clean: all 200s.
        assert_eq!(s.availability.short.bad, 0);
        assert!(!s.availability.fast_alert);
    }

    #[test]
    fn ring_laps_do_not_leak_old_seconds() {
        let mut ring = Ring::new(4);
        ring.record(0, true);
        ring.record(1, true);
        // Seconds 4 and 5 overwrite the slots of seconds 0 and 1.
        ring.record(4, false);
        ring.record(5, false);
        let (good, bad) = ring.window(5, 4);
        assert_eq!((good, bad), (2, 0), "old-lap bads must not be counted");
    }

    #[test]
    fn window_sum_is_exact_over_recent_seconds() {
        let mut ring = Ring::new(10);
        for s in 0..10u64 {
            ring.record(s, s % 2 == 0);
        }
        let (good, bad) = ring.window(9, 3); // seconds 7, 8, 9
        assert_eq!((good, bad), (2, 1));
        let (good, bad) = ring.window(9, 10);
        assert_eq!((good, bad), (5, 5));
    }
}
