//! The flight recorder: per-request span trees retained for post-hoc
//! debugging.
//!
//! Metrics answer "how is the fleet doing"; span sinks answer "what is
//! happening right now". Neither answers the on-call question "why was
//! request `17ab…-3f` slow five minutes ago?". The flight recorder does: a
//! fixed-capacity, sharded ring buffer holding the complete span tree,
//! events, phase timings, and numeric-quality telemetry (Sinkhorn iterations,
//! residuals, SVD sweeps) for the last N completed requests.
//!
//! Retention is **tail-biased**: every completed request enters the main
//! ring, but *interesting* ones — slow, errored (status ≥ 400), panicked, or
//! deadline-exceeded — are additionally pinned into a separate survivor ring,
//! so a burst of healthy traffic can never evict the request you actually
//! need to explain.
//!
//! # Threading model
//!
//! Recording is thread-local: [`FlightRecorder::begin`] installs an active
//! record on the current thread, and every span or event that completes on
//! that thread while it is active is appended (spans also arm automatically —
//! see [`crate::span`]). Work fanned out to *other* threads attaches to their
//! records, if any; work a request's own thread executes inline (including
//! batch subtasks it helps drain) is captured. Kernels attach scalar
//! telemetry with [`note_u64`] / [`note_f64`] without threading any handle
//! through their signatures.
//!
//! When no record is active (the common case for library users), every probe
//! degrades to one thread-local flag read.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;
use crate::sink::{FieldValue, Level, Record, RecordKind};
use crate::trace::TraceContext;

/// Most spans/events retained per request; later ones are counted in
/// `dropped_spans` instead of growing without bound.
pub const MAX_SPANS_PER_RECORD: usize = 256;

const SHARDS: usize = 8;

/// Phase breakdown of one request, in microseconds. Mirrors the
/// `Server-Timing` response header `hc-serve` emits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Accept to worker pickup (time spent in the bounded request queue).
    pub queue_us: u64,
    /// Reading and parsing the request off the socket.
    pub parse_us: u64,
    /// Routing and handler execution.
    pub compute_us: u64,
    /// Response assembly after the handler returned.
    pub serialize_us: u64,
}

/// One span or event captured into a request record.
#[derive(Debug, Clone)]
pub struct RecordedSpan {
    /// Span or event.
    pub kind: RecordKind,
    /// Severity.
    pub level: Level,
    /// Record name (`"sinkhorn.balance"`, `"serve.slow_request"`, …).
    pub name: String,
    /// Enclosing span on the recording thread, if any.
    pub parent: Option<String>,
    /// Nesting depth on the recording thread.
    pub depth: usize,
    /// Duration in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Structured fields in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// How a recorded request ended; passed to [`RecordingGuard::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Final HTTP status.
    pub status: u16,
    /// Accept-to-response latency in microseconds.
    pub latency_us: u64,
    /// Phase breakdown.
    pub phases: PhaseTimings,
    /// Latency exceeded the server's `--slow-ms` threshold.
    pub slow: bool,
    /// The handler panicked (the response is a synthesized 500).
    pub panicked: bool,
}

/// A completed, immutable request record.
#[derive(Debug)]
pub struct RequestRecord {
    /// Global insertion sequence number (newest = highest).
    pub seq: u64,
    /// The request id echoed as `X-Request-Id`.
    pub request_id: String,
    /// W3C trace id (32 hex chars).
    pub trace_id: String,
    /// The server's own span id within the trace (16 hex chars).
    pub span_id: String,
    /// The caller's span id, when a valid `traceparent` arrived.
    pub parent_span_id: Option<String>,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Final HTTP status.
    pub status: u16,
    /// Wall-clock start (µs since the Unix epoch).
    pub started_unix_us: u64,
    /// Accept-to-response latency in microseconds.
    pub latency_us: u64,
    /// Phase breakdown.
    pub phases: PhaseTimings,
    /// Latency exceeded `--slow-ms`.
    pub slow: bool,
    /// The handler panicked.
    pub panicked: bool,
    /// The request was answered `504 deadline_exceeded`.
    pub deadline_exceeded: bool,
    /// Status ≥ 400.
    pub error: bool,
    /// Pinned into the survivor ring (slow, error, panic, or deadline).
    pub survivor: bool,
    /// Captured span tree + events, in completion order.
    pub spans: Vec<RecordedSpan>,
    /// Spans/events discarded past [`MAX_SPANS_PER_RECORD`].
    pub dropped_spans: u64,
    /// Scalar numeric telemetry attached via [`note_u64`] / [`note_f64`].
    pub numerics: Vec<(&'static str, FieldValue)>,
    /// Priority class assigned at admission (`critical` / `interactive` /
    /// `bulk`), when the server recorded one via [`note_overload`].
    pub priority_class: Option<&'static str>,
    /// Overload-ladder state at admission (`ok` / `brownout` / `shedding`).
    pub overload_state: Option<&'static str>,
    /// The request was rejected by admission control (typed 503).
    pub shed: bool,
}

struct Builder {
    request_id: String,
    trace_id: String,
    span_id: String,
    parent_span_id: Option<String>,
    method: String,
    path: String,
    started_unix_us: u64,
    spans: Vec<RecordedSpan>,
    dropped_spans: u64,
    numerics: Vec<(&'static str, FieldValue)>,
    priority_class: Option<&'static str>,
    overload_state: Option<&'static str>,
    shed: bool,
}

thread_local! {
    static ACTIVE: RefCell<Option<Box<Builder>>> = const { RefCell::new(None) };
    static ACTIVE_FLAG: Cell<bool> = const { Cell::new(false) };
}

/// True when a flight record is active on this thread. One thread-local flag
/// read: this is the disabled-path cost added to every span and note probe.
#[inline]
pub fn recording() -> bool {
    ACTIVE_FLAG.with(Cell::get)
}

/// Appends a completed span/event record to the active flight record, if any.
/// Called by the span machinery on drop/emit; bounded per request.
pub(crate) fn capture(record: &Record<'_>) {
    if !recording() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(b) = a.borrow_mut().as_mut() {
            if b.spans.len() >= MAX_SPANS_PER_RECORD {
                b.dropped_spans += 1;
                return;
            }
            b.spans.push(RecordedSpan {
                kind: record.kind,
                level: record.level,
                name: record.name.to_string(),
                parent: record.parent.map(str::to_string),
                depth: record.depth,
                dur_us: record.dur_us,
                fields: record.fields.to_vec(),
            });
        }
    });
}

fn with_builder(f: impl FnOnce(&mut Builder)) {
    ACTIVE.with(|a| {
        if let Some(b) = a.borrow_mut().as_mut() {
            f(b);
        }
    });
}

/// Attaches (or accumulates into) an unsigned scalar on the active record.
///
/// Repeated notes under the same key **add** (saturating), so per-call
/// iteration counts from kernels invoked several times per request sum to a
/// per-request total. No-op when no record is active on this thread.
pub fn note_u64(key: &'static str, v: u64) {
    if !recording() {
        return;
    }
    with_builder(|b| {
        for (k, existing) in b.numerics.iter_mut() {
            if *k == key {
                if let FieldValue::U64(cur) = existing {
                    *existing = FieldValue::U64(cur.saturating_add(v));
                } else {
                    *existing = FieldValue::U64(v);
                }
                return;
            }
        }
        b.numerics.push((key, FieldValue::U64(v)));
    });
}

/// Attaches the admission-control context to the active record: the priority
/// class the request was classified into, the overload-ladder state at
/// admission, and whether the request was shed — so `/debug/requests/{id}`
/// can explain *why* a request was rejected or browned out, not just that it
/// answered 503. No-op when no record is active on this thread.
pub fn note_overload(class: &'static str, state: &'static str, shed: bool) {
    if !recording() {
        return;
    }
    with_builder(|b| {
        b.priority_class = Some(class);
        b.overload_state = Some(state);
        b.shed = shed;
    });
}

/// The identity of the request being recorded on this thread, as
/// `(request_id, traceparent)` — the join key histogram exemplars carry.
/// `None` when no record is active.
pub fn current_context() -> Option<(String, String)> {
    if !recording() {
        return None;
    }
    ACTIVE.with(|a| {
        a.borrow().as_ref().map(|b| {
            (
                b.request_id.clone(),
                format!("00-{}-{}-01", b.trace_id, b.span_id),
            )
        })
    })
}

/// Attaches a float scalar on the active record; repeated notes under the
/// same key **overwrite** (last wins — the final residual is the one that
/// matters). No-op when no record is active on this thread.
pub fn note_f64(key: &'static str, v: f64) {
    if !recording() {
        return;
    }
    with_builder(|b| {
        for (k, existing) in b.numerics.iter_mut() {
            if *k == key {
                *existing = FieldValue::F64(v);
                return;
            }
        }
        b.numerics.push((key, FieldValue::F64(v)));
    });
}

/// RAII handle for an in-progress recording; see [`FlightRecorder::begin`].
///
/// Call [`finish`](RecordingGuard::finish) with the request outcome to commit
/// the record. Dropping the guard without finishing abandons the recording
/// (nothing is retained) but always clears the thread-local state.
pub struct RecordingGuard<'a> {
    rec: Option<&'a FlightRecorder>,
}

impl RecordingGuard<'_> {
    /// True when this guard actually records (the recorder is enabled).
    pub fn active(&self) -> bool {
        self.rec.is_some()
    }

    /// Commits the record with its outcome, pinning interesting requests
    /// (slow / error / panic / deadline) into the survivor ring.
    pub fn finish(mut self, outcome: Outcome) {
        let Some(recorder) = self.rec.take() else {
            return;
        };
        ACTIVE_FLAG.with(|f| f.set(false));
        let builder = ACTIVE.with(|a| a.borrow_mut().take());
        let Some(b) = builder else { return };
        let error = outcome.status >= 400;
        let deadline_exceeded = outcome.status == 504;
        let survivor = error || outcome.slow || outcome.panicked;
        recorder.insert(RequestRecord {
            seq: recorder.seq.fetch_add(1, Ordering::Relaxed),
            request_id: b.request_id,
            trace_id: b.trace_id,
            span_id: b.span_id,
            parent_span_id: b.parent_span_id,
            method: b.method,
            path: b.path,
            status: outcome.status,
            started_unix_us: b.started_unix_us,
            latency_us: outcome.latency_us,
            phases: outcome.phases,
            slow: outcome.slow,
            panicked: outcome.panicked,
            deadline_exceeded,
            error,
            survivor,
            spans: b.spans,
            dropped_spans: b.dropped_spans,
            numerics: b.numerics,
            priority_class: b.priority_class,
            overload_state: b.overload_state,
            shed: b.shed,
        });
    }
}

impl Drop for RecordingGuard<'_> {
    fn drop(&mut self) {
        if self.rec.take().is_some() {
            ACTIVE_FLAG.with(|f| f.set(false));
            ACTIVE.with(|a| a.borrow_mut().take());
        }
    }
}

#[derive(Default)]
struct Shard {
    ring: VecDeque<Arc<RequestRecord>>,
    survivors: VecDeque<Arc<RequestRecord>>,
}

/// The fixed-capacity request store: a main ring of the last N completed
/// requests plus a survivor ring of pinned interesting ones, sharded by
/// request id (lock-per-shard, like the metrics registry).
pub struct FlightRecorder {
    shards: [Mutex<Shard>; SHARDS],
    per_shard: usize,
    survivors_per_shard: usize,
    capacity: usize,
    survivor_capacity: usize,
    seq: AtomicU64,
    recorded: AtomicU64,
    pinned: AtomicU64,
}

fn shard_of(id: &str) -> usize {
    // FNV-1a, as in the metrics registry.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

impl FlightRecorder {
    /// Creates a recorder retaining about `capacity` recent requests plus
    /// about `survivor_capacity` pinned interesting ones. `capacity == 0`
    /// disables recording entirely: [`begin`](FlightRecorder::begin) hands
    /// out inert guards and no per-request cost is paid beyond one branch.
    pub fn new(capacity: usize, survivor_capacity: usize) -> Self {
        FlightRecorder {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            per_shard: capacity.div_ceil(SHARDS),
            survivors_per_shard: survivor_capacity.div_ceil(SHARDS),
            capacity,
            survivor_capacity,
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            pinned: AtomicU64::new(0),
        }
    }

    /// True when recording is enabled (`capacity > 0`).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Total requests ever committed to the recorder.
    pub fn recorded_total(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Total requests ever pinned into the survivor ring.
    pub fn survivors_pinned_total(&self) -> u64 {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Configured main-ring capacity (as requested, before shard rounding).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured survivor-ring capacity.
    pub fn survivor_capacity(&self) -> usize {
        self.survivor_capacity
    }

    /// Starts recording the current thread's request. Spans, events, and
    /// `note_*` calls on this thread attach to the record until the returned
    /// guard is [finished](RecordingGuard::finish) or dropped.
    pub fn begin(
        &self,
        request_id: &str,
        method: &str,
        path: &str,
        trace: &TraceContext,
    ) -> RecordingGuard<'_> {
        if !self.enabled() {
            return RecordingGuard { rec: None };
        }
        let started_unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let builder = Box::new(Builder {
            request_id: request_id.to_string(),
            trace_id: trace.trace_id.clone(),
            span_id: trace.span_id.clone(),
            parent_span_id: trace.parent_span_id.clone(),
            method: method.to_string(),
            path: path.to_string(),
            started_unix_us,
            spans: Vec::new(),
            dropped_spans: 0,
            numerics: Vec::new(),
            priority_class: None,
            overload_state: None,
            shed: false,
        });
        ACTIVE.with(|a| *a.borrow_mut() = Some(builder));
        ACTIVE_FLAG.with(|f| f.set(true));
        RecordingGuard { rec: Some(self) }
    }

    fn insert(&self, record: RequestRecord) {
        let survivor = record.survivor;
        let shard = shard_of(&record.request_id);
        let record = Arc::new(record);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut s = crate::sync::lock_recover(&self.shards[shard]);
        s.ring.push_back(Arc::clone(&record));
        while s.ring.len() > self.per_shard.max(1) {
            s.ring.pop_front();
        }
        if survivor && self.survivors_per_shard > 0 {
            self.pinned.fetch_add(1, Ordering::Relaxed);
            s.survivors.push_back(record);
            while s.survivors.len() > self.survivors_per_shard {
                s.survivors.pop_front();
            }
        }
    }

    /// Finds a record by request id (survivor ring searched too, so pinned
    /// records stay retrievable after the main ring evicted them).
    pub fn lookup(&self, request_id: &str) -> Option<Arc<RequestRecord>> {
        let s = crate::sync::lock_recover(&self.shards[shard_of(request_id)]);
        s.ring
            .iter()
            .rev()
            .chain(s.survivors.iter().rev())
            .find(|r| r.request_id == request_id)
            .cloned()
    }

    /// All retained records (main + survivor rings, deduplicated), newest
    /// first.
    pub fn snapshot(&self) -> Vec<Arc<RequestRecord>> {
        let mut all: Vec<Arc<RequestRecord>> = Vec::new();
        for shard in &self.shards {
            let s = crate::sync::lock_recover(shard);
            all.extend(s.ring.iter().cloned());
            all.extend(s.survivors.iter().cloned());
        }
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all.dedup_by(|a, b| a.seq == b.seq);
        all
    }

    /// The `/debug/requests` document: recorder configuration, lifetime
    /// counters, and a newest-first summary of every retained record.
    pub fn summary_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"capacity\":");
        out.push_str(&self.capacity.to_string());
        out.push_str(",\"survivor_capacity\":");
        out.push_str(&self.survivor_capacity.to_string());
        out.push_str(",\"recorded_total\":");
        out.push_str(&self.recorded_total().to_string());
        out.push_str(",\"survivors_pinned_total\":");
        out.push_str(&self.survivors_pinned_total().to_string());
        out.push_str(",\"requests\":[");
        for (i, r) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.summary_json_into(&mut out);
        }
        out.push_str("]}");
        out
    }
}

impl RequestRecord {
    fn flags_json_into(&self, out: &mut String) {
        out.push_str(",\"status\":");
        out.push_str(&self.status.to_string());
        out.push_str(",\"latency_us\":");
        out.push_str(&self.latency_us.to_string());
        out.push_str(",\"slow\":");
        out.push_str(if self.slow { "true" } else { "false" });
        out.push_str(",\"error\":");
        out.push_str(if self.error { "true" } else { "false" });
        out.push_str(",\"panicked\":");
        out.push_str(if self.panicked { "true" } else { "false" });
        out.push_str(",\"deadline_exceeded\":");
        out.push_str(if self.deadline_exceeded {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"survivor\":");
        out.push_str(if self.survivor { "true" } else { "false" });
        if let (Some(class), Some(state)) = (self.priority_class, self.overload_state) {
            out.push_str(",\"overload\":{\"class\":");
            json::escape_into(out, class);
            out.push_str(",\"state_at_admission\":");
            json::escape_into(out, state);
            out.push_str(",\"shed\":");
            out.push_str(if self.shed { "true" } else { "false" });
            out.push('}');
        }
    }

    fn head_json_into(&self, out: &mut String) {
        out.push_str("{\"request_id\":");
        json::escape_into(out, &self.request_id);
        out.push_str(",\"trace_id\":");
        json::escape_into(out, &self.trace_id);
        out.push_str(",\"span_id\":");
        json::escape_into(out, &self.span_id);
        if let Some(parent) = &self.parent_span_id {
            out.push_str(",\"parent_span_id\":");
            json::escape_into(out, parent);
        }
        out.push_str(",\"method\":");
        json::escape_into(out, &self.method);
        out.push_str(",\"path\":");
        json::escape_into(out, &self.path);
        out.push_str(",\"started_unix_us\":");
        out.push_str(&self.started_unix_us.to_string());
        self.flags_json_into(out);
    }

    /// One-line summary object (used by the `/debug/requests` listing).
    pub fn summary_json_into(&self, out: &mut String) {
        self.head_json_into(out);
        out.push_str(",\"spans\":");
        out.push_str(&self.spans.len().to_string());
        out.push('}');
    }

    /// The full record: identity, flags, phase timings, numeric telemetry,
    /// and the complete captured span tree.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.head_json_into(&mut out);
        out.push_str(",\"phases_us\":{\"queue\":");
        out.push_str(&self.phases.queue_us.to_string());
        out.push_str(",\"parse\":");
        out.push_str(&self.phases.parse_us.to_string());
        out.push_str(",\"compute\":");
        out.push_str(&self.phases.compute_us.to_string());
        out.push_str(",\"serialize\":");
        out.push_str(&self.phases.serialize_us.to_string());
        out.push_str("},\"numerics\":{");
        for (i, (k, v)) in self.numerics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(&mut out, k);
            out.push(':');
            v.render_json(&mut out);
        }
        out.push_str("},\"dropped_spans\":");
        out.push_str(&self.dropped_spans.to_string());
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            out.push_str(match s.kind {
                RecordKind::Span => "\"span\"",
                RecordKind::Event => "\"event\"",
            });
            out.push_str(",\"level\":\"");
            out.push_str(s.level.as_str());
            out.push_str("\",\"name\":");
            json::escape_into(&mut out, &s.name);
            if let Some(parent) = &s.parent {
                out.push_str(",\"parent\":");
                json::escape_into(&mut out, parent);
            }
            out.push_str(",\"depth\":");
            out.push_str(&s.depth.to_string());
            if let Some(dur) = s.dur_us {
                out.push_str(",\"dur_us\":");
                out.push_str(&dur.to_string());
            }
            out.push_str(",\"fields\":{");
            for (j, (k, v)) in s.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::escape_into(&mut out, k);
                out.push(':');
                v.render_json(&mut out);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(status: u16) -> Outcome {
        Outcome {
            status,
            latency_us: 10,
            phases: PhaseTimings::default(),
            slow: false,
            panicked: false,
        }
    }

    #[test]
    fn overload_context_is_recorded_and_rendered() {
        let rec = FlightRecorder::new(8, 2);
        let trace = TraceContext::generate();
        let guard = rec.begin("ovl-req-1", "POST", "/measure", &trace);
        note_overload("bulk", "shedding", true);
        guard.finish(outcome(503));
        let r = rec.lookup("ovl-req-1").expect("record retained");
        assert_eq!(r.priority_class, Some("bulk"));
        assert_eq!(r.overload_state, Some("shedding"));
        assert!(r.shed);
        let json = r.to_json();
        assert!(
            json.contains(
                "\"overload\":{\"class\":\"bulk\",\"state_at_admission\":\
                 \"shedding\",\"shed\":true}"
            ),
            "{json}"
        );
    }

    #[test]
    fn records_without_overload_context_omit_the_block() {
        let rec = FlightRecorder::new(8, 2);
        let trace = TraceContext::generate();
        rec.begin("ovl-req-2", "GET", "/healthz", &trace)
            .finish(outcome(200));
        let r = rec.lookup("ovl-req-2").unwrap();
        assert_eq!(r.priority_class, None);
        assert!(!r.shed);
        assert!(!r.to_json().contains("\"overload\""));
    }

    #[test]
    fn current_context_follows_the_active_record() {
        assert!(current_context().is_none());
        let rec = FlightRecorder::new(8, 2);
        let trace = TraceContext::generate();
        let guard = rec.begin("ctx-req-1", "POST", "/measure", &trace);
        let (id, traceparent) = current_context().expect("armed context");
        assert_eq!(id, "ctx-req-1");
        assert_eq!(
            traceparent,
            format!("00-{}-{}-01", trace.trace_id, trace.span_id)
        );
        guard.finish(outcome(200));
        assert!(current_context().is_none());
    }
}
