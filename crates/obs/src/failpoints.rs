//! Chaos fault-injection points ("failpoints").
//!
//! A failpoint is a named site in the code — `fire("cache.insert")` — at which
//! a fault can be injected at runtime for chaos testing. Sites are inert (one
//! relaxed atomic load) until armed, either through the environment when the
//! process starts:
//!
//! ```text
//! HC_FAILPOINT=worker.idle:panic:7,sinkhorn.iteration:delay:5
//! ```
//!
//! or programmatically from a test via [`arm`]/[`reset`]. The spec grammar is
//! a comma-separated list of `site:action[:arg]` rules:
//!
//! | action      | effect at the site                                   |
//! |-------------|------------------------------------------------------|
//! | `panic`     | panic on every hit                                   |
//! | `panic:N`   | panic on every Nth hit (hits 1..N−1 pass through)    |
//! | `delay:MS`  | `thread::sleep` for MS milliseconds                  |
//! | `busy:MS`   | allocation-free spin loop for MS milliseconds        |
//!
//! The implementation is compiled only with the `failpoints` feature (on by
//! default so release binaries can run the chaos smoke in `verify.sh`);
//! without it, [`fire`] is an empty inline function and the whole module
//! costs nothing.

#[cfg(feature = "failpoints")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// Fast-path flag: true iff at least one rule is armed.
    static ARMED: AtomicBool = AtomicBool::new(false);
    /// True once the environment has been consulted.
    static ENV_SCANNED: AtomicBool = AtomicBool::new(false);
    static RULES: Mutex<Vec<Rule>> = Mutex::new(Vec::new());

    struct Rule {
        site: String,
        action: Action,
        hits: AtomicU64,
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Action {
        Panic { every: u64 },
        Delay(u64),
        Busy(u64),
    }

    fn parse_rule(rule: &str) -> Option<Rule> {
        let mut parts = rule.splitn(3, ':');
        let site = parts.next()?.trim();
        let action = parts.next()?.trim();
        let arg = parts.next().map(str::trim);
        if site.is_empty() {
            return None;
        }
        let action = match (action, arg) {
            ("panic", None) => Action::Panic { every: 1 },
            ("panic", Some(n)) => Action::Panic {
                every: n.parse().ok().filter(|&n| n > 0)?,
            },
            ("delay", Some(ms)) => Action::Delay(ms.parse().ok()?),
            ("busy", Some(ms)) => Action::Busy(ms.parse().ok()?),
            _ => return None,
        };
        Some(Rule {
            site: site.to_string(),
            action,
            hits: AtomicU64::new(0),
        })
    }

    fn parse_spec(spec: &str) -> Vec<Rule> {
        spec.split(',')
            .filter(|r| !r.trim().is_empty())
            .filter_map(parse_rule)
            .collect()
    }

    fn scan_env() {
        if ENV_SCANNED.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(spec) = std::env::var("HC_FAILPOINT") {
            let rules = parse_spec(&spec);
            if !rules.is_empty() {
                let mut guard = crate::sync::lock_recover(&RULES);
                guard.extend(rules);
                ARMED.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Arms the failpoints described by `spec` (same grammar as the
    /// `HC_FAILPOINT` environment variable), replacing any armed rules.
    /// Intended for tests; the environment is read automatically.
    pub fn arm(spec: &str) {
        ENV_SCANNED.store(true, Ordering::SeqCst);
        let rules = parse_spec(spec);
        let mut guard = crate::sync::lock_recover(&RULES);
        let armed = !rules.is_empty();
        *guard = rules;
        drop(guard);
        ARMED.store(armed, Ordering::SeqCst);
    }

    /// Disarms every failpoint (including any armed from the environment).
    pub fn reset() {
        ENV_SCANNED.store(true, Ordering::SeqCst);
        crate::sync::lock_recover(&RULES).clear();
        ARMED.store(false, Ordering::SeqCst);
    }

    /// Hits the failpoint named `site`, executing whatever action is armed for
    /// it. Disarmed cost is one relaxed atomic load.
    pub fn fire(site: &str) {
        if !ARMED.load(Ordering::Relaxed) {
            if ENV_SCANNED.load(Ordering::Relaxed) {
                return;
            }
            scan_env();
            if !ARMED.load(Ordering::Relaxed) {
                return;
            }
        }
        let action = {
            let guard = crate::sync::lock_recover(&RULES);
            match guard.iter().find(|r| r.site == site) {
                Some(rule) => {
                    let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
                    match rule.action {
                        Action::Panic { every } if hit % every != 0 => return,
                        a => a,
                    }
                }
                None => return,
            }
        };
        crate::obs_counter!("failpoint_fired_total").inc();
        match action {
            Action::Panic { .. } => panic!("failpoint '{site}' fired: injected panic"),
            Action::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
            Action::Busy(ms) => {
                let until = Instant::now() + Duration::from_millis(ms);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        // Failpoint state is global; keep tests that arm it serialized.
        static SERIAL: Mutex<()> = Mutex::new(());

        #[test]
        fn disarmed_fire_is_noop() {
            let _g = crate::sync::lock_recover(&SERIAL);
            reset();
            fire("anything");
        }

        #[test]
        fn panic_every_n() {
            let _g = crate::sync::lock_recover(&SERIAL);
            arm("boom:panic:3");
            fire("boom");
            fire("boom");
            let r = std::panic::catch_unwind(|| fire("boom"));
            assert!(r.is_err(), "third hit must panic");
            fire("boom"); // hit 4 passes again
            reset();
        }

        #[test]
        fn delay_and_busy_block_for_roughly_the_arg() {
            let _g = crate::sync::lock_recover(&SERIAL);
            for spec in ["slow:delay:20", "slow:busy:20"] {
                arm(spec);
                let t = Instant::now();
                fire("slow");
                assert!(t.elapsed() >= Duration::from_millis(15), "{spec}");
            }
            reset();
        }

        #[test]
        fn malformed_specs_are_ignored() {
            let _g = crate::sync::lock_recover(&SERIAL);
            arm("nosuchaction:frobnicate, :panic, delayonly:delay, x:panic:0");
            fire("nosuchaction");
            fire("delayonly");
            fire("x");
            reset();
        }

        #[test]
        fn unrelated_site_untouched() {
            let _g = crate::sync::lock_recover(&SERIAL);
            arm("a:panic");
            fire("b");
            reset();
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, fire, reset};

/// Hits the failpoint named `site`. No-op: the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire(_site: &str) {}

/// Arms failpoints from a spec string. No-op: the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
pub fn arm(_spec: &str) {}

/// Disarms every failpoint. No-op: the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
pub fn reset() {}
