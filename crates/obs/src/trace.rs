//! W3C Trace Context (`traceparent`) parsing and generation, std-only.
//!
//! The daemon participates in distributed traces without any tracing SDK: a
//! valid incoming `traceparent` header keeps the caller's trace id and
//! records the caller's span id as the parent; the server then generates a
//! fresh span id for itself and echoes the resulting header on the response.
//! Requests without (or with a malformed) header start a new trace.
//!
//! Header format (version 00):
//! `traceparent: 00-{32 hex trace-id}-{16 hex span-id}-{2 hex flags}`
//!
//! Id generation needs no `rand` crate: a SplitMix64 mix over a process seed
//! (wall clock ⊕ pid) and a global counter yields unique, well-distributed
//! ids — these are correlation handles, not security tokens.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// A resolved trace context for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// 32 lowercase hex chars identifying the whole trace.
    pub trace_id: String,
    /// 16 lowercase hex chars: the server's own span within the trace.
    pub span_id: String,
    /// The caller's span id (16 hex chars) when a valid header arrived.
    pub parent_span_id: Option<String>,
    /// Trace flags byte (bit 0 = sampled); preserved from the caller,
    /// `0x01` for server-started traces.
    pub flags: u8,
    /// True when the server started this trace (no valid incoming header).
    pub generated: bool,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rand64() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5bd1_e995_9e37_79b9);
        splitmix64(nanos ^ (u64::from(std::process::id()) << 32))
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // 0 is invalid for both trace and span ids per the W3C spec.
    splitmix64(seed ^ splitmix64(n)).max(1)
}

fn is_lower_hex(s: &str) -> bool {
    s.bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

fn all_zero(s: &str) -> bool {
    s.bytes().all(|b| b == b'0')
}

impl TraceContext {
    /// Starts a new trace: fresh trace id, fresh span id, no parent,
    /// sampled flag set.
    pub fn generate() -> TraceContext {
        TraceContext {
            trace_id: format!("{:016x}{:016x}", rand64(), rand64()),
            span_id: format!("{:016x}", rand64()),
            parent_span_id: None,
            flags: 0x01,
            generated: true,
        }
    }

    /// Parses an incoming `traceparent` header. On success the caller's
    /// trace id and flags are kept, the caller's span id becomes
    /// `parent_span_id`, and a fresh server span id is generated.
    ///
    /// Validation follows W3C Trace Context level 1: version `00` shape
    /// (four `-`-separated lowercase-hex segments of lengths 2/32/16/2),
    /// version `ff` rejected, all-zero trace or span ids rejected. Unknown
    /// forward-compatible versions are accepted if their first four segments
    /// parse.
    pub fn parse(header: &str) -> Result<TraceContext, String> {
        let header = header.trim();
        let mut parts = header.splitn(4, '-');
        let (version, trace_id, parent_id, rest) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(v), Some(t), Some(p), Some(r)) => (v, t, p, r),
                _ => {
                    return Err(format!(
                        "traceparent {header:?}: expected 4 '-'-separated fields"
                    ))
                }
            };
        // Future versions may append `-extra` after the flags; take the
        // leading 2 hex chars of the remainder as flags.
        let flags = match rest.split('-').next() {
            Some(f) => f,
            None => return Err(format!("traceparent {header:?}: missing flags")),
        };
        if version.len() != 2 || !is_lower_hex(version) {
            return Err(format!("traceparent {header:?}: bad version {version:?}"));
        }
        if version == "ff" {
            return Err(format!("traceparent {header:?}: version ff is forbidden"));
        }
        if trace_id.len() != 32 || !is_lower_hex(trace_id) || all_zero(trace_id) {
            return Err(format!("traceparent {header:?}: bad trace-id"));
        }
        if parent_id.len() != 16 || !is_lower_hex(parent_id) || all_zero(parent_id) {
            return Err(format!("traceparent {header:?}: bad parent-id"));
        }
        if flags.len() != 2 || !is_lower_hex(flags) {
            return Err(format!("traceparent {header:?}: bad flags"));
        }
        let flags = u8::from_str_radix(flags, 16).map_err(|e| e.to_string())?;
        Ok(TraceContext {
            trace_id: trace_id.to_string(),
            span_id: format!("{:016x}", rand64()),
            parent_span_id: Some(parent_id.to_string()),
            flags,
            generated: false,
        })
    }

    /// Renders the outgoing `traceparent` header value for this context
    /// (always version 00, carrying the server's own span id).
    pub fn header_value(&self) -> String {
        format!("00-{}-{}-{:02x}", self.trace_id, self.span_id, self.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_well_formed_unique_contexts() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_eq!(a.trace_id.len(), 32);
        assert_eq!(a.span_id.len(), 16);
        assert!(is_lower_hex(&a.trace_id) && is_lower_hex(&a.span_id));
        assert!(a.generated && a.parent_span_id.is_none());
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
        let h = a.header_value();
        assert_eq!(h.len(), 55);
        assert!(h.starts_with("00-"));
        assert!(h.ends_with("-01"));
        // The echoed header must itself round-trip through the parser.
        let parsed = TraceContext::parse(&h).unwrap();
        assert_eq!(parsed.trace_id, a.trace_id);
        assert_eq!(parsed.parent_span_id.as_deref(), Some(a.span_id.as_str()));
    }

    #[test]
    fn parses_valid_headers() {
        let t =
            TraceContext::parse("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").unwrap();
        assert_eq!(t.trace_id, "0af7651916cd43dd8448eb211c80319c");
        assert_eq!(t.parent_span_id.as_deref(), Some("b7ad6b7169203331"));
        assert_eq!(t.flags, 0x01);
        assert!(!t.generated);
        // The server's span id is fresh, not the caller's.
        assert_ne!(t.span_id, "b7ad6b7169203331");
        assert_eq!(t.span_id.len(), 16);
        // Unsampled flag preserved; surrounding whitespace tolerated.
        let t = TraceContext::parse(" 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00 ")
            .unwrap();
        assert_eq!(t.flags, 0x00);
        // Forward-compat: a future version with extra tail data parses.
        let t =
            TraceContext::parse("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
                .unwrap();
        assert_eq!(t.flags, 0x01);
    }

    #[test]
    fn rejects_malformed_headers() {
        for bad in [
            "",
            "garbage",
            "00-short-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-short-01",
            "00-00000000000000000000000000000000-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
            "0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        ] {
            assert!(TraceContext::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
