//! Typed process-wide metrics: counters, gauges, and log₂-bucketed
//! histograms in a global sharded registry.
//!
//! Unlike spans, metrics are always live: recording is a single relaxed
//! atomic RMW on an `Arc`'d cell. Name → handle resolution goes through a
//! sharded `Mutex<BTreeMap>`, so call sites are expected to resolve once and
//! cache the handle — the [`obs_counter!`](crate::obs_counter),
//! [`obs_gauge!`](crate::obs_gauge), and
//! [`obs_histogram!`](crate::obs_histogram) macros do this with a per-call-site
//! `OnceLock`.
//!
//! [`export_json`] renders the whole registry; `hc-serve` merges it into its
//! `/metrics` document under the `"library"` key.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json;

/// Number of log₂ histogram buckets; bucket `i` covers values of bit-length
/// `i` (`2^(i-1) ≤ v < 2^i`, with 0 in bucket 0), and the last bucket is
/// unbounded. This is exactly the latency bucketing used by `hc-serve`'s
/// endpoint metrics, so the two are comparable.
pub const BUCKETS: usize = 24;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. requests currently in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for value `v`: its bit-length (`64 - leading_zeros`), capped
/// at `BUCKETS - 1`. Zero lands in bucket 0; bucket `i` holds `v < 2^i`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// One retained observation pinned to a histogram bucket: the most recent
/// value that landed there while a flight record was active, plus the
/// identity needed to jump from the bucket to `/debug/requests/{id}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The request id of the observing request (`X-Request-Id`).
    pub request_id: String,
    /// The observing request's W3C `traceparent`.
    pub traceparent: String,
    /// The observed value.
    pub value: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

/// Log₂-bucketed histogram of unsigned values (iterations, microseconds, …).
///
/// Each bucket additionally retains the most recent [`Exemplar`]: when an
/// observation happens on a thread with an active flight record, the
/// request's identity is pinned to the bucket the value landed in — the
/// OpenMetrics exemplar idea, joined to the in-process flight recorder
/// instead of an external trace store. Exemplar capture costs one
/// thread-local flag read when disarmed and a `try_lock` (never blocking the
/// hot path) when armed.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    exemplars: [Mutex<Option<Exemplar>>; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| Mutex::new(None)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        if crate::recorder::recording() {
            self.capture_exemplar(v);
        }
    }

    /// Pins the current request's identity onto the bucket `v` landed in.
    /// Off the fast path: only reached with a flight record armed, and a
    /// contended slot is skipped rather than waited on.
    #[cold]
    fn capture_exemplar(&self, v: u64) {
        let Some((request_id, traceparent)) = crate::recorder::current_context() else {
            return;
        };
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        if let Ok(mut slot) = self.exemplars[bucket_index(v)].try_lock() {
            *slot = Some(Exemplar {
                request_id,
                traceparent,
                value: v,
                unix_ms,
            });
        }
    }

    /// The retained exemplars, as `(bucket_index, exemplar)` pairs in bucket
    /// order. Buckets that never saw an armed observation are absent.
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        let mut out = Vec::new();
        for (i, slot) in self.exemplars.iter().enumerate() {
            if let Ok(guard) = slot.try_lock() {
                if let Some(e) = guard.as_ref() {
                    out.push((i, e.clone()));
                }
            }
        }
        out
    }

    /// Records a duration in whole microseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) observation counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

const SHARDS: usize = 8;

fn registry() -> &'static [Mutex<BTreeMap<&'static str, Metric>>; SHARDS] {
    static REGISTRY: OnceLock<[Mutex<BTreeMap<&'static str, Metric>>; SHARDS]> = OnceLock::new();
    REGISTRY.get_or_init(|| std::array::from_fn(|_| Mutex::new(BTreeMap::new())))
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name; only first-registration and export take this path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// Interns `name` so dynamically-built metric names (e.g. per-heuristic
/// counters) can live in the `&'static str`-keyed registry. Only leaks on
/// first registration, so the leak is bounded by the metric-name universe.
fn intern(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

/// Returns the counter registered under `name`, creating it if absent.
///
/// If `name` is already registered as a different metric kind, a detached
/// (unregistered, never exported) handle is returned rather than panicking:
/// observability must not take down the instrumented process.
pub fn counter(name: &'static str) -> Arc<Counter> {
    let mut shard = registry()[shard_of(name)].lock().unwrap();
    match shard
        .entry(name)
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => c.clone(),
        _ => Arc::new(Counter::default()),
    }
}

/// [`counter`] for a runtime-built name; the name is interned (leaked) on
/// first registration.
pub fn counter_owned(name: String) -> Arc<Counter> {
    let mut shard = registry()[shard_of(&name)].lock().unwrap();
    if let Some(existing) = shard.get(name.as_str()) {
        return match existing {
            Metric::Counter(c) => c.clone(),
            _ => Arc::new(Counter::default()),
        };
    }
    let c = Arc::new(Counter::default());
    shard.insert(intern(name), Metric::Counter(c.clone()));
    c
}

/// Returns the gauge registered under `name`, creating it if absent.
/// Kind mismatches yield a detached handle (see [`counter`]).
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    let mut shard = registry()[shard_of(name)].lock().unwrap();
    match shard
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => g.clone(),
        _ => Arc::new(Gauge::default()),
    }
}

/// Returns the histogram registered under `name`, creating it if absent.
/// Kind mismatches yield a detached handle (see [`counter`]).
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    let mut shard = registry()[shard_of(name)].lock().unwrap();
    match shard
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
    {
        Metric::Histogram(h) => h.clone(),
        _ => Arc::new(Histogram::default()),
    }
}

/// Current value of the counter named `name`, if registered.
pub fn counter_value(name: &str) -> Option<u64> {
    let shard = registry()[shard_of(name)].lock().unwrap();
    match shard.get(name) {
        Some(Metric::Counter(c)) => Some(c.get()),
        _ => None,
    }
}

/// Current value of the gauge named `name`, if registered.
pub fn gauge_value(name: &str) -> Option<i64> {
    let shard = registry()[shard_of(name)].lock().unwrap();
    match shard.get(name) {
        Some(Metric::Gauge(g)) => Some(g.get()),
        _ => None,
    }
}

/// `(count, sum)` of the histogram named `name`, if registered.
pub fn histogram_totals(name: &str) -> Option<(u64, u64)> {
    let shard = registry()[shard_of(name)].lock().unwrap();
    match shard.get(name) {
        Some(Metric::Histogram(h)) => Some((h.count(), h.sum())),
        _ => None,
    }
}

/// Point-in-time snapshot of the whole registry as three sorted maps:
/// counters, gauges, and histograms (`count`, `sum`, per-bucket counts).
/// Shared by the JSON export and the Prometheus renderer so the two formats
/// can never disagree about what exists.
#[allow(clippy::type_complexity)]
pub fn snapshot_all() -> (
    BTreeMap<&'static str, u64>,
    BTreeMap<&'static str, i64>,
    BTreeMap<&'static str, (u64, u64, [u64; BUCKETS])>,
) {
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&'static str, i64> = BTreeMap::new();
    let mut hists: BTreeMap<&'static str, (u64, u64, [u64; BUCKETS])> = BTreeMap::new();
    for shard in registry() {
        let guard = shard.lock().unwrap();
        for (name, metric) in guard.iter() {
            match metric {
                Metric::Counter(c) => {
                    counters.insert(name, c.get());
                }
                Metric::Gauge(g) => {
                    gauges.insert(name, g.get());
                }
                Metric::Histogram(h) => {
                    hists.insert(name, (h.count(), h.sum(), h.bucket_counts()));
                }
            }
        }
    }
    (counters, gauges, hists)
}

/// Every histogram's retained exemplars, keyed by name. Taken separately
/// from [`snapshot_all`] because exemplars only matter to the Prometheus
/// exposition and the exemplar join tests, not to the JSON value export.
pub fn snapshot_exemplars() -> BTreeMap<&'static str, Vec<(usize, Exemplar)>> {
    let mut out: BTreeMap<&'static str, Vec<(usize, Exemplar)>> = BTreeMap::new();
    for shard in registry() {
        let guard = shard.lock().unwrap();
        for (name, metric) in guard.iter() {
            if let Metric::Histogram(h) = metric {
                let ex = h.exemplars();
                if !ex.is_empty() {
                    out.insert(name, ex);
                }
            }
        }
    }
    out
}

/// Renders the entire registry as one JSON object:
/// `{"counters":{..},"gauges":{..},"histograms":{name:{"count","sum","buckets":{"le_1":..}}}}`.
/// Names are sorted; histogram buckets with zero observations are omitted.
pub fn export_json() -> String {
    let (counters, gauges, hists) = snapshot_all();

    let mut out = String::with_capacity(256);
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(&mut out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(&mut out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, (count, sum, buckets))) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(&mut out, name);
        out.push_str(":{\"count\":");
        out.push_str(&count.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&sum.to_string());
        out.push_str(",\"buckets\":{");
        let mut first = true;
        for (b, n) in buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            if b >= BUCKETS - 1 {
                out.push_str("\"le_inf\":");
            } else {
                out.push_str(&format!("\"le_{}\":", bucket_upper(b)));
            }
            out.push_str(&n.to_string());
        }
        out.push_str("}}");
    }
    out.push_str("}}");
    out
}

/// Resolves (once per call site) and returns a `&'static Arc<Counter>`.
#[macro_export]
macro_rules! obs_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Resolves (once per call site) and returns a `&'static Arc<Gauge>`.
#[macro_export]
macro_rules! obs_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Resolves (once per call site) and returns a `&'static Arc<Histogram>`.
#[macro_export]
macro_rules! obs_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let c = counter("test_counter_a");
        c.inc();
        c.add(4);
        assert_eq!(counter_value("test_counter_a"), Some(5));
        // Same name yields the same underlying cell.
        counter("test_counter_a").inc();
        assert_eq!(c.get(), 6);

        let g = gauge("test_gauge_a");
        g.set(7);
        g.sub(2);
        g.add(1);
        assert_eq!(gauge_value("test_gauge_a"), Some(6));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i holds values of bit-length i, i.e. v < 2^i — the same
        // convention hc-serve uses for its latency buckets.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index((1 << 22) - 1), 22);
        assert_eq!(bucket_index(1 << 22), BUCKETS - 1); // bit-length 23 = overflow
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(5), 32);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);

        let h = histogram("test_hist_boundaries");
        for v in [0, 1, 2, 3, 4, 1 << 23] {
            h.observe(v);
        }
        let buckets = h.bucket_counts();
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + (1 << 23));
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2 and 3
        assert_eq!(buckets[3], 1); // 4
        assert_eq!(buckets[BUCKETS - 1], 1); // 2^23 overflows the last bound
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        counter("test_kind_clash").inc();
        let g = gauge("test_kind_clash");
        g.set(99);
        // The registered metric is still the counter; the gauge was detached.
        assert_eq!(counter_value("test_kind_clash"), Some(1));
        assert_eq!(gauge_value("test_kind_clash"), None);
    }

    #[test]
    fn owned_names_are_interned_once() {
        let a = counter_owned("test_owned_name".to_string());
        let b = counter_owned("test_owned_name".to_string());
        a.inc();
        b.inc();
        assert_eq!(counter_value("test_owned_name"), Some(2));
    }

    #[test]
    fn export_json_is_well_formed_and_sorted() {
        counter("test_export_b").add(2);
        counter("test_export_a").add(1);
        gauge("test_export_g").set(-3);
        histogram("test_export_h").observe(5);
        let out = export_json();
        assert!(out.starts_with("{\"counters\":{"));
        assert!(out.contains("\"test_export_a\":1"));
        assert!(out.contains("\"test_export_b\":2"));
        assert!(out.contains("\"test_export_g\":-3"));
        assert!(out.contains("\"test_export_h\":{\"count\":1,\"sum\":5"));
        assert!(out.contains("\"le_8\":1"));
        assert!(
            out.find("test_export_a").unwrap() < out.find("test_export_b").unwrap(),
            "{out}"
        );
    }

    #[test]
    fn exemplars_capture_only_under_an_armed_record() {
        let h = histogram("test_exemplar_hist");
        h.observe(5); // disarmed: no exemplar
        assert!(h.exemplars().is_empty());

        let rec = crate::recorder::FlightRecorder::new(8, 2);
        let trace = crate::trace::TraceContext::generate();
        let guard = rec.begin("exemplar-req-1", "POST", "/measure", &trace);
        h.observe(6); // same bucket as 5: last observation wins
        h.observe(300);
        guard.finish(crate::recorder::Outcome {
            status: 200,
            latency_us: 1,
            phases: crate::recorder::PhaseTimings::default(),
            slow: false,
            panicked: false,
        });

        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        let (b, e) = &ex[0];
        assert_eq!(*b, bucket_index(6));
        assert_eq!(e.request_id, "exemplar-req-1");
        assert_eq!(e.value, 6);
        assert!(e.traceparent.starts_with("00-"));
        assert_eq!(ex[1].0, bucket_index(300));
        // The snapshot sees it under the histogram's name.
        let snap = snapshot_exemplars();
        assert!(snap["test_exemplar_hist"].len() == 2);
    }

    #[test]
    fn macros_cache_handles() {
        for _ in 0..3 {
            obs_counter!("test_macro_counter").inc();
        }
        assert_eq!(counter_value("test_macro_counter"), Some(3));
        obs_gauge!("test_macro_gauge").set(4);
        assert_eq!(gauge_value("test_macro_gauge"), Some(4));
        obs_histogram!("test_macro_hist").observe(9);
        assert_eq!(histogram_totals("test_macro_hist"), Some((1, 9)));
    }
}
