//! Prometheus text-exposition rendering (format version 0.0.4), std-only.
//!
//! Turns the global metrics registry — and, via [`PromWriter`], any caller's
//! own counters/gauges/histograms — into the plain-text format every stock
//! scraper understands: `# TYPE` comments, `name{label="value"} 1234`
//! samples, and log₂ histograms as **cumulative** `_bucket{le="..."}` series
//! with `_sum` and `_count`.
//!
//! The registry's log₂ buckets are exclusive upper bounds (`v < 2^i`), so
//! bucket `i` is emitted as `le="2^i"`; the overflow bucket becomes
//! `le="+Inf"`. Boundaries are a factor of two apart, which is coarser than
//! typical Prometheus buckets but monotone, cheap, and consistent with the
//! JSON export.

use crate::metrics::{self, Exemplar, BUCKETS};

/// Rewrites `name` into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); every invalid byte becomes `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double quote,
/// and newline must be escaped; everything else passes through.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// An exposition-text builder. Callers emit one [`type_line`] per metric
/// name, then any number of labelled samples for it; [`histogram_series`]
/// expands one log₂ histogram into its cumulative bucket/sum/count triplet.
///
/// [`type_line`]: PromWriter::type_line
/// [`histogram_series`]: PromWriter::histogram_series
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits `# TYPE <name> <kind>`. Call once per metric name, before its
    /// samples; `kind` is `counter`, `gauge`, or `histogram`.
    pub fn type_line(&mut self, name: &str, kind: &str) {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emits one sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Emits one log₂ histogram as cumulative `name_bucket{...,le="..."}`
    /// lines plus `name_sum` and `name_count`. `buckets` are the registry's
    /// non-cumulative per-bucket counts; `labels` (e.g. the endpoint) are
    /// attached to every line.
    pub fn histogram_series(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[u64; BUCKETS],
        count: u64,
        sum: u64,
    ) {
        self.histogram_series_with_exemplars(name, labels, buckets, count, sum, &[]);
    }

    /// [`histogram_series`](PromWriter::histogram_series) with per-bucket
    /// exemplar annotations: a bucket that retains one gets an
    /// OpenMetrics-style trailer on its sample line —
    /// `… # {request_id="…",traceparent="…"} <value>` — so a scraper (or an
    /// operator with grep) can jump from the bucket straight to that
    /// request's flight record at `/debug/requests/{id}`.
    pub fn histogram_series_with_exemplars(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[u64; BUCKETS],
        count: u64,
        sum: u64,
        exemplars: &[(usize, Exemplar)],
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            cumulative += n;
            let le = if i >= BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                metrics::bucket_upper(i).to_string()
            };
            let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
            with_le.extend(labels.iter().copied());
            with_le.push(("le", le.as_str()));
            match exemplars.iter().find(|(b, _)| *b == i) {
                Some((_, e)) => {
                    let value = format!(
                        "{cumulative} # {{request_id=\"{}\",traceparent=\"{}\"}} {} {}",
                        escape_label(&e.request_id),
                        escape_label(&e.traceparent),
                        e.value,
                        e.unix_ms,
                    );
                    self.sample(&bucket_name, &with_le, &value);
                }
                None => self.sample(&bucket_name, &with_le, &cumulative.to_string()),
            }
        }
        self.sample(&format!("{name}_sum"), labels, &sum.to_string());
        self.sample(&format!("{name}_count"), labels, &count.to_string());
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders the entire global [`crate::metrics`] registry as exposition text:
/// every counter, gauge, and histogram, names sanitized and sorted.
pub fn render_registry() -> String {
    let (counters, gauges, hists) = metrics::snapshot_all();
    let exemplars = metrics::snapshot_exemplars();
    let mut w = PromWriter::new();
    for (name, v) in &counters {
        let n = sanitize_name(name);
        w.type_line(&n, "counter");
        w.sample(&n, &[], &v.to_string());
    }
    for (name, v) in &gauges {
        let n = sanitize_name(name);
        w.type_line(&n, "gauge");
        w.sample(&n, &[], &v.to_string());
    }
    for (name, (count, sum, buckets)) in &hists {
        let n = sanitize_name(name);
        w.type_line(&n, "histogram");
        let ex = exemplars.get(name).map(Vec::as_slice).unwrap_or(&[]);
        w.histogram_series_with_exemplars(&n, &[], buckets, *count, *sum, ex);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("ok_name:total"), "ok_name:total");
        assert_eq!(sanitize_name("bad.name-1"), "bad_name_1");
        assert_eq!(sanitize_name("9starts_digit"), "_starts_digit");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn writes_samples_and_types() {
        let mut w = PromWriter::new();
        w.type_line("x_total", "counter");
        w.sample("x_total", &[("endpoint", "me\"asure")], "7");
        w.sample("x_total", &[], "9");
        let text = w.finish();
        assert_eq!(
            text,
            "# TYPE x_total counter\nx_total{endpoint=\"me\\\"asure\"} 7\nx_total 9\n"
        );
    }

    #[test]
    fn exemplar_annotation_rides_its_bucket_line() {
        let mut buckets = [0u64; BUCKETS];
        buckets[3] = 1;
        let ex = vec![(
            3usize,
            Exemplar {
                request_id: "req-42".to_string(),
                traceparent: "00-abc-def-01".to_string(),
                value: 5,
                unix_ms: 1700,
            },
        )];
        let mut w = PromWriter::new();
        w.histogram_series_with_exemplars("h_us", &[], &buckets, 1, 5, &ex);
        let text = w.finish();
        assert!(
            text.contains(
                "h_us_bucket{le=\"8\"} 1 # {request_id=\"req-42\",\
                 traceparent=\"00-abc-def-01\"} 5 1700\n"
            ),
            "{text}"
        );
        // Buckets without an exemplar stay plain.
        assert!(text.contains("h_us_bucket{le=\"4\"} 0\n"), "{text}");
    }

    #[test]
    fn histogram_series_is_cumulative_and_consistent() {
        let mut buckets = [0u64; BUCKETS];
        buckets[0] = 2; // v = 0
        buckets[3] = 1; // v in [4, 8)
        buckets[BUCKETS - 1] = 1; // overflow
        let mut w = PromWriter::new();
        w.type_line("h_us", "histogram");
        w.histogram_series("h_us", &[("endpoint", "e")], &buckets, 4, 123);
        let text = w.finish();
        // Cumulative counts: le=1 → 2, le=8 → 3, +Inf → 4 == count.
        assert!(
            text.contains("h_us_bucket{endpoint=\"e\",le=\"1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("h_us_bucket{endpoint=\"e\",le=\"8\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("h_us_bucket{endpoint=\"e\",le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("h_us_sum{endpoint=\"e\"} 123\n"));
        assert!(text.contains("h_us_count{endpoint=\"e\"} 4\n"));
        // le values strictly increase and cumulative counts never decrease.
        let mut last_cum = 0u64;
        let mut seen = 0;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(cum >= last_cum, "{line}");
            last_cum = cum;
            seen += 1;
        }
        assert_eq!(seen, BUCKETS);
    }
}
