//! End-to-end tests of the flight recorder: capture without any sink
//! installed, telemetry-note semantics, ring eviction, survivor pinning, and
//! the disabled fast path.
//!
//! Recording is thread-local, so most tests need no serialization; the one
//! test that manipulates the process-global sink state takes a mutex, like
//! `tracing.rs`.

use std::sync::Mutex;

use hc_obs::recorder::{self, FlightRecorder, Outcome, PhaseTimings};
use hc_obs::trace::TraceContext;
use hc_obs::{event, install_capture_sink, span, uninstall_all_sinks, FieldValue, Level};

static SINK_LOCK: Mutex<()> = Mutex::new(());

fn ok_outcome() -> Outcome {
    Outcome {
        status: 200,
        latency_us: 1234,
        phases: PhaseTimings {
            queue_us: 10,
            parse_us: 20,
            compute_us: 1000,
            serialize_us: 204,
        },
        slow: false,
        panicked: false,
    }
}

#[test]
fn records_spans_events_and_notes_without_a_sink() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uninstall_all_sinks();
    assert!(!hc_obs::sink_installed());

    let rec = FlightRecorder::new(16, 4);
    let trace = TraceContext::generate();
    let guard = rec.begin("req-1", "POST", "/measure", &trace);
    assert!(guard.active());
    assert!(recorder::recording());
    {
        let mut outer = span("test.outer");
        outer.field_u64("n", 7);
        let _inner = span("test.inner");
    }
    event(Level::Warn, "test.note", &[("k", FieldValue::U64(1))]);
    // u64 notes accumulate; f64 notes overwrite.
    recorder::note_u64("sinkhorn_iterations", 30);
    recorder::note_u64("sinkhorn_iterations", 12);
    recorder::note_f64("sinkhorn_residual", 0.5);
    recorder::note_f64("sinkhorn_residual", 1e-9);
    guard.finish(ok_outcome());
    assert!(!recorder::recording());

    let r = rec.lookup("req-1").expect("recorded");
    assert_eq!(r.request_id, "req-1");
    assert_eq!(r.trace_id, trace.trace_id);
    assert_eq!(r.span_id, trace.span_id);
    assert_eq!(r.status, 200);
    assert!(!r.survivor);
    assert_eq!(r.phases.compute_us, 1000);

    // Spans complete inner-first; the event fires after both closed.
    let names: Vec<&str> = r.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        ["test.inner", "test.outer", "test.note"],
        "{names:?}"
    );
    assert_eq!(r.spans[0].parent.as_deref(), Some("test.outer"));
    assert!(r.spans[0].dur_us.is_some());
    assert_eq!(r.spans[1].fields, vec![("n", FieldValue::U64(7))]);

    assert_eq!(
        r.numerics,
        vec![
            ("sinkhorn_iterations", FieldValue::U64(42)),
            ("sinkhorn_residual", FieldValue::F64(1e-9)),
        ]
    );

    let json = r.to_json();
    assert!(json.contains("\"sinkhorn_iterations\":42"), "{json}");
    assert!(json.contains("\"name\":\"test.inner\""), "{json}");
    assert!(json.contains("\"phases_us\":{\"queue\":10"), "{json}");
}

#[test]
fn main_ring_evicts_but_survivors_stay_pinned() {
    let rec = FlightRecorder::new(8, 8);
    let trace = TraceContext::generate();

    // One failed request first — the one worth explaining later.
    let guard = rec.begin("req-broken", "POST", "/measure", &trace);
    guard.finish(Outcome {
        status: 500,
        panicked: true,
        ..ok_outcome()
    });

    // Then a flood of healthy traffic large enough to evict every shard's
    // main ring several times over.
    for i in 0..200 {
        let id = format!("req-ok-{i}");
        let guard = rec.begin(&id, "POST", "/measure", &trace);
        guard.finish(ok_outcome());
    }

    assert_eq!(rec.recorded_total(), 201);
    assert_eq!(rec.survivors_pinned_total(), 1);
    // Main rings hold at most `capacity` (after shard rounding) records, so
    // the earliest healthy request is long gone...
    assert!(rec.lookup("req-ok-0").is_none());
    // ...but the broken one is still retrievable, flagged as a survivor.
    let broken = rec.lookup("req-broken").expect("survivor pinned");
    assert!(broken.survivor && broken.panicked && broken.error);
    assert!(!broken.deadline_exceeded);

    let summary = rec.summary_json();
    assert!(summary.contains("\"recorded_total\":201"), "{summary}");
    assert!(
        summary.contains("\"request_id\":\"req-broken\""),
        "{summary}"
    );
}

#[test]
fn deadline_and_slow_requests_are_survivors_too() {
    let rec = FlightRecorder::new(8, 8);
    let trace = TraceContext::generate();
    let guard = rec.begin("req-late", "POST", "/measure", &trace);
    guard.finish(Outcome {
        status: 504,
        ..ok_outcome()
    });
    let guard = rec.begin("req-slow", "POST", "/measure", &trace);
    guard.finish(Outcome {
        slow: true,
        ..ok_outcome()
    });
    let late = rec.lookup("req-late").unwrap();
    assert!(late.survivor && late.deadline_exceeded && late.error);
    let slow = rec.lookup("req-slow").unwrap();
    assert!(slow.survivor && slow.slow && !slow.error);
    assert_eq!(rec.survivors_pinned_total(), 2);
}

#[test]
fn disabled_recorder_is_inert() {
    let rec = FlightRecorder::new(0, 0);
    assert!(!rec.enabled());
    let trace = TraceContext::generate();
    let guard = rec.begin("req-x", "GET", "/healthz", &trace);
    assert!(!guard.active());
    assert!(!recorder::recording());
    recorder::note_u64("ignored", 1); // must not panic or leak
    guard.finish(ok_outcome());
    assert_eq!(rec.recorded_total(), 0);
    assert!(rec.lookup("req-x").is_none());
    let summary = rec.summary_json();
    assert!(summary.contains("\"capacity\":0"), "{summary}");
    assert!(summary.contains("\"requests\":[]"), "{summary}");
}

#[test]
fn dropped_guard_abandons_the_recording() {
    let rec = FlightRecorder::new(8, 8);
    let trace = TraceContext::generate();
    let guard = rec.begin("req-abandoned", "POST", "/measure", &trace);
    assert!(recorder::recording());
    drop(guard);
    // Thread-local state is cleared and nothing was committed.
    assert!(!recorder::recording());
    assert_eq!(rec.recorded_total(), 0);
    assert!(rec.lookup("req-abandoned").is_none());
}

#[test]
fn span_capture_is_bounded_per_record() {
    let rec = FlightRecorder::new(8, 8);
    let trace = TraceContext::generate();
    let guard = rec.begin("req-chatty", "POST", "/measure", &trace);
    for _ in 0..(recorder::MAX_SPANS_PER_RECORD + 10) {
        event(Level::Info, "test.spam", &[]);
    }
    guard.finish(ok_outcome());
    let r = rec.lookup("req-chatty").unwrap();
    assert_eq!(r.spans.len(), recorder::MAX_SPANS_PER_RECORD);
    assert_eq!(r.dropped_spans, 10);
    assert!(r.to_json().contains("\"dropped_spans\":10"));
}

#[test]
fn dual_emit_reaches_both_recorder_and_sink() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uninstall_all_sinks();
    let cap = install_capture_sink();
    let rec = FlightRecorder::new(8, 8);
    let trace = TraceContext::generate();
    let guard = rec.begin("req-both", "POST", "/measure", &trace);
    {
        let _s = span("test.shared");
    }
    guard.finish(ok_outcome());
    uninstall_all_sinks();

    let r = rec.lookup("req-both").unwrap();
    assert_eq!(r.spans.len(), 1);
    assert_eq!(r.spans[0].name, "test.shared");
    let records = cap.records();
    assert_eq!(records.len(), 1, "{records:?}");
    assert_eq!(records[0].name, "test.shared");
}
