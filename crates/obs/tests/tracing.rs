//! End-to-end tests of the tracing side of `hc-obs`: span nesting (including
//! across threads), JSON-lines rendering and escaping, level filtering, and
//! the disabled fast path.
//!
//! Sinks are process-global, so every test serializes on one mutex and
//! uninstalls on the way out.

use std::sync::Mutex;

use hc_obs::sink::RecordKind;
use hc_obs::{
    event, install_capture_sink, set_level, span, uninstall_all_sinks, CaptureHandle, FieldValue,
    Level,
};

static SINK_LOCK: Mutex<()> = Mutex::new(());

fn with_capture<F: FnOnce(&CaptureHandle)>(f: F) {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uninstall_all_sinks();
    let handle = install_capture_sink();
    f(&handle);
    uninstall_all_sinks();
}

#[test]
fn spans_nest_and_emit_inner_first() {
    with_capture(|cap| {
        {
            let mut outer = span("test.outer");
            outer.field_u64("n", 1);
            {
                let mut inner = span("test.inner");
                inner.field_str("which", "child");
            }
        }
        let records = cap.records();
        assert_eq!(records.len(), 2, "{records:?}");

        let inner = &records[0];
        assert_eq!(inner.name, "test.inner");
        assert_eq!(inner.kind, RecordKind::Span);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent.as_deref(), Some("test.outer"));
        assert!(inner.dur_us.is_some());

        let outer = &records[1];
        assert_eq!(outer.name, "test.outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(outer.fields, vec![("n", FieldValue::U64(1))]);
    });
}

#[test]
fn span_stacks_are_per_thread() {
    with_capture(|cap| {
        let spawn = |tname: &str, root: &'static str, child: &'static str| {
            std::thread::Builder::new()
                .name(tname.to_string())
                .spawn(move || {
                    let _outer = span(root);
                    for _ in 0..3 {
                        let _inner = span(child);
                    }
                })
                .expect("spawn")
        };
        let a = spawn("obs-thread-a", "test.root_a", "test.child_a");
        let b = spawn("obs-thread-b", "test.root_b", "test.child_b");
        a.join().unwrap();
        b.join().unwrap();

        let records = cap.records();
        assert_eq!(records.len(), 8, "{records:?}");
        for r in &records {
            match r.name.as_str() {
                // Each child's parent must be the root of ITS OWN thread,
                // never the concurrently-open root of the other thread.
                "test.child_a" => {
                    assert_eq!(r.parent.as_deref(), Some("test.root_a"));
                    assert_eq!(r.depth, 1);
                    assert!(r.json_line.contains("\"thread\":\"obs-thread-a\""), "{r:?}");
                }
                "test.child_b" => {
                    assert_eq!(r.parent.as_deref(), Some("test.root_b"));
                    assert_eq!(r.depth, 1);
                    assert!(r.json_line.contains("\"thread\":\"obs-thread-b\""), "{r:?}");
                }
                "test.root_a" | "test.root_b" => {
                    assert_eq!(r.parent, None);
                    assert_eq!(r.depth, 0);
                }
                other => panic!("unexpected record {other}"),
            }
        }
    });
}

#[test]
fn json_lines_escape_control_characters() {
    with_capture(|cap| {
        event(
            Level::Info,
            "test.escape",
            &[
                (
                    "payload",
                    FieldValue::Str("line1\nline2\t\"quoted\"\u{7}".to_string()),
                ),
                ("ratio", FieldValue::F64(f64::NAN)),
            ],
        );
        let records = cap.records();
        assert_eq!(records.len(), 1);
        let line = &records[0].json_line;
        assert!(
            line.contains(r#""payload":"line1\nline2\t\"quoted\"\u0007""#),
            "{line}"
        );
        // NaN must not leak an invalid JSON token.
        assert!(line.contains("\"ratio\":null"), "{line}");
        assert!(line.contains("\"kind\":\"event\""), "{line}");
        assert!(line.contains("\"ts_us\":"), "{line}");
        // The line itself must contain no raw control characters.
        assert!(line.chars().all(|c| (c as u32) >= 0x20), "{line}");
    });
}

#[test]
fn events_attach_to_the_enclosing_span() {
    with_capture(|cap| {
        {
            let _req = span("test.request");
            event(
                Level::Warn,
                "test.slow",
                &[("elapsed_ms", FieldValue::U64(250))],
            );
        }
        let records = cap.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "test.slow");
        assert_eq!(records[0].level, Level::Warn);
        assert_eq!(records[0].parent.as_deref(), Some("test.request"));
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[0].dur_us, None);
    });
}

#[test]
fn level_filter_suppresses_below_threshold() {
    with_capture(|cap| {
        set_level(Level::Error);
        {
            let _s = span("test.filtered_span"); // spans emit at Info
        }
        event(Level::Warn, "test.filtered_event", &[]);
        event(Level::Error, "test.passing_event", &[]);
        let records = cap.records();
        assert_eq!(records.len(), 1, "{records:?}");
        assert_eq!(records[0].name, "test.passing_event");
    });
}

#[test]
fn no_sink_means_disarmed_guards_and_no_records() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uninstall_all_sinks();
    assert!(!hc_obs::sink_installed());
    let mut s = span("test.disabled");
    assert!(!s.armed());
    s.field_u64("ignored", 1); // must be a no-op, not a buffered record
    drop(s);
    // Installing a sink afterwards must not retroactively emit anything.
    let cap = install_capture_sink();
    assert!(cap.records().is_empty());
    uninstall_all_sinks();
}
