//! Edge-case tests for the continuous profiler: thread churn races, empty
//! stacks, and unwinding requests. The profiler is process-global (one
//! sampler, one store), and each file under `tests/` is its own process, so
//! this binary owns it outright — tests still serialize on a mutex because
//! the harness runs them on multiple threads.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Threads that register, push spans, and exit in a tight loop while the
/// sampler runs must never panic or deadlock, and the registry must prune
/// dead threads rather than grow without bound.
#[test]
fn sampler_survives_thread_churn() {
    let _guard = serial();
    hc_obs::profile::reset_store();
    assert!(hc_obs::profile::start(997));

    for round in 0..8 {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    // Register with the profiler, hold nested spans briefly,
                    // then exit — racing the sampler's snapshot walk.
                    let _outer = hc_obs::span("profile.test.churn.outer");
                    {
                        let _inner = hc_obs::span("profile.test.churn.inner");
                        std::thread::sleep(Duration::from_millis(2 + round % 3));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("churn worker exits cleanly");
        }
    }
    // Give the sampler a few more ticks so its registry retain() runs after
    // every churn thread has died.
    std::thread::sleep(Duration::from_millis(30));
    hc_obs::profile::stop();
    assert!(!hc_obs::profile::running());
}

/// A registered thread holding no spans contributes idle ticks, not samples:
/// the folded output stays empty rather than inventing frames.
#[test]
fn empty_stacks_produce_no_frames() {
    let _guard = serial();
    hc_obs::profile::reset_store();
    assert!(hc_obs::profile::start(997));
    {
        // Register this thread by opening and immediately closing a span,
        // then sit idle long enough for several sampler ticks.
        drop(hc_obs::span("profile.test.idle.register"));
        std::thread::sleep(Duration::from_millis(40));
    }
    hc_obs::profile::stop();
    let folded = hc_obs::profile::render_folded(None);
    assert!(
        !folded.contains("profile.test.idle.register"),
        "an idle thread must not be attributed lingering frames: {folded:?}"
    );
}

/// A request that panics unwinds through its span guards, so the thread's
/// stack depth returns to zero and later samples see only live frames.
#[test]
fn panicked_request_unwinds_its_frames() {
    let _guard = serial();
    hc_obs::profile::reset_store();
    assert!(hc_obs::profile::start(997));

    let result = std::panic::catch_unwind(|| {
        let _outer = hc_obs::span("profile.test.panic.outer");
        let _inner = hc_obs::span("profile.test.panic.inner");
        panic!("injected");
    });
    assert!(result.is_err(), "the probe panic must propagate");

    // After the unwind, hold a fresh span long enough to be sampled; it must
    // appear as a root, not nested under the panicked request's frames.
    {
        let _after = hc_obs::span("profile.test.panic.after");
        std::thread::sleep(Duration::from_millis(60));
    }
    hc_obs::profile::stop();
    let folded = hc_obs::profile::render_folded(None);
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("profile.test.panic.after ")),
        "post-panic span must be sampled as a root frame: {folded:?}"
    );
    assert!(
        !folded.contains("outer;profile.test.panic.after")
            && !folded.contains("inner;profile.test.panic.after"),
        "panicked frames must not leak under later spans: {folded:?}"
    );
}

/// `start(0)` refuses to run and a stopped profiler serves a clean restart,
/// so the serve flag `--profile-hz 0` genuinely disables sampling.
#[test]
fn zero_hz_disables_and_restart_works() {
    let _guard = serial();
    hc_obs::profile::reset_store();
    assert!(!hc_obs::profile::start(0));
    assert!(!hc_obs::profile::running());

    assert!(hc_obs::profile::start(251));
    assert!(hc_obs::profile::running());
    assert_eq!(hc_obs::profile::hz(), 251);
    // Second start is first-wins: reports false, keeps the original rate.
    assert!(!hc_obs::profile::start(13));
    assert_eq!(hc_obs::profile::hz(), 251);
    hc_obs::profile::stop();
    assert!(!hc_obs::profile::running());
}
