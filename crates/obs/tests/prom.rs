//! Golden tests for the Prometheus text-exposition renderer: exact line
//! shapes, label escaping, `le` monotonicity, and agreement between the
//! Prometheus document and the JSON export over the same registry snapshot.
//!
//! The metrics registry is process-global and cumulative, so every metric
//! here uses a `promtest_`-prefixed name no other test touches.

use hc_obs::metrics::{self, BUCKETS};
use hc_obs::prom::{self, PromWriter};

#[test]
fn golden_registry_rendering() {
    metrics::counter("promtest_requests_total").add(7);
    metrics::gauge("promtest_in_flight").set(-2);
    let h = metrics::histogram("promtest_latency_us");
    h.observe(0); // bucket 0: le="1"
    h.observe(3); // bucket 2: le="4"
    h.observe(900); // bucket 10: le="1024"

    let text = prom::render_registry();

    // Exact golden lines: TYPE before samples, cumulative buckets, sum/count.
    for line in [
        "# TYPE promtest_requests_total counter",
        "promtest_requests_total 7",
        "# TYPE promtest_in_flight gauge",
        "promtest_in_flight -2",
        "# TYPE promtest_latency_us histogram",
        "promtest_latency_us_bucket{le=\"1\"} 1",
        "promtest_latency_us_bucket{le=\"4\"} 2",
        "promtest_latency_us_bucket{le=\"1024\"} 3",
        "promtest_latency_us_bucket{le=\"+Inf\"} 3",
        "promtest_latency_us_sum 903",
        "promtest_latency_us_count 3",
    ] {
        assert!(
            text.lines().any(|l| l == line),
            "missing golden line {line:?} in:\n{text}"
        );
    }

    // A TYPE line appears exactly once per name, before every sample of it.
    let type_pos = text.find("# TYPE promtest_latency_us histogram").unwrap();
    let first_sample = text.find("promtest_latency_us_bucket").unwrap();
    assert!(type_pos < first_sample);
    assert_eq!(
        text.matches("# TYPE promtest_latency_us histogram").count(),
        1
    );
}

#[test]
fn bucket_les_increase_and_counts_are_monotone() {
    let h = metrics::histogram("promtest_monotone_us");
    for v in [0, 1, 5, 5, 300, 70_000, u64::MAX] {
        h.observe(v);
    }
    let text = prom::render_registry();
    let mut last_le = 0u64;
    let mut last_cum = 0u64;
    let mut lines = 0;
    for line in text
        .lines()
        .filter(|l| l.starts_with("promtest_monotone_us_bucket{"))
    {
        let le = line
            .split("le=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap();
        let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(cum >= last_cum, "cumulative count decreased: {line}");
        last_cum = cum;
        if le != "+Inf" {
            let le: u64 = le.parse().unwrap();
            assert!(le > last_le, "le not strictly increasing: {line}");
            last_le = le;
        }
        lines += 1;
    }
    assert_eq!(lines, BUCKETS, "every bucket must be emitted:\n{text}");
    assert_eq!(last_cum, 7, "+Inf bucket must equal the observation count");
}

#[test]
fn prometheus_and_json_exports_agree() {
    let h = metrics::histogram("promtest_agree_us");
    for v in [2, 9, 1_000_000] {
        h.observe(v);
    }
    metrics::counter("promtest_agree_total").add(11);

    let text = prom::render_registry();
    let json = metrics::export_json();

    // Counter value matches.
    assert!(
        text.lines().any(|l| l == "promtest_agree_total 11"),
        "{text}"
    );
    assert!(json.contains("\"promtest_agree_total\":11"), "{json}");

    // Histogram count and sum match between the two documents.
    assert!(
        text.lines().any(|l| l == "promtest_agree_us_count 3"),
        "{text}"
    );
    assert!(
        text.lines().any(|l| l == "promtest_agree_us_sum 1000011"),
        "{text}"
    );
    assert!(
        json.contains("\"promtest_agree_us\":{\"count\":3,\"sum\":1000011"),
        "{json}"
    );

    // Per-bucket: the JSON `le_N` keys and the cumulative prometheus buckets
    // describe the same distribution. v=2 → le_4, v=9 → le_16, 1e6 → le_2^20.
    assert!(json.contains("\"le_4\":1"), "{json}");
    assert!(json.contains("\"le_16\":1"), "{json}");
    assert!(json.contains("\"le_1048576\":1"), "{json}");
    assert!(
        text.lines()
            .any(|l| l == "promtest_agree_us_bucket{le=\"4\"} 1"),
        "{text}"
    );
    assert!(
        text.lines()
            .any(|l| l == "promtest_agree_us_bucket{le=\"16\"} 2"),
        "{text}"
    );
    assert!(
        text.lines()
            .any(|l| l == "promtest_agree_us_bucket{le=\"1048576\"} 3"),
        "{text}"
    );
}

#[test]
fn labels_escape_and_names_sanitize() {
    let mut w = PromWriter::new();
    w.type_line("promtest_escaped_total", "counter");
    w.sample(
        "promtest_escaped_total",
        &[("path", "/a\"b\\c\nd"), ("endpoint", "measure")],
        "1",
    );
    let text = w.finish();
    assert!(
        text.contains("promtest_escaped_total{path=\"/a\\\"b\\\\c\\nd\",endpoint=\"measure\"} 1"),
        "{text}"
    );
    assert!(
        !text.contains('\u{a}') || text.lines().count() == 2,
        "{text}"
    );

    assert_eq!(prom::sanitize_name("serve.latency-us"), "serve_latency_us");
    assert_eq!(prom::sanitize_name("0bad"), "_bad");
}
