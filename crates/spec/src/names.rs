//! Benchmark and machine names from the paper's Figures 5–7.

/// The five machines of the paper's Figure 5.
pub const MACHINES: [&str; 5] = [
    "ASUS TS100-E6 (P7F-X) (Intel Xeon X3470)",
    "Fujitsu SPARC Enterprise M3000",
    "CELSIUS W280 (Intel Core i7-870)",
    "ProLiant SL165z G7 (2.2 GHz AMD Opteron 6174)",
    "IBM Power 750 Express (3.55 GHz, 32 core, SLES)",
];

/// Short machine labels (`m1`–`m5`) used in tables.
pub const MACHINE_LABELS: [&str; 5] = ["m1", "m2", "m3", "m4", "m5"];

/// The 12 SPEC CINT2006Rate task types (paper Fig. 6).
pub const CINT_BENCHMARKS: [&str; 12] = [
    "400.perlbench",
    "401.bzip2",
    "403.gcc",
    "429.mcf",
    "445.gobmk",
    "456.hmmer",
    "458.sjeng",
    "462.libquantum",
    "464.h264ref",
    "471.omnetpp",
    "473.astar",
    "483.xalancbmk",
];

/// The 17 SPEC CFP2006Rate task types (paper Fig. 7).
pub const CFP_BENCHMARKS: [&str; 17] = [
    "410.bwaves",
    "416.gamess",
    "433.milc",
    "434.zeusmp",
    "435.gromacs",
    "436.cactusADM",
    "437.leslie3d",
    "444.namd",
    "447.dealII",
    "450.soplex",
    "453.povray",
    "454.calculix",
    "459.GemsFDTD",
    "465.tonto",
    "470.lbm",
    "481.wrf",
    "482.sphinx3",
];

/// Machine descriptors as `(label, full name)` pairs.
pub fn machines() -> Vec<(String, String)> {
    MACHINE_LABELS
        .iter()
        .zip(MACHINES.iter())
        .map(|(l, n)| (l.to_string(), n.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        assert_eq!(MACHINES.len(), 5);
        assert_eq!(
            CINT_BENCHMARKS.len(),
            12,
            "SPEC CINT2006Rate has 12 task types"
        );
        assert_eq!(
            CFP_BENCHMARKS.len(),
            17,
            "SPEC CFP2006Rate has 17 task types"
        );
    }

    #[test]
    fn fig8_names_present() {
        assert!(CINT_BENCHMARKS.contains(&"471.omnetpp"));
        assert!(CFP_BENCHMARKS.contains(&"436.cactusADM"));
        assert!(CFP_BENCHMARKS.contains(&"450.soplex"));
    }

    #[test]
    fn machine_pairs() {
        let m = machines();
        assert_eq!(m.len(), 5);
        assert_eq!(m[0].0, "m1");
        assert!(m[4].1.contains("IBM Power 750"));
    }
}
