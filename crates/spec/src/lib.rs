//! # hc-spec — the evaluation dataset (synthetic SPEC CPU2006 rate matrices)
//!
//! The paper's Sec. V evaluates the measures on ETC matrices extracted from the
//! SPEC CINT2006Rate (12 task types) and CFP2006Rate (17 task types) peak-runtime
//! tables for five named machines (the paper's Figs. 5–7).
//!
//! **Substitution note** (see DESIGN.md): the numeric runtime tables did not
//! survive the text extraction of the paper, and SPEC's published measurements are
//! external data we do not ship. This crate therefore provides a **calibrated
//! synthetic dataset**: matrices carrying the paper's real benchmark and machine
//! names, with runtimes synthesized so that the three measures equal the values
//! the paper reports —
//!
//! | matrix | TDH | MPH | TMA |
//! |---|---|---|---|
//! | CINT2006Rate (12×5) | 0.90 | 0.82 | 0.07 |
//! | CFP2006Rate (17×5) | 0.91 | 0.83 | ≈0.11 |
//!
//! (the paper prints the CFP TMA imprecisely in our source; 0.11 preserves the
//! paper's stated comparison "floating-point task types have more affinity to
//! machines than the integer ones"). Every claim the paper makes about this data
//! is a claim about these measure values, so the substitution exercises the exact
//! code path (ETC → ECS → canonical → standard form → SVD → measures) with the
//! same outcomes.
//!
//! [`fig8`] reconstructs the paper's Fig. 8 2×2 example pairs exactly from their
//! reported measure values. [`csv`] round-trips labeled ETC matrices through a
//! plain CSV format so users can load real SPEC data when they have it.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod dataset;
pub mod fig8;
pub mod names;

pub use dataset::{cfp2006, cint2006, SpecDataset, SpecTargets};
pub use names::{machines, CFP_BENCHMARKS, CINT_BENCHMARKS, MACHINES};
