//! Calibrated synthetic SPEC datasets.
//!
//! Construction (per matrix):
//! 1. build a balanced matrix with the paper's reported TMA (bisection over an
//!    affinity blend, `hc_gen::targeted` machinery) with seeded jitter so the
//!    entries look like measurement noise rather than a geometric lattice;
//! 2. impose *jittered* marginals whose adjacent-ratio homogeneities equal the
//!    reported TDH and MPH exactly (random per-step ratios mean-adjusted to the
//!    target);
//! 3. convert ECS → ETC and scale to a plausible peak-runtime magnitude
//!    (hundreds of seconds).
//!
//! Steps 1–2 make the three measures land on the reported values by construction;
//! step 3 is measure-invariant.

use crate::names::{CFP_BENCHMARKS, CINT_BENCHMARKS, MACHINE_LABELS};
use hc_core::ecs::{Ecs, Etc};
use hc_core::error::MeasureError;
use hc_gen::rng::{Rng, StdRng};
use hc_gen::targeted::{targeted_with_marginals, TargetSpec};

/// The paper-reported measure values a dataset is calibrated to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecTargets {
    /// Reported task difficulty homogeneity.
    pub tdh: f64,
    /// Reported machine performance homogeneity.
    pub mph: f64,
    /// Reported task-machine affinity.
    pub tma: f64,
    /// Reported Sinkhorn iteration count at tolerance 1e-8 (Sec. V).
    pub iterations: usize,
}

/// The paper's reported values for SPEC CINT2006Rate (Fig. 6).
pub const CINT_TARGETS: SpecTargets = SpecTargets {
    tdh: 0.90,
    mph: 0.82,
    tma: 0.07,
    iterations: 6,
};

/// The paper's reported values for SPEC CFP2006Rate (Fig. 7). The printed TMA is
/// partially illegible in our source; 0.11 preserves the stated CFP > CINT
/// affinity comparison.
pub const CFP_TARGETS: SpecTargets = SpecTargets {
    tdh: 0.91,
    mph: 0.83,
    tma: 0.11,
    iterations: 7,
};

/// A labeled, calibrated dataset.
#[derive(Debug, Clone)]
pub struct SpecDataset {
    /// Dataset name (`"SPEC CINT2006Rate"` / `"SPEC CFP2006Rate"`).
    pub name: String,
    /// The synthetic peak-runtime ETC matrix.
    pub etc: Etc,
    /// The targets it was calibrated to.
    pub targets: SpecTargets,
}

impl SpecDataset {
    /// The ECS view of the dataset.
    pub fn ecs(&self) -> Ecs {
        self.etc.to_ecs()
    }
}

/// Marginal vector of length `n` whose adjacent ratios average exactly `h`, with
/// seeded jitter of half-width `spread` on each ratio (mean-adjusted).
fn jittered_marginals(n: usize, h: f64, spread: f64, rng: &mut StdRng) -> Vec<f64> {
    assert!(n >= 2);
    let k = n - 1;
    // Per-step ratios in (0, 1]: deltas mean-adjusted to zero, clamped range.
    let lo = (h - spread).max(0.02);
    let hi = (h + spread).min(1.0);
    let mut ratios: Vec<f64> = (0..k).map(|_| rng.gen_range(lo..=hi)).collect();
    let mean: f64 = ratios.iter().sum::<f64>() / k as f64;
    let shift = h - mean;
    for r in &mut ratios {
        *r += shift;
    }
    // The shift can only push a ratio out of (0, 1] marginally; clamp and
    // redistribute the clamped mass to keep the mean exact.
    for _ in 0..8 {
        let mut excess = 0.0;
        let mut free = 0usize;
        for r in &mut ratios {
            if *r > 1.0 {
                excess += *r - 1.0;
                *r = 1.0;
            } else if *r < 0.01 {
                excess -= 0.01 - *r;
                *r = 0.01;
            } else {
                free += 1;
            }
        }
        if excess.abs() < 1e-15 || free == 0 {
            break;
        }
        let per = excess / free as f64;
        for r in &mut ratios {
            if *r < 1.0 && *r > 0.01 {
                *r += per;
            }
        }
    }
    // Build ascending values: v_{k+1} = v_k / ratio_k.
    let mut v = vec![1.0_f64];
    for r in &ratios {
        let last = *v.last().expect("non-empty");
        v.push(last / r);
    }
    v
}

/// Builds a calibrated dataset for **custom** benchmark names and targets — the
/// same construction the built-in [`cint2006`]/[`cfp2006`] use, exposed so users
/// can synthesize stand-ins for their own reported measure values.
pub fn calibrated(
    name: &str,
    benchmarks: &[&str],
    targets: SpecTargets,
    seed: u64,
    mean_runtime_s: f64,
) -> Result<SpecDataset, MeasureError> {
    build(name, benchmarks, targets, seed, mean_runtime_s)
}

fn build(
    name: &str,
    benchmarks: &[&str],
    targets: SpecTargets,
    seed: u64,
    mean_runtime_s: f64,
) -> Result<SpecDataset, MeasureError> {
    let t = benchmarks.len();
    let m = MACHINE_LABELS.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let row_targets = jittered_marginals(t, targets.tdh, 0.05, &mut rng);
    let col_targets = jittered_marginals(m, targets.mph, 0.05, &mut rng);
    let spec = TargetSpec {
        tasks: t,
        machines: m,
        mph: targets.mph,
        tdh: targets.tdh,
        tma: targets.tma,
        jitter: 0.6,
    };
    let ecs = targeted_with_marginals(&spec, &row_targets, &col_targets, seed)?;

    // ECS → ETC, scaled to a plausible peak-runtime magnitude.
    let etc_raw = ecs.matrix().map(|v| 1.0 / v);
    let mean = etc_raw.total_sum() / etc_raw.len() as f64;
    let scaled = etc_raw.scaled(mean_runtime_s / mean);
    let etc = Etc::with_names(
        scaled,
        benchmarks.iter().map(|s| s.to_string()).collect(),
        MACHINE_LABELS.iter().map(|s| s.to_string()).collect(),
    )?;
    Ok(SpecDataset {
        name: name.to_string(),
        etc,
        targets,
    })
}

/// The calibrated synthetic SPEC CINT2006Rate dataset (12 tasks × 5 machines).
pub fn cint2006() -> SpecDataset {
    build(
        "SPEC CINT2006Rate",
        &CINT_BENCHMARKS,
        CINT_TARGETS,
        0x5EC_C1A7,
        420.0,
    )
    .expect("CINT calibration is deterministic and must succeed")
}

/// The calibrated synthetic SPEC CFP2006Rate dataset (17 tasks × 5 machines).
pub fn cfp2006() -> SpecDataset {
    build(
        "SPEC CFP2006Rate",
        &CFP_BENCHMARKS,
        CFP_TARGETS,
        0x5EC_CF97,
        540.0,
    )
    .expect("CFP calibration is deterministic and must succeed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::measures::{mph, tdh};
    use hc_core::report::characterize;
    use hc_core::standard::tma;

    #[test]
    fn cint_hits_paper_values() {
        let d = cint2006();
        let e = d.ecs();
        assert_eq!(d.etc.num_tasks(), 12);
        assert_eq!(d.etc.num_machines(), 5);
        assert!(
            (tdh(&e).unwrap() - 0.90).abs() < 5e-3,
            "TDH = {}",
            tdh(&e).unwrap()
        );
        assert!(
            (mph(&e).unwrap() - 0.82).abs() < 5e-3,
            "MPH = {}",
            mph(&e).unwrap()
        );
        assert!(
            (tma(&e).unwrap() - 0.07).abs() < 5e-3,
            "TMA = {}",
            tma(&e).unwrap()
        );
    }

    #[test]
    fn cfp_hits_paper_values() {
        let d = cfp2006();
        let e = d.ecs();
        assert_eq!(d.etc.num_tasks(), 17);
        assert!((tdh(&e).unwrap() - 0.91).abs() < 5e-3);
        assert!((mph(&e).unwrap() - 0.83).abs() < 5e-3);
        assert!((tma(&e).unwrap() - 0.11).abs() < 5e-3);
    }

    #[test]
    fn cfp_more_affine_than_cint() {
        // The paper's headline Sec.-V comparison.
        let cint = tma(&cint2006().ecs()).unwrap();
        let cfp = tma(&cfp2006().ecs()).unwrap();
        assert!(cfp > cint, "CFP TMA {cfp} must exceed CINT TMA {cint}");
    }

    #[test]
    fn homogeneities_nearly_identical_across_suites() {
        // Paper: "The machine performance homogeneity and the task type difficulty
        // of both matrices are almost identical."
        let a = characterize(&cint2006().ecs()).unwrap();
        let b = characterize(&cfp2006().ecs()).unwrap();
        assert!((a.mph - b.mph).abs() < 0.03);
        assert!((a.tdh - b.tdh).abs() < 0.03);
    }

    #[test]
    fn standardization_iterations_in_paper_regime() {
        // Paper: CINT converged in 6 iterations, CFP in 7, at tolerance 1e-8.
        let a = characterize(&cint2006().ecs()).unwrap();
        let b = characterize(&cfp2006().ecs()).unwrap();
        assert!(
            (3..=15).contains(&a.standardization_iterations),
            "CINT iterations = {}",
            a.standardization_iterations
        );
        assert!(
            (3..=15).contains(&b.standardization_iterations),
            "CFP iterations = {}",
            b.standardization_iterations
        );
    }

    #[test]
    fn runtimes_plausible() {
        let d = cint2006();
        let m = d.etc.matrix();
        assert!(m.is_positive());
        let mean = m.total_sum() / m.len() as f64;
        assert!((mean - 420.0).abs() < 1.0, "mean runtime = {mean}");
        assert!(
            m.min().unwrap() > 10.0,
            "min runtime = {}",
            m.min().unwrap()
        );
        assert!(m.max().unwrap() < 20_000.0, "max = {}", m.max().unwrap());
    }

    #[test]
    fn deterministic_construction() {
        let a = cint2006();
        let b = cint2006();
        assert_eq!(a.etc.matrix(), b.etc.matrix());
    }

    #[test]
    fn labels_are_benchmarks() {
        let d = cfp2006();
        assert_eq!(d.etc.task_names()[5], "436.cactusADM");
        assert_eq!(d.etc.machine_names()[0], "m1");
    }

    #[test]
    fn calibrated_custom_dataset() {
        let targets = SpecTargets {
            tdh: 0.7,
            mph: 0.6,
            tma: 0.2,
            iterations: 0,
        };
        let d = calibrated("custom", &["a", "b", "c", "d"], targets, 42, 100.0).unwrap();
        let e = d.ecs();
        assert_eq!(d.etc.num_tasks(), 4);
        assert!((tdh(&e).unwrap() - 0.7).abs() < 5e-3);
        assert!((mph(&e).unwrap() - 0.6).abs() < 5e-3);
        assert!((tma(&e).unwrap() - 0.2).abs() < 5e-3);
        assert_eq!(d.etc.task_names()[2], "c");
    }

    #[test]
    fn jittered_marginals_exact_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for h in [0.3, 0.82, 0.95] {
            let v = jittered_marginals(10, h, 0.05, &mut rng);
            let got = hc_core::measures::adjacent_ratio_homogeneity(&v).unwrap();
            assert!((got - h).abs() < 1e-9, "h = {h}, got {got}");
        }
    }
}
