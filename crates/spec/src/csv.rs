//! Plain-CSV serialization for labeled ETC matrices.
//!
//! Format: first row `task,<machine labels…>`; each following row
//! `<task label>,<runtime…>`, with `inf` for incompatible pairs. Hand-rolled on
//! purpose — the artifact must be readable/writable with nothing but a text
//! editor, and users with licensed SPEC data can drop their own tables in.

use hc_core::ecs::Etc;
use hc_core::error::MeasureError;
use hc_linalg::Matrix;

/// Serializes an ETC matrix to CSV.
pub fn to_csv(etc: &Etc) -> String {
    let mut out = String::from("task");
    for m in etc.machine_names() {
        out.push(',');
        out.push_str(&escape(m));
    }
    out.push('\n');
    for (i, t) in etc.task_names().iter().enumerate() {
        out.push_str(&escape(t));
        for j in 0..etc.num_machines() {
            out.push(',');
            let v = etc.matrix()[(i, j)];
            if v.is_infinite() {
                out.push_str("inf");
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits one CSV line honoring double-quoted fields.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parses an ETC matrix from CSV (the format written by [`to_csv`]).
pub fn from_csv(text: &str) -> Result<Etc, MeasureError> {
    hc_obs::obs_counter!("spec_csv_parses_total").inc();
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| MeasureError::InvalidEnvironment {
            reason: "CSV is empty".into(),
        })?;
    let head_fields = split_line(header);
    if head_fields.len() < 2 {
        return Err(MeasureError::InvalidEnvironment {
            reason: "CSV header needs at least one machine column".into(),
        });
    }
    let machine_names: Vec<String> = head_fields[1..].to_vec();
    let mut task_names = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let fields = split_line(line);
        if fields.len() != machine_names.len() + 1 {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!(
                    "CSV row {} has {} fields, expected {}",
                    lineno + 2,
                    fields.len(),
                    machine_names.len() + 1
                ),
            });
        }
        task_names.push(fields[0].clone());
        let mut row = Vec::with_capacity(machine_names.len());
        for f in &fields[1..] {
            let v = match f.trim() {
                "inf" | "Inf" | "INF" | "+inf" => f64::INFINITY,
                other => other
                    .parse::<f64>()
                    .map_err(|_| MeasureError::InvalidEnvironment {
                        reason: format!("CSV row {}: bad number {other:?}", lineno + 2),
                    })?,
            };
            row.push(v);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(MeasureError::InvalidEnvironment {
            reason: "CSV has no data rows".into(),
        });
    }
    let t = rows.len();
    let m = machine_names.len();
    let matrix = Matrix::from_fn(t, m, |i, j| rows[i][j]);
    Etc::with_names(matrix, task_names, machine_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::cint2006;

    #[test]
    fn round_trip_cint() {
        let d = cint2006();
        let text = to_csv(&d.etc);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.task_names(), d.etc.task_names());
        assert_eq!(back.machine_names(), d.etc.machine_names());
        assert!(back.matrix().max_abs_diff(d.etc.matrix()) < 1e-9);
    }

    #[test]
    fn round_trip_with_infinity() {
        let etc = Etc::with_names(
            Matrix::from_rows(&[&[1.5, f64::INFINITY], &[2.0, 3.0]]).unwrap(),
            vec!["a".into(), "b".into()],
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        let back = from_csv(&to_csv(&etc)).unwrap();
        assert!(back.matrix()[(0, 1)].is_infinite());
        assert_eq!(back.matrix()[(1, 1)], 3.0);
    }

    #[test]
    fn quoted_labels() {
        let etc = Etc::with_names(
            Matrix::from_rows(&[&[1.0, 2.0]]).unwrap(),
            vec!["task, with comma".into()],
            vec!["machine \"A\"".into(), "m2".into()],
        )
        .unwrap();
        let text = to_csv(&etc);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.task_names()[0], "task, with comma");
        assert_eq!(back.machine_names()[0], "machine \"A\"");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_csv("").is_err());
        assert!(from_csv("task\n").is_err());
        assert!(from_csv("task,m1\n").is_err());
        assert!(from_csv("task,m1\nt1,1.0,2.0\n").is_err());
        assert!(from_csv("task,m1\nt1,abc\n").is_err());
        // Structural validity enforced (zero runtime is invalid).
        assert!(from_csv("task,m1\nt1,0.0\n").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let back = from_csv("task,m1,m2\n\nt1,1.0,2.0\n\n").unwrap();
        assert_eq!(back.num_tasks(), 1);
        assert_eq!(back.num_machines(), 2);
    }
}
