//! The paper's Figure 8: two 2×2 ETC matrices extracted from the SPEC data, with
//! near-identical MPH but wildly different TMA.
//!
//! Reconstruction: we synthesize each 2×2 exactly from its reported measures with
//! [`hc_gen::synth2x2`], then scale to runtime magnitudes and attach the paper's
//! labels. Reported values:
//!
//! * (a) `{471.omnetpp, 436.cactusADM} × {m4, m5}`: TDH = 0.16, MPH = 0.31,
//!   TMA = 0.05.
//! * (b) `{436.cactusADM, 450.soplex} × {m1, m4}`: TMA = 0.60, MPH ≈ 0.31 ("the
//!   two matrices are almost identical in terms of machine performance
//!   homogeneity"); the printed TDH is illegible in our source and is set to 0.05
//!   (strongly heterogeneous task difficulties, matching the prose).

use hc_core::ecs::{Ecs, Etc};
use hc_core::error::MeasureError;
use hc_gen::targeted::synth2x2;

/// Reported measures for a Fig. 8 pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Targets {
    /// Task difficulty homogeneity.
    pub tdh: f64,
    /// Machine performance homogeneity.
    pub mph: f64,
    /// Task-machine affinity.
    pub tma: f64,
}

/// Reported values for Fig. 8(a).
pub const FIG8A_TARGETS: Fig8Targets = Fig8Targets {
    tdh: 0.16,
    mph: 0.31,
    tma: 0.05,
};

/// Values for Fig. 8(b) (TDH reconstructed; see module docs).
pub const FIG8B_TARGETS: Fig8Targets = Fig8Targets {
    tdh: 0.05,
    mph: 0.31,
    tma: 0.60,
};

fn build(
    targets: Fig8Targets,
    tasks: [&str; 2],
    machines: [&str; 2],
    scale_s: f64,
) -> Result<Etc, MeasureError> {
    let ecs: Ecs = synth2x2(targets.mph, targets.tdh, targets.tma)?;
    let etc_raw = ecs.matrix().map(|v| 1.0 / v);
    let mean = etc_raw.total_sum() / 4.0;
    Etc::with_names(
        etc_raw.scaled(scale_s / mean),
        tasks.iter().map(|s| s.to_string()).collect(),
        machines.iter().map(|s| s.to_string()).collect(),
    )
}

/// Figure 8(a): `{471.omnetpp, 436.cactusADM} × {m4, m5}` with low affinity.
pub fn fig8a() -> Etc {
    build(
        FIG8A_TARGETS,
        ["471.omnetpp", "436.cactusADM"],
        ["m4", "m5"],
        600.0,
    )
    .expect("static construction")
}

/// Figure 8(b): `{436.cactusADM, 450.soplex} × {m1, m4}` with high affinity.
pub fn fig8b() -> Etc {
    build(
        FIG8B_TARGETS,
        ["436.cactusADM", "450.soplex"],
        ["m1", "m4"],
        600.0,
    )
    .expect("static construction")
}

/// The corresponding submatrices **of the synthetic full datasets** — an honesty
/// check reported alongside the exact reconstructions: our calibration matches
/// the paper's *full-matrix* measures, so these 2×2 cut-outs carry the synthetic
/// noise realization, not the real data's local structure (see DESIGN.md §3).
///
/// Returns `((a_env, a_names), (b_env, b_names))` where each env is the 2×2 ECS
/// cut from the synthetic CINT/CFP matrices at the paper's named cells.
pub fn synthetic_submatrices() -> Result<(Ecs, Ecs), MeasureError> {
    let cint = crate::dataset::cint2006();
    let cfp = crate::dataset::cfp2006();
    let find = |names: &[String], needle: &str| -> usize {
        names
            .iter()
            .position(|n| n == needle)
            .expect("benchmark names are fixed")
    };
    // (a): {omnetpp (CINT), cactusADM (CFP)} × {m4, m5}. The two tasks live in
    // different suites; the paper evidently mixed rows across the two tables, so
    // we do the same: build a 2×2 from the CINT omnetpp row and the CFP
    // cactusADM row restricted to machines m4, m5.
    let cint_ecs = cint.ecs();
    let cfp_ecs = cfp.ecs();
    let om = find(cint.etc.task_names(), "471.omnetpp");
    let ca = find(cfp.etc.task_names(), "436.cactusADM");
    let so = find(cfp.etc.task_names(), "450.soplex");
    let a = Ecs::with_names(
        hc_linalg::Matrix::from_rows(&[
            &[cint_ecs.get(om, 3), cint_ecs.get(om, 4)],
            &[cfp_ecs.get(ca, 3), cfp_ecs.get(ca, 4)],
        ])?,
        vec!["471.omnetpp".into(), "436.cactusADM".into()],
        vec!["m4".into(), "m5".into()],
    )?;
    let b = Ecs::with_names(
        hc_linalg::Matrix::from_rows(&[
            &[cfp_ecs.get(ca, 0), cfp_ecs.get(ca, 3)],
            &[cfp_ecs.get(so, 0), cfp_ecs.get(so, 3)],
        ])?,
        vec!["436.cactusADM".into(), "450.soplex".into()],
        vec!["m1".into(), "m4".into()],
    )?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::measures::{mph, tdh};
    use hc_core::standard::tma;

    #[test]
    fn fig8a_measures() {
        let e = fig8a().to_ecs();
        assert!((tdh(&e).unwrap() - 0.16).abs() < 1e-6);
        assert!((mph(&e).unwrap() - 0.31).abs() < 1e-6);
        assert!((tma(&e).unwrap() - 0.05).abs() < 1e-5);
    }

    #[test]
    fn fig8b_measures() {
        let e = fig8b().to_ecs();
        assert!((mph(&e).unwrap() - 0.31).abs() < 1e-6);
        assert!((tma(&e).unwrap() - 0.60).abs() < 1e-5);
    }

    #[test]
    fn paper_comparison_holds() {
        // Near-identical MPH, wildly different TMA — the figure's whole point.
        let a = fig8a().to_ecs();
        let b = fig8b().to_ecs();
        assert!((mph(&a).unwrap() - mph(&b).unwrap()).abs() < 1e-6);
        assert!(tma(&b).unwrap() > 10.0 * tma(&a).unwrap());
    }

    #[test]
    fn synthetic_submatrices_are_valid_2x2_envs() {
        let (a, b) = synthetic_submatrices().unwrap();
        assert_eq!(a.num_tasks(), 2);
        assert_eq!(a.num_machines(), 2);
        assert_eq!(b.task_names()[1], "450.soplex");
        // Measures compute and land in range (no claim they match Fig. 8 —
        // the synthetic noise realization differs from the real data's).
        for e in [&a, &b] {
            let t = tma(e).unwrap();
            assert!((0.0..=1.0).contains(&t));
            assert!(mph(e).unwrap() > 0.0);
            assert!(tdh(e).unwrap() > 0.0);
        }
    }

    #[test]
    fn labels_match_paper() {
        let a = fig8a();
        assert_eq!(a.task_names(), &["471.omnetpp", "436.cactusADM"]);
        assert_eq!(a.machine_names(), &["m4", "m5"]);
        let b = fig8b();
        assert_eq!(b.task_names(), &["436.cactusADM", "450.soplex"]);
        assert_eq!(b.machine_names(), &["m1", "m4"]);
    }
}
