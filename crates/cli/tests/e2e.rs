//! End-to-end tests driving the compiled `hcm` binary through real process
//! invocations, pipes, and temp files.

use std::process::Command;

fn hcm(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hcm"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_and_errors() {
    let (ok, stdout, _) = hcm(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    let (ok, _, stderr) = hcm(&["bogus-command"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = hcm(&["measure", "/nonexistent/file.csv"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn spec_measure_pipeline_via_files() {
    let dir = std::env::temp_dir().join(format!("hcm-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("cint.csv");

    // 1. Dump the built-in dataset.
    let (ok, csv, _) = hcm(&["spec", "cint"]);
    assert!(ok);
    assert!(csv.starts_with("task,m1"));
    std::fs::write(&csv_path, &csv).unwrap();

    // 2. Measure it from disk: the paper's Fig. 6 values.
    let (ok, report, _) = hcm(&["measure", csv_path.to_str().unwrap()]);
    assert!(ok, "{report}");
    assert!(report.contains("MPH = 0.82"), "{report}");
    assert!(report.contains("TDH = 0.90"), "{report}");
    assert!(report.contains("TMA = 0.07"), "{report}");

    // 3. Structure and canonical reports run on the same file.
    let (ok, s, _) = hcm(&["structure", csv_path.to_str().unwrap()]);
    assert!(ok);
    assert!(s.contains("balanceability: Positive"));
    let (ok, c, _) = hcm(&["canonical", csv_path.to_str().unwrap()]);
    assert!(ok);
    assert!(c.contains("canonical machine order"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_usage_and_arg_parsing() {
    // Usage text documents the daemon.
    let (ok, stdout, _) = hcm(&["help"]);
    assert!(ok);
    assert!(stdout.contains("hcm serve"), "{stdout}");
    assert!(stdout.contains("--queue-depth"), "{stdout}");
    assert!(stdout.contains("Retry-After"), "{stdout}");

    // --dry-run resolves and echoes the configuration without binding.
    let (ok, stdout, _) = hcm(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "3",
        "--queue-depth",
        "7",
        "--cache-entries",
        "11",
        "--dry-run",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("workers        3"), "{stdout}");
    assert!(stdout.contains("queue-depth    7"), "{stdout}");
    assert!(stdout.contains("cache-entries  11"), "{stdout}");

    // Bad flag values fail loudly before any socket work.
    let (ok, _, stderr) = hcm(&["serve", "--workers", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--workers"), "{stderr}");
    let (ok, _, stderr) = hcm(&["serve", "--addr", "not-an-address"]);
    assert!(!ok);
    assert!(stderr.contains("--addr"), "{stderr}");
    let (ok, _, stderr) = hcm(&["serve", "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("frobnicate"), "{stderr}");
    let (ok, _, stderr) = hcm(&["serve", "stray-positional"]);
    assert!(!ok);
    assert!(stderr.contains("positional"), "{stderr}");
}

#[test]
fn serve_smoke_over_real_process() {
    use std::io::{BufRead, BufReader, Read, Write};

    // Start the daemon on an ephemeral port and learn the port from its
    // startup banner on stderr.
    let mut child = Command::new(env!("CARGO_BIN_EXE_hcm"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn hcm serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let banner = lines.next().expect("banner line").expect("banner readable");
    let addr = banner
        .split("http://")
        .nth(1)
        .expect("address in banner")
        .trim()
        .to_string();

    let request = |verb: &str, target: &str, body: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        s.write_all(
            format!(
                "{verb} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        String::from_utf8_lossy(&out).into_owned()
    };

    let csv = "task,m1,m2\nt1,2.0,8.0\nt2,6.0,3.0\n";
    let measured = request("POST", "/measure", csv);
    assert!(measured.starts_with("HTTP/1.1 200"), "{measured}");
    assert!(measured.contains("\"mph\":"), "{measured}");

    let metrics = request("GET", "/metrics", "");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    assert!(metrics.contains("\"measure\""), "{metrics}");

    // Graceful shutdown via the admin endpoint; the process must exit 0.
    let quit = request("GET", "/quitquitquit", "");
    assert!(quit.starts_with("HTTP/1.1 200"), "{quit}");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "{status:?}");
}

#[test]
fn generate_schedule_simulate_pipeline() {
    let dir = std::env::temp_dir().join(format!("hcm-e2e-gen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.csv");

    let (ok, csv, _) = hcm(&[
        "generate",
        "targeted",
        "--tasks",
        "8",
        "--machines",
        "4",
        "--mph",
        "0.7",
        "--tdh",
        "0.6",
        "--tma",
        "0.2",
        "--seed",
        "5",
    ]);
    assert!(ok);
    std::fs::write(&path, &csv).unwrap();

    let (ok, sched, _) = hcm(&["schedule", path.to_str().unwrap()]);
    assert!(ok, "{sched}");
    assert!(sched.contains("Min-Min"));
    assert!(sched.contains("Duplex"));
    assert!(sched.contains("best:"));

    let (ok, tabu, _) = hcm(&["schedule", path.to_str().unwrap(), "--heuristic", "tabu"]);
    assert!(ok, "{tabu}");
    assert!(tabu.contains("Tabu"));

    let (ok, sim, _) = hcm(&[
        "simulate",
        path.to_str().unwrap(),
        "--tasks",
        "100",
        "--policy",
        "mct",
    ]);
    assert!(ok, "{sim}");
    assert!(sim.contains("makespan"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn top_once_renders_dashboard_against_live_server() {
    use std::io::{Read, Write};

    // A real in-process server with the TSDB on (the default).
    let handle = hc_serve::start(hc_serve::Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        cache_entries: 16,
        ..hc_serve::Config::default()
    })
    .expect("server starts");
    let addr = handle.local_addr();

    // Some traffic plus one deterministic collection tick so the dashboard
    // has numbers to show without waiting out the 1 Hz collector.
    let body = "task,m1,m2\nt1,2.0,8.0\nt2,6.0,3.0\n";
    for _ in 0..3 {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let req = format!(
            "POST /measure HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200"));
    }
    hc_serve::collector::collect_once(handle.state());

    let (ok, frame, stderr) = hcm(&["top", "--once", "--addr", &addr.to_string()]);
    assert!(ok, "hcm top --once failed: {stderr}");
    assert!(frame.starts_with("hcm top —"), "{frame}");
    assert!(frame.contains(&addr.to_string()), "{frame}");
    assert!(frame.contains("health ok"), "{frame}");
    assert!(frame.contains("overload ok"), "{frame}");
    for label in [
        "req/s",
        "err/s",
        "p50 us",
        "p99 us",
        "cache hit",
        "workers",
        "slo burn",
    ] {
        assert!(frame.contains(label), "{label} missing from frame: {frame}");
    }
    // The collected tick put a real per-second point in every gauge, so at
    // least one sparkline glyph renders.
    assert!(
        frame
            .chars()
            .any(|c| ('\u{2581}'..='\u{2588}').contains(&c)),
        "no sparkline glyphs: {frame}"
    );

    // Against a dead address the command fails cleanly instead of hanging.
    let (ok, _, stderr) = hcm(&["top", "--once", "--addr", "127.0.0.1:1"]);
    assert!(!ok);
    assert!(stderr.contains("hcm:"), "{stderr}");

    handle.shutdown();
    handle.join();
}
