//! End-to-end tests driving the compiled `hcm` binary through real process
//! invocations, pipes, and temp files.

use std::process::Command;

fn hcm(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hcm"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_and_errors() {
    let (ok, stdout, _) = hcm(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    let (ok, _, stderr) = hcm(&["bogus-command"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = hcm(&["measure", "/nonexistent/file.csv"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn spec_measure_pipeline_via_files() {
    let dir = std::env::temp_dir().join(format!("hcm-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("cint.csv");

    // 1. Dump the built-in dataset.
    let (ok, csv, _) = hcm(&["spec", "cint"]);
    assert!(ok);
    assert!(csv.starts_with("task,m1"));
    std::fs::write(&csv_path, &csv).unwrap();

    // 2. Measure it from disk: the paper's Fig. 6 values.
    let (ok, report, _) = hcm(&["measure", csv_path.to_str().unwrap()]);
    assert!(ok, "{report}");
    assert!(report.contains("MPH = 0.82"), "{report}");
    assert!(report.contains("TDH = 0.90"), "{report}");
    assert!(report.contains("TMA = 0.07"), "{report}");

    // 3. Structure and canonical reports run on the same file.
    let (ok, s, _) = hcm(&["structure", csv_path.to_str().unwrap()]);
    assert!(ok);
    assert!(s.contains("balanceability: Positive"));
    let (ok, c, _) = hcm(&["canonical", csv_path.to_str().unwrap()]);
    assert!(ok);
    assert!(c.contains("canonical machine order"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_schedule_simulate_pipeline() {
    let dir = std::env::temp_dir().join(format!("hcm-e2e-gen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.csv");

    let (ok, csv, _) = hcm(&[
        "generate", "targeted", "--tasks", "8", "--machines", "4", "--mph", "0.7", "--tdh",
        "0.6", "--tma", "0.2", "--seed", "5",
    ]);
    assert!(ok);
    std::fs::write(&path, &csv).unwrap();

    let (ok, sched, _) = hcm(&["schedule", path.to_str().unwrap()]);
    assert!(ok, "{sched}");
    assert!(sched.contains("Min-Min"));
    assert!(sched.contains("Duplex"));
    assert!(sched.contains("best:"));

    let (ok, tabu, _) = hcm(&["schedule", path.to_str().unwrap(), "--heuristic", "tabu"]);
    assert!(ok, "{tabu}");
    assert!(tabu.contains("Tabu"));

    let (ok, sim, _) = hcm(&[
        "simulate",
        path.to_str().unwrap(),
        "--tasks",
        "100",
        "--policy",
        "mct",
    ]);
    assert!(ok, "{sim}");
    assert!(sim.contains("makespan"));

    std::fs::remove_dir_all(&dir).ok();
}
