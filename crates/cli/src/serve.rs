//! Argument parsing for `hcm serve`, kept separate from `commands` because
//! serving is the one subcommand that is not a pure `(args, input) → report`
//! function: it binds a socket and blocks. Parsing and validation stay pure
//! (and unit-tested here); `main.rs` owns the blocking run.

use std::net::ToSocketAddrs;

use crate::args::Args;
use hc_serve::Config;

/// Parses `hcm serve` arguments into a server [`Config`].
///
/// Returns the config plus whether `--dry-run` was given (print the resolved
/// configuration and exit instead of binding — this is what makes the flag
/// surface end-to-end testable without occupying a port).
pub fn parse_config(args: &Args) -> Result<(Config, bool), String> {
    if args.positional(0) != Some("serve") {
        return Err("serve::parse_config expects the serve subcommand".to_string());
    }
    if args.positional_count() > 1 {
        return Err(format!(
            "serve takes no positional arguments, got {:?}",
            args.positional(1).unwrap_or_default()
        ));
    }
    args.check_allowed(&[
        "addr",
        "workers",
        "queue-depth",
        "cache-entries",
        "slow-ms",
        "request-timeout-ms",
        "max-cells",
        "record-requests",
        "record-survivors",
        "max-sessions",
        "session-ttl-s",
        "profile-hz",
        "slo-availability",
        "slo-latency-ms",
        "slo-window-s",
        "max-requests-per-conn",
        "idle-conn-timeout-ms",
        "target-queue-delay-ms",
        "workers-min",
        "workers-max",
        "tsdb-retention-s",
        "tsdb-off",
        "dry-run",
    ])?;

    let mut cfg = Config::default();
    if let Some(addr) = args.get("addr") {
        // Resolve eagerly so a typo fails at the flag, not at bind time.
        let resolves = addr
            .to_socket_addrs()
            .map(|mut it| it.next().is_some())
            .unwrap_or(false);
        if !resolves {
            return Err(format!(
                "--addr {addr:?} is not a valid <host>:<port> address"
            ));
        }
        cfg.addr = addr.to_string();
    }
    cfg.workers = args.get_or("workers", cfg.workers)?;
    if cfg.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    cfg.queue_depth = args.get_or("queue-depth", cfg.queue_depth)?;
    if cfg.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".to_string());
    }
    cfg.cache_entries = args.get_or("cache-entries", cfg.cache_entries)?;
    cfg.slow_ms = args.get_or("slow-ms", cfg.slow_ms)?;
    cfg.request_timeout_ms = args.get_or("request-timeout-ms", cfg.request_timeout_ms)?;
    cfg.max_cells = args.get_or("max-cells", cfg.max_cells)?;
    if cfg.max_cells == 0 {
        return Err("--max-cells must be at least 1".to_string());
    }
    cfg.record_requests = args.get_or("record-requests", cfg.record_requests)?;
    cfg.record_survivors = args.get_or("record-survivors", cfg.record_survivors)?;
    cfg.max_sessions = args.get_or("max-sessions", cfg.max_sessions)?;
    if cfg.max_sessions == 0 {
        return Err("--max-sessions must be at least 1".to_string());
    }
    cfg.session_ttl_s = args.get_or("session-ttl-s", cfg.session_ttl_s)?;
    if cfg.session_ttl_s == 0 {
        return Err("--session-ttl-s must be at least 1".to_string());
    }
    // 0 is valid: it disables profiling (and GET /debug/profile).
    cfg.profile_hz = args.get_or("profile-hz", cfg.profile_hz)?;
    cfg.slo_availability = args.get_or("slo-availability", cfg.slo_availability)?;
    if !(cfg.slo_availability > 0.0 && cfg.slo_availability < 1.0) {
        return Err(format!(
            "--slo-availability must be strictly between 0 and 1, got {}",
            cfg.slo_availability
        ));
    }
    // 0 is valid: it disables the latency objective.
    cfg.slo_latency_ms = args.get_or("slo-latency-ms", cfg.slo_latency_ms)?;
    cfg.slo_window_s = args.get_or("slo-window-s", cfg.slo_window_s)?;
    if cfg.slo_window_s == 0 {
        return Err("--slo-window-s must be at least 1".to_string());
    }
    // 0 is valid for both: unlimited requests per connection / never reap
    // idle keep-alive connections.
    cfg.max_requests_per_conn = args.get_or("max-requests-per-conn", cfg.max_requests_per_conn)?;
    cfg.idle_conn_timeout_ms = args.get_or("idle-conn-timeout-ms", cfg.idle_conn_timeout_ms)?;
    // 0 is valid: it disables adaptive admission, leaving the fixed
    // --queue-depth cutoff as the only shed (the legacy comparison mode).
    cfg.target_queue_delay_ms = args.get_or("target-queue-delay-ms", cfg.target_queue_delay_ms)?;
    // 0 for either bound means "same as --workers"; a max above the min turns
    // autoscaling on.
    cfg.workers_min = args.get_or("workers-min", cfg.workers_min)?;
    cfg.workers_max = args.get_or("workers-max", cfg.workers_max)?;
    let (lo, hi) = (
        if cfg.workers_min == 0 {
            cfg.workers
        } else {
            cfg.workers_min
        },
        if cfg.workers_max == 0 {
            cfg.workers
        } else {
            cfg.workers_max
        },
    );
    if hi < lo {
        return Err(format!(
            "--workers-max {hi} is below the effective --workers-min {lo}"
        ));
    }
    cfg.tsdb_retention_s = args.get_or("tsdb-retention-s", cfg.tsdb_retention_s)?;
    if cfg.tsdb_retention_s == 0 {
        return Err(
            "--tsdb-retention-s must be at least 1 (use --tsdb-off to disable the store)"
                .to_string(),
        );
    }
    cfg.tsdb_off = args.has("tsdb-off");
    Ok((cfg, args.has("dry-run")))
}

/// Human-readable resolved configuration (the `--dry-run` output).
pub fn describe(cfg: &Config) -> String {
    format!(
        "serve configuration:\n\
        \x20 addr           {}\n\
        \x20 workers        {}\n\
        \x20 queue-depth    {}\n\
        \x20 cache-entries  {}\n\
        \x20 max-body-bytes {}\n\
        \x20 max-cells      {}\n\
        \x20 slow-ms        {}\n\
        \x20 request-timeout-ms {}\n\
        \x20 record-requests {}\n\
        \x20 record-survivors {}\n\
        \x20 max-sessions   {}\n\
        \x20 session-ttl-s  {}\n\
        \x20 profile-hz     {}\n\
        \x20 slo-availability {}\n\
        \x20 slo-latency-ms {}\n\
        \x20 slo-window-s   {}\n\
        \x20 max-requests-per-conn {}\n\
        \x20 idle-conn-timeout-ms {}\n\
        \x20 target-queue-delay-ms {}\n\
        \x20 workers-min    {}\n\
        \x20 workers-max    {}\n\
        \x20 tsdb-retention-s {}\n",
        cfg.addr,
        cfg.workers,
        cfg.queue_depth,
        cfg.cache_entries,
        cfg.max_body_bytes,
        cfg.max_cells,
        if cfg.slow_ms == 0 {
            "off".to_string()
        } else {
            cfg.slow_ms.to_string()
        },
        if cfg.request_timeout_ms == 0 {
            "off".to_string()
        } else {
            cfg.request_timeout_ms.to_string()
        },
        if cfg.record_requests == 0 {
            "off".to_string()
        } else {
            cfg.record_requests.to_string()
        },
        cfg.record_survivors,
        cfg.max_sessions,
        cfg.session_ttl_s,
        if cfg.profile_hz == 0 {
            "off".to_string()
        } else {
            cfg.profile_hz.to_string()
        },
        cfg.slo_availability,
        if cfg.slo_latency_ms == 0 {
            "off".to_string()
        } else {
            cfg.slo_latency_ms.to_string()
        },
        cfg.slo_window_s,
        if cfg.max_requests_per_conn == 0 {
            "unlimited".to_string()
        } else {
            cfg.max_requests_per_conn.to_string()
        },
        if cfg.idle_conn_timeout_ms == 0 {
            "off".to_string()
        } else {
            cfg.idle_conn_timeout_ms.to_string()
        },
        if cfg.target_queue_delay_ms == 0 {
            "off (fixed queue-depth only)".to_string()
        } else {
            cfg.target_queue_delay_ms.to_string()
        },
        cfg.worker_bounds().0,
        cfg.worker_bounds().1,
        if cfg.tsdb_off {
            "off".to_string()
        } else {
            cfg.tsdb_retention_s.to_string()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn cfg_of(argv: &[&str]) -> Result<(Config, bool), String> {
        let raw: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        parse_config(&parse(&raw))
    }

    #[test]
    fn defaults_and_overrides() {
        let (cfg, dry) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7878");
        assert!(cfg.workers >= 1);
        assert!(!dry);

        let (cfg, dry) = cfg_of(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-depth",
            "5",
            "--cache-entries",
            "9",
            "--dry-run",
        ])
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_depth, 5);
        assert_eq!(cfg.cache_entries, 9);
        assert!(dry);
    }

    #[test]
    fn slow_ms_flag() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.slow_ms, 0);
        let (cfg, _) = cfg_of(&["serve", "--slow-ms", "250"]).unwrap();
        assert_eq!(cfg.slow_ms, 250);
        assert!(cfg_of(&["serve", "--slow-ms", "soon"]).is_err());
    }

    #[test]
    fn fault_containment_flags() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.request_timeout_ms, 0);
        assert_eq!(cfg.max_cells, 4_000_000);
        let (cfg, _) = cfg_of(&[
            "serve",
            "--request-timeout-ms",
            "2500",
            "--max-cells",
            "1000000",
        ])
        .unwrap();
        assert_eq!(cfg.request_timeout_ms, 2500);
        assert_eq!(cfg.max_cells, 1_000_000);
        assert!(cfg_of(&["serve", "--max-cells", "0"]).is_err());
        assert!(cfg_of(&["serve", "--request-timeout-ms", "soon"]).is_err());
    }

    #[test]
    fn flight_recorder_flags() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.record_requests, 256);
        assert_eq!(cfg.record_survivors, 64);
        let (cfg, _) = cfg_of(&[
            "serve",
            "--record-requests",
            "32",
            "--record-survivors",
            "8",
        ])
        .unwrap();
        assert_eq!(cfg.record_requests, 32);
        assert_eq!(cfg.record_survivors, 8);
        // 0 disables recording entirely — a valid operating point.
        let (cfg, _) = cfg_of(&["serve", "--record-requests", "0"]).unwrap();
        assert_eq!(cfg.record_requests, 0);
        assert!(cfg_of(&["serve", "--record-requests", "many"]).is_err());
    }

    #[test]
    fn session_flags() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.max_sessions, 64);
        assert_eq!(cfg.session_ttl_s, 900);
        let (cfg, _) = cfg_of(&["serve", "--max-sessions", "8", "--session-ttl-s", "60"]).unwrap();
        assert_eq!(cfg.max_sessions, 8);
        assert_eq!(cfg.session_ttl_s, 60);
        assert!(cfg_of(&["serve", "--max-sessions", "0"]).is_err());
        assert!(cfg_of(&["serve", "--session-ttl-s", "0"]).is_err());
        assert!(cfg_of(&["serve", "--session-ttl-s", "forever"]).is_err());
    }

    #[test]
    fn profiler_and_slo_flags() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.profile_hz, 99);
        assert_eq!(cfg.slo_availability, 0.999);
        assert_eq!(cfg.slo_latency_ms, 0);
        assert_eq!(cfg.slo_window_s, 60);
        let (cfg, _) = cfg_of(&[
            "serve",
            "--profile-hz",
            "199",
            "--slo-availability",
            "0.99",
            "--slo-latency-ms",
            "250",
            "--slo-window-s",
            "5",
        ])
        .unwrap();
        assert_eq!(cfg.profile_hz, 199);
        assert_eq!(cfg.slo_availability, 0.99);
        assert_eq!(cfg.slo_latency_ms, 250);
        assert_eq!(cfg.slo_window_s, 5);
        // 0 disables profiling (and /debug/profile) — a valid operating point.
        let (cfg, _) = cfg_of(&["serve", "--profile-hz", "0"]).unwrap();
        assert_eq!(cfg.profile_hz, 0);
        assert!(cfg_of(&["serve", "--slo-availability", "0"]).is_err());
        assert!(cfg_of(&["serve", "--slo-availability", "1"]).is_err());
        assert!(cfg_of(&["serve", "--slo-availability", "nine-nines"]).is_err());
        assert!(cfg_of(&["serve", "--slo-window-s", "0"]).is_err());
        assert!(cfg_of(&["serve", "--profile-hz", "fast"]).is_err());
    }

    #[test]
    fn connection_flags() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.max_requests_per_conn, 1024);
        assert_eq!(cfg.idle_conn_timeout_ms, 30_000);
        let (cfg, _) = cfg_of(&[
            "serve",
            "--max-requests-per-conn",
            "16",
            "--idle-conn-timeout-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(cfg.max_requests_per_conn, 16);
        assert_eq!(cfg.idle_conn_timeout_ms, 500);
        // 0 is valid for both: unlimited reuse / never reap idle connections.
        let (cfg, _) = cfg_of(&[
            "serve",
            "--max-requests-per-conn",
            "0",
            "--idle-conn-timeout-ms",
            "0",
        ])
        .unwrap();
        assert_eq!(cfg.max_requests_per_conn, 0);
        assert_eq!(cfg.idle_conn_timeout_ms, 0);
        assert!(cfg_of(&["serve", "--max-requests-per-conn", "lots"]).is_err());
        assert!(cfg_of(&["serve", "--idle-conn-timeout-ms", "soon"]).is_err());
    }

    #[test]
    fn overload_flags() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.target_queue_delay_ms, 100);
        assert_eq!(cfg.workers_min, 0);
        assert_eq!(cfg.workers_max, 0);
        // Defaults: bounds collapse to --workers, autoscaling off.
        assert_eq!(cfg.worker_bounds(), (cfg.workers, cfg.workers));

        let (cfg, _) = cfg_of(&[
            "serve",
            "--workers",
            "2",
            "--target-queue-delay-ms",
            "25",
            "--workers-min",
            "1",
            "--workers-max",
            "8",
        ])
        .unwrap();
        assert_eq!(cfg.target_queue_delay_ms, 25);
        assert_eq!(cfg.worker_bounds(), (1, 8));
        // 0 disables adaptive admission (legacy fixed-depth comparison mode).
        let (cfg, _) = cfg_of(&["serve", "--target-queue-delay-ms", "0"]).unwrap();
        assert_eq!(cfg.target_queue_delay_ms, 0);
        // A max-only bound scales up from --workers.
        let (cfg, _) = cfg_of(&["serve", "--workers", "2", "--workers-max", "6"]).unwrap();
        assert_eq!(cfg.worker_bounds(), (2, 6));
        // Inverted bounds are a flag error, not a runtime surprise.
        assert!(cfg_of(&["serve", "--workers", "4", "--workers-max", "2"]).is_err());
        assert!(cfg_of(&["serve", "--workers-min", "8", "--workers-max", "2"]).is_err());
        assert!(cfg_of(&["serve", "--target-queue-delay-ms", "soon"]).is_err());
        assert!(cfg_of(&["serve", "--workers-max", "lots"]).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(cfg_of(&["serve", "--workers", "0"]).is_err());
        assert!(cfg_of(&["serve", "--queue-depth", "0"]).is_err());
        assert!(cfg_of(&["serve", "--workers", "abc"]).is_err());
        assert!(cfg_of(&["serve", "--addr", "not-an-address"]).is_err());
        assert!(cfg_of(&["serve", "--frobnicate"]).is_err());
        assert!(cfg_of(&["serve", "extra.csv"]).is_err());
    }

    #[test]
    fn describe_lists_every_knob() {
        let (cfg, _) = cfg_of(&["serve", "--workers", "3"]).unwrap();
        let d = describe(&cfg);
        assert!(d.contains("workers        3"), "{d}");
        assert!(d.contains("addr"));
        assert!(d.contains("queue-depth"));
        assert!(d.contains("cache-entries"));
        assert!(d.contains("slow-ms        off"), "{d}");
        assert!(d.contains("request-timeout-ms off"), "{d}");
        assert!(d.contains("max-cells      4000000"), "{d}");
        assert!(d.contains("record-requests 256"), "{d}");
        assert!(d.contains("record-survivors 64"), "{d}");
        assert!(d.contains("max-sessions   64"), "{d}");
        assert!(d.contains("session-ttl-s  900"), "{d}");
        assert!(d.contains("profile-hz     99"), "{d}");
        assert!(d.contains("slo-availability 0.999"), "{d}");
        assert!(d.contains("slo-latency-ms off"), "{d}");
        assert!(d.contains("slo-window-s   60"), "{d}");
        assert!(d.contains("max-requests-per-conn 1024"), "{d}");
        assert!(d.contains("idle-conn-timeout-ms 30000"), "{d}");
        assert!(d.contains("target-queue-delay-ms 100"), "{d}");
        assert!(d.contains("workers-min    3"), "{d}");
        assert!(d.contains("workers-max    3"), "{d}");
        assert!(d.contains("tsdb-retention-s 86400"), "{d}");
    }

    #[test]
    fn tsdb_flags() {
        let (cfg, _) = cfg_of(&["serve"]).unwrap();
        assert_eq!(cfg.tsdb_retention_s, 86_400);
        assert!(!cfg.tsdb_off);

        let (cfg, _) = cfg_of(&["serve", "--tsdb-retention-s", "600"]).unwrap();
        assert_eq!(cfg.tsdb_retention_s, 600);
        assert!(describe(&cfg).contains("tsdb-retention-s 600"));

        let (cfg, _) = cfg_of(&["serve", "--tsdb-off"]).unwrap();
        assert!(cfg.tsdb_off);
        assert!(describe(&cfg).contains("tsdb-retention-s off"));

        // 0 retention is a flag error, not a silent clamp.
        assert!(cfg_of(&["serve", "--tsdb-retention-s", "0"]).is_err());
        assert!(cfg_of(&["serve", "--tsdb-retention-s", "forever"]).is_err());
    }
}
