//! `hcm` — heterogeneity measures for task-machine ETC matrices.

use hc_cli::commands::{dispatch, FsInput};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args, &FsInput) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hcm: {e}");
            ExitCode::FAILURE
        }
    }
}
