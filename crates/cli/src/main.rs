//! `hcm` — heterogeneity measures for task-machine ETC matrices.

use hc_cli::commands::{dispatch, FsInput};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The global observability flags apply to every subcommand and must be
    // live before any library code runs.
    if let Err(e) = hc_cli::obs::init_observability(&hc_cli::args::parse(&args)) {
        eprintln!("hcm: {e}");
        return ExitCode::FAILURE;
    }
    // `serve` blocks on a socket until shutdown, so it bypasses the pure
    // dispatch path every other subcommand uses.
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args);
    }
    // `top` drives sockets and a redraw loop, so it also bypasses dispatch.
    if args.first().map(String::as_str) == Some("top") {
        return run_top(&args);
    }
    match dispatch(&args, &FsInput) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hcm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_top(raw: &[String]) -> ExitCode {
    let parsed = hc_cli::args::parse(raw);
    let result = hc_cli::top::parse_config(&parsed).and_then(|cfg| hc_cli::top::run(&cfg));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hcm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_serve(raw: &[String]) -> ExitCode {
    let parsed = hc_cli::args::parse(raw);
    let (config, dry_run) = match hc_cli::serve::parse_config(&parsed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("hcm: {e}");
            return ExitCode::FAILURE;
        }
    };
    if dry_run {
        print!("{}", hc_cli::serve::describe(&config));
        return ExitCode::SUCCESS;
    }
    match hc_serve::start(config) {
        Ok(handle) => {
            eprintln!("hcm serve: listening on http://{}", handle.local_addr());
            eprintln!(
                "hcm serve: POST /measure /structure /generate /schedule /batch /session; \
                 GET /metrics /healthz /debug/profile; shutdown via SIGINT or GET /quitquitquit"
            );
            handle.join();
            eprintln!("hcm serve: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hcm: {e}");
            ExitCode::FAILURE
        }
    }
}
