//! The global observability flags, applied once by the binary before any
//! subcommand runs.
//!
//! Every subcommand accepts `--log-json <path>` (machine-readable JSON-lines
//! spans/events to a file), `--trace` (human-readable span tree on stderr),
//! and `--log-level <error|warn|info|debug|trace>`. With no sink installed the
//! library's span instrumentation stays disarmed and effectively free, so
//! these flags are strictly opt-in.

use crate::args::Args;

/// Applies `--log-json`, `--trace`, and `--log-level` from parsed arguments.
///
/// Flag parsing errors (bad level name, missing/uncreatable log path) are
/// returned as CLI-style messages; with none of the flags present this is a
/// no-op and no sink is installed.
pub fn init_observability(args: &Args) -> Result<(), String> {
    match args.get("log-level") {
        Some(raw) => {
            let level: hc_obs::Level = raw.parse().map_err(|e| format!("--log-level: {e}"))?;
            hc_obs::set_level(level);
        }
        None if args.has("log-level") => {
            return Err("--log-level needs a value: error|warn|info|debug|trace".to_string());
        }
        None => {}
    }
    if args.has("trace") {
        hc_obs::install_trace_sink();
    }
    match args.get("log-json") {
        Some(path) => {
            hc_obs::install_json_sink(path).map_err(|e| format!("--log-json {path}: {e}"))?;
        }
        None if args.has("log-json") => {
            return Err("--log-json needs a file path".to_string());
        }
        None => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn a(argv: &[&str]) -> Args {
        parse(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn no_flags_is_a_noop() {
        assert!(init_observability(&a(&["measure", "in.csv"])).is_ok());
    }

    #[test]
    fn bad_values_reported_as_flag_errors() {
        let err = init_observability(&a(&["--log-level", "shouting"])).unwrap_err();
        assert!(err.contains("--log-level"), "{err}");
        let err = init_observability(&a(&["--log-level"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = init_observability(&a(&["--log-json"])).unwrap_err();
        assert!(err.contains("file path"), "{err}");
        let err =
            init_observability(&a(&["--log-json", "/nonexistent-dir/x/y.jsonl"])).unwrap_err();
        assert!(err.contains("--log-json"), "{err}");
    }
}
