//! A tiny flag parser: `--key value` and `--flag` switches plus positional
//! arguments, with typed accessors. Hand-rolled so the tool stays dependency
//! free and the error messages stay domain-specific.

use std::collections::BTreeMap;

/// Parsed arguments: positionals in order plus `--key [value]` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, Option<String>>,
}

/// Parses a raw argument list. Every token starting with `--` becomes an option;
/// it consumes the following token as its value unless that token also starts
/// with `--` (then it is a bare switch). `--key=value` is also accepted.
pub fn parse(raw: &[String]) -> Args {
    let mut out = Args::default();
    let mut i = 0;
    while i < raw.len() {
        let tok = &raw[i];
        if let Some(stripped) = tok.strip_prefix("--") {
            if let Some((k, v)) = stripped.split_once('=') {
                out.options.insert(k.to_string(), Some(v.to_string()));
            } else if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                out.options
                    .insert(stripped.to_string(), Some(raw[i + 1].clone()));
                i += 1;
            } else {
                out.options.insert(stripped.to_string(), None);
            }
        } else {
            out.positionals.push(tok.clone());
        }
        i += 1;
    }
    out
}

impl Args {
    /// Positional argument by index.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positionals.get(idx).map(String::as_str)
    }

    /// Number of positionals.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// `true` when `--name` appeared (with or without value).
    pub fn has(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// String value of `--name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.as_deref())
    }

    /// Required typed value with a domain error message.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .get(name)
            .ok_or_else(|| format!("missing required option --{name}"))?;
        raw.parse::<T>()
            .map_err(|_| format!("--{name}: cannot parse {raw:?}"))
    }

    /// Optional typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
        }
    }

    /// Names of all options present (for unknown-flag checks).
    pub fn option_names(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }

    /// Rejects any option not in `allowed` or in [`GLOBAL_OPTIONS`].
    pub fn check_allowed(&self, allowed: &[&str]) -> Result<(), String> {
        for name in self.option_names() {
            if !allowed.contains(&name) && !GLOBAL_OPTIONS.contains(&name) {
                return Err(format!("unknown option --{name}"));
            }
        }
        Ok(())
    }
}

/// Options accepted by every subcommand: the observability flags
/// (`--log-json <path>`, `--trace`, `--log-level <level>`), applied once by
/// the binary before dispatch (see [`crate::obs::init_observability`]).
pub const GLOBAL_OPTIONS: &[&str] = &["log-json", "trace", "log-level"];

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&s(&["measure", "file.csv", "--ecs", "--tol", "1e-8"]));
        assert_eq!(a.positional(0), Some("measure"));
        assert_eq!(a.positional(1), Some("file.csv"));
        assert_eq!(a.positional_count(), 2);
        assert!(a.has("ecs"));
        assert_eq!(a.get("ecs"), None);
        assert_eq!(a.get("tol"), Some("1e-8"));
    }

    #[test]
    fn equals_syntax() {
        let a = parse(&s(&["--kpb=25", "--mph=0.5"]));
        assert_eq!(a.get("kpb"), Some("25"));
        let v: f64 = a.require("mph").unwrap();
        assert_eq!(v, 0.5);
    }

    #[test]
    fn switch_followed_by_option() {
        let a = parse(&s(&["--ecs", "--seed", "7"]));
        assert!(a.has("ecs"));
        assert_eq!(a.get("ecs"), None);
        let seed: u64 = a.require("seed").unwrap();
        assert_eq!(seed, 7);
    }

    #[test]
    fn typed_errors() {
        let a = parse(&s(&["--seed", "abc"]));
        assert!(a.require::<u64>("seed").is_err());
        assert!(a.require::<u64>("missing").is_err());
        assert_eq!(a.get_or("missing", 5u64).unwrap(), 5);
        assert!(a.get_or::<f64>("seed", 0.0).is_err());
    }

    #[test]
    fn allowed_check() {
        let a = parse(&s(&["--good", "1", "--bad", "2"]));
        assert!(a.check_allowed(&["good"]).is_err());
        assert!(a.check_allowed(&["good", "bad"]).is_ok());
    }

    #[test]
    fn global_options_allowed_everywhere() {
        let a = parse(&s(&[
            "--trace",
            "--log-level",
            "debug",
            "--log-json",
            "out.jsonl",
        ]));
        assert!(a.check_allowed(&[]).is_ok());
        let b = parse(&s(&["--trace", "--tracee"]));
        assert!(b.check_allowed(&[]).is_err());
    }
}
