//! # hc-cli — the `hcm` command-line tool
//!
//! A thin, dependency-free front-end over the library stack:
//!
//! ```text
//! hcm measure   <etc.csv>                  # MPH / TDH / TMA report
//! hcm structure <etc.csv>                  # zero-pattern & balanceability report
//! hcm canonical <etc.csv>                  # canonical (sorted) ordering
//! hcm generate  targeted --tasks 12 --machines 5 --mph 0.82 --tdh 0.9 --tma 0.07
//! hcm generate  range    --tasks 12 --machines 5 --rtask 3000 --rmach 1000
//! hcm generate  cvb      --tasks 12 --machines 5 --vtask 0.4 --vmach 0.6
//! hcm schedule  <etc.csv> [--heuristic min-min]
//! hcm whatif    <etc.csv> --remove-machine 2
//! hcm session   <etc.csv> [--edits edits.txt]  # warm-started incremental demo
//! hcm serve     --addr 127.0.0.1:7878        # HTTP daemon (see hc-serve)
//! hcm top       --addr 127.0.0.1:7878        # live dashboard over a daemon
//! ```
//!
//! Every command is a pure function from `(arguments, input text)` to a report
//! string, so the whole surface is unit-testable without touching the
//! filesystem; `main.rs` only does I/O.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;
pub mod obs;
pub mod serve;
pub mod top;

pub use commands::dispatch;

/// Top-level usage text.
pub fn usage() -> &'static str {
    "hcm — heterogeneity measures for task-machine ETC matrices (IPDPS 2011)\n\n\
     USAGE:\n\
    \x20 hcm measure   <etc.csv> [--ecs] [--zero-policy strict|limit|reg=<eps>]\n\
    \x20 hcm structure <etc.csv> [--ecs]\n\
    \x20 hcm canonical <etc.csv> [--ecs]\n\
    \x20 hcm generate  targeted --tasks T --machines M --mph X --tdh Y --tma Z\n\
    \x20                        [--seed N] [--jitter J]\n\
    \x20 hcm generate  range    --tasks T --machines M [--rtask R] [--rmach R] [--seed N]\n\
    \x20 hcm generate  cvb      --tasks T --machines M [--vtask V] [--vmach V] [--seed N]\n\
    \x20 hcm schedule  <etc.csv> [--heuristic all|olb|met|mct|min-min|max-min|\n\
    \x20                          sufferage|kpb=<pct>|duplex|ga|sa|tabu|optimal]\n\
    \x20 hcm whatif    <etc.csv> (--remove-machine J | --remove-task I) [--ecs]\n\
    \x20 hcm session   <etc.csv> [--edits <edits.txt>] [--ecs]\n\
    \x20 hcm serve     [--addr 127.0.0.1:7878] [--workers N] [--queue-depth Q]\n\
    \x20               [--cache-entries C] [--slow-ms MS] [--request-timeout-ms MS]\n\
    \x20               [--max-cells N] [--record-requests N] [--record-survivors N]\n\
    \x20               [--max-sessions N] [--session-ttl-s S] [--profile-hz HZ]\n\
    \x20               [--slo-availability F] [--slo-latency-ms MS]\n\
    \x20               [--slo-window-s S] [--tsdb-retention-s S] [--tsdb-off]\n\
    \x20               [--dry-run]\n\
    \x20 hcm top       [--addr 127.0.0.1:7878] [--once] [--interval-ms MS]\n\
    \x20               [--window-s S]\n\
    \x20 hcm help\n\n\
     Global flags (every subcommand, place after the input file):\n\
    \x20 --log-json <path>   write spans/events as JSON lines to <path>\n\
    \x20 --trace             print a human-readable span tree on stderr\n\
    \x20 --log-level <lvl>   error|warn|info|debug|trace (default info)\n\n\
     `hcm serve` runs an HTTP daemon exposing the analyses as POST /measure,\n\
     /structure, /generate, /schedule, and /batch (CSV bodies), with GET /metrics\n\
     for counters and latency histograms; requests beyond --queue-depth receive\n\
     503 + Retry-After, requests slower than --slow-ms are logged, and SIGINT or\n\
     GET /quitquitquit drains gracefully. Every response carries X-Request-Id.\n\
     --request-timeout-ms (or a per-request X-Timeout-Ms header, clamped to it)\n\
     answers 504 with progress diagnostics when a deadline expires; matrices\n\
     above --max-cells cells are rejected with 422 before any allocation.\n\
     A flight recorder keeps the last --record-requests requests (span tree,\n\
     phase timings, kernel telemetry) browsable at GET /debug/requests, pinning\n\
     slow/errored/panicked ones into a --record-survivors ring; traceparent is\n\
     propagated and GET /metrics?format=prometheus emits text exposition.\n\
     A sampling profiler runs at --profile-hz (0 disables) and serves folded\n\
     stacks from GET /debug/profile?seconds=N&format=folded|json; the SLO\n\
     engine tracks --slo-availability (and optionally --slo-latency-ms) over\n\
     1m/5m/1h-style windows scaled from --slo-window-s, exposing burn rates in\n\
     /metrics and flipping /healthz to \"degraded\" while an alert fires.\n\n\
     `hcm session` demos the live-session engine offline: it registers the\n\
     matrix, then replays edit lines (cell,<task>,<machine>,<value> |\n\
     row,<task>,v1,.. | col,<machine>,v1,..) one version at a time, printing\n\
     measure deltas and warm vs cold solver iteration counts. The daemon\n\
     exposes the same engine as POST /session, PATCH /session/{id}/etc,\n\
     GET /session/{id}[/watch?version=N], DELETE /session/{id}, bounded by\n\
     --max-sessions (LRU) and --session-ttl-s (idle expiry).\n\n\
     `hcm top` polls GET /debug/timeseries (the in-process TSDB retaining\n\
     --tsdb-retention-s seconds of per-second metric history; --tsdb-off\n\
     disables it) plus /healthz on a running daemon and renders req/s,\n\
     p50/p99 latency, cache hit rate, overload ladder state, live workers,\n\
     and SLO burn with sparklines; --once prints a single frame and exits.\n\n\
     Input files are CSV: header `task,<machine…>`, one row per task type, runtimes\n\
     as numbers, `inf` for incompatible pairs. Pass --ecs when the file already\n\
     holds speeds instead of runtimes.\n"
}
