//! The `hcm` subcommands as pure, testable functions.

use crate::args::{parse, Args};
use hc_core::canonical::canonical_form;
use hc_core::ecs::{Ecs, Etc};
use hc_core::standard::{TmaOptions, ZeroPolicy};
use hc_core::whatif;
use hc_gen::cvb::{cvb, CvbParams};
use hc_gen::range_based::{range_based, RangeParams};
use hc_gen::targeted::{targeted, TargetSpec};
use hc_sched::exact::{optimal, simulated_annealing, tabu, SaParams, TabuParams};
use hc_sched::ga::{ga, GaParams};
use hc_sched::heuristics::{all_heuristics, Heuristic, HeuristicKind};
use hc_sched::problem::{makespan_lower_bound, MappingProblem};
use hc_sinkhorn::structure::analyze_structure;
use hc_spec::csv;

/// How a command gets its matrix input: the caller (main or a test) resolves the
/// file path to text beforehand.
pub trait InputSource {
    /// Reads the full text of the named input.
    fn read(&self, path: &str) -> Result<String, String>;
}

/// Reads from the real filesystem.
pub struct FsInput;

impl InputSource for FsInput {
    fn read(&self, path: &str) -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// In-memory input for tests: `(name, content)` pairs.
pub struct MemInput(pub Vec<(String, String)>);

impl InputSource for MemInput {
    fn read(&self, path: &str) -> Result<String, String> {
        self.0
            .iter()
            .find(|(n, _)| n == path)
            .map(|(_, c)| c.clone())
            .ok_or_else(|| format!("no such input {path}"))
    }
}

/// Dispatches a full argument vector (without the program name) to a subcommand.
pub fn dispatch(raw: &[String], input: &dyn InputSource) -> Result<String, String> {
    let args = parse(raw);
    match args.positional(0) {
        None | Some("help") => Ok(crate::usage().to_string()),
        Some("measure") => cmd_measure(&args, input),
        Some("structure") => cmd_structure(&args, input),
        Some("canonical") => cmd_canonical(&args, input),
        Some("generate") => cmd_generate(&args),
        Some("schedule") => cmd_schedule(&args, input),
        Some("whatif") => cmd_whatif(&args, input),
        Some("simulate") => cmd_simulate(&args, input),
        Some("session") => cmd_session(&args, input),
        Some("spec") => cmd_spec(&args),
        // `serve` blocks on a socket, so the binary handles it before
        // dispatch; reaching it here means a programmatic caller.
        Some("serve") => Err(
            "serve starts a long-lived daemon and is handled by the hcm binary; \
             use hc_serve::start directly from code"
                .to_string(),
        ),
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", crate::usage())),
    }
}

fn load_env(args: &Args, input: &dyn InputSource, pos: usize) -> Result<Ecs, String> {
    let path = args
        .positional(pos)
        .ok_or_else(|| "missing input file".to_string())?;
    let text = input.read(path)?;
    let etc = csv::from_csv(&text).map_err(|e| e.to_string())?;
    if args.has("ecs") {
        // The file holds speeds: reinterpret entries directly as ECS.
        Ecs::with_names(
            etc.matrix().map(|v| if v.is_infinite() { 0.0 } else { v }),
            etc.task_names().to_vec(),
            etc.machine_names().to_vec(),
        )
        .map_err(|e| e.to_string())
    } else {
        Ok(etc.to_ecs())
    }
}

fn tma_options(args: &Args) -> Result<TmaOptions, String> {
    let mut opts = TmaOptions::default();
    if let Some(p) = args.get("zero-policy") {
        opts.zero_policy = ZeroPolicy::parse(p).map_err(|e| format!("--{e}"))?;
    }
    Ok(opts)
}

fn cmd_measure(args: &Args, input: &dyn InputSource) -> Result<String, String> {
    args.check_allowed(&["ecs", "zero-policy"])?;
    let ecs = load_env(args, input, 1)?;
    let opts = tma_options(args)?;
    // Analyzer owns the scratch workspace; one CLI invocation only runs one
    // characterize, but routing through it keeps CLI and daemon on the same
    // code path (uniform weights, identical results bit for bit).
    let mut an = hc_core::Analyzer::new();
    let r = an
        .characterize_with(&ecs, None, &opts)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "environment: {} task types x {} machines\n\
         MPH = {:.4}\nTDH = {:.4}\nTMA = {:.4}\n\
         standardization: {} iterations{}{}\n\nmachine performances:\n",
        ecs.num_tasks(),
        ecs.num_machines(),
        r.mph,
        r.tdh,
        r.tma,
        r.standardization_iterations,
        if r.regularized { " (regularized)" } else { "" },
        if r.reduced_to_core {
            " (limit form via total-support core)"
        } else {
            ""
        },
    );
    for (n, v) in ecs.machine_names().iter().zip(&r.machine_performances) {
        out.push_str(&format!("  {n}: {v:.6}\n"));
    }
    out.push_str("task difficulties:\n");
    for (n, v) in ecs.task_names().iter().zip(&r.task_difficulties) {
        out.push_str(&format!("  {n}: {v:.6}\n"));
    }
    Ok(out)
}

fn cmd_structure(args: &Args, input: &dyn InputSource) -> Result<String, String> {
    args.check_allowed(&["ecs"])?;
    let ecs = load_env(args, input, 1)?;
    let rep = analyze_structure(ecs.matrix());
    Ok(format!(
        "shape: {}x{}\npositive entries: {} / {}\nmatching size: {}\n\
         support: {}\ntotal support: {}\nfully indecomposable: {}\n\
         bipartite graph connected: {}\nbalanceability: {:?}\n",
        rep.shape.0,
        rep.shape.1,
        rep.positive_entries,
        rep.shape.0 * rep.shape.1,
        rep.matching_size,
        rep.has_support,
        rep.has_total_support,
        rep.fully_indecomposable,
        rep.connected,
        rep.balanceability,
    ))
}

fn cmd_canonical(args: &Args, input: &dyn InputSource) -> Result<String, String> {
    args.check_allowed(&["ecs"])?;
    let ecs = load_env(args, input, 1)?;
    let c = canonical_form(&ecs).map_err(|e| e.to_string())?;
    let mut out = String::from("canonical task order (ascending difficulty):\n");
    for (k, &i) in c.task_perm.iter().enumerate() {
        out.push_str(&format!(
            "  {:3}. {} (TD = {:.6})\n",
            k + 1,
            ecs.task_names()[i],
            c.task_difficulties[k]
        ));
    }
    out.push_str("canonical machine order (ascending performance):\n");
    for (k, &j) in c.machine_perm.iter().enumerate() {
        out.push_str(&format!(
            "  {:3}. {} (MP = {:.6})\n",
            k + 1,
            ecs.machine_names()[j],
            c.machine_performances[k]
        ));
    }
    out.push_str(&format!("already canonical: {}\n", c.was_canonical()));
    Ok(out)
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let kind = args
        .positional(1)
        .ok_or_else(|| "generate needs a mode: targeted | range | cvb".to_string())?;
    let etc: Etc = match kind {
        "targeted" => {
            args.check_allowed(&["tasks", "machines", "mph", "tdh", "tma", "seed", "jitter"])?;
            let spec = TargetSpec {
                tasks: args.require("tasks")?,
                machines: args.require("machines")?,
                mph: args.require("mph")?,
                tdh: args.require("tdh")?,
                tma: args.require("tma")?,
                jitter: args.get_or("jitter", 0.5)?,
            };
            let seed: u64 = args.get_or("seed", 0)?;
            let ecs = targeted(&spec, seed).map_err(|e| e.to_string())?;
            ecs.to_etc()
        }
        "range" => {
            args.check_allowed(&["tasks", "machines", "rtask", "rmach", "seed"])?;
            let params = RangeParams {
                tasks: args.require("tasks")?,
                machines: args.require("machines")?,
                r_task: args.get_or("rtask", 100.0)?,
                r_mach: args.get_or("rmach", 100.0)?,
            };
            range_based(&params, args.get_or("seed", 0)?).map_err(|e| e.to_string())?
        }
        "cvb" => {
            args.check_allowed(&["tasks", "machines", "vtask", "vmach", "seed"])?;
            let params = CvbParams::new(
                args.require("tasks")?,
                args.require("machines")?,
                args.get_or("vtask", 0.3)?,
                args.get_or("vmach", 0.3)?,
            );
            cvb(&params, args.get_or("seed", 0)?).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown generate mode {other:?}")),
    };
    Ok(csv::to_csv(&etc))
}

fn parse_heuristic(name: &str) -> Result<Option<HeuristicKind>, String> {
    match name {
        // Meta-selectors handled by the caller, not direct heuristics.
        "all" | "ga" | "sa" | "tabu" | "optimal" => Ok(None),
        other => other.parse::<HeuristicKind>().map(Some),
    }
}

fn cmd_schedule(args: &Args, input: &dyn InputSource) -> Result<String, String> {
    args.check_allowed(&["ecs", "heuristic", "seed"])?;
    let ecs = load_env(args, input, 1)?;
    let etc = ecs.to_etc();
    let p = MappingProblem::from_etc(&etc);
    let which = args.get("heuristic").unwrap_or("all");

    let mut rows: Vec<(String, hc_sched::Schedule)> = Vec::new();
    match which {
        "all" => {
            for h in all_heuristics() {
                rows.push((h.name().to_string(), h.map(&p).map_err(|e| e.to_string())?));
            }
            rows.push((
                "GA".into(),
                ga(&p, &GaParams::default()).map_err(|e| e.to_string())?,
            ));
            rows.push((
                "SA".into(),
                simulated_annealing(&p, &SaParams::default()).map_err(|e| e.to_string())?,
            ));
        }
        "ga" => rows.push((
            "GA".into(),
            ga(&p, &GaParams::default()).map_err(|e| e.to_string())?,
        )),
        "sa" => rows.push((
            "SA".into(),
            simulated_annealing(&p, &SaParams::default()).map_err(|e| e.to_string())?,
        )),
        "optimal" => rows.push((
            "optimal".into(),
            optimal(&p, 1e7).map_err(|e| e.to_string())?,
        )),
        "tabu" => rows.push((
            "Tabu".into(),
            tabu(&p, &TabuParams::default()).map_err(|e| e.to_string())?,
        )),
        named => {
            let h = parse_heuristic(named)?
                .ok_or_else(|| format!("heuristic {named:?} not directly mappable"))?;
            rows.push((h.name().to_string(), h.map(&p).map_err(|e| e.to_string())?));
        }
    }

    let lb = makespan_lower_bound(&p);
    let mut out = format!(
        "{} tasks on {} machines; makespan lower bound {:.4}\n\n",
        p.num_tasks(),
        p.num_machines(),
        lb
    );
    for (name, s) in &rows {
        let mk = s.makespan(&p).map_err(|e| e.to_string())?;
        out.push_str(&format!("{name:10} makespan = {mk:.4}\n"));
    }
    if let Some((name, s)) = rows.iter().min_by(|a, b| {
        a.1.makespan(&p)
            .unwrap_or(f64::INFINITY)
            .partial_cmp(&b.1.makespan(&p).unwrap_or(f64::INFINITY))
            .expect("finite")
    }) {
        out.push_str(&format!("\nbest: {name}\nassignment (task -> machine):\n"));
        for (i, &j) in s.assignment.iter().enumerate() {
            out.push_str(&format!(
                "  {} -> {}\n",
                etc.task_names()[i],
                etc.machine_names()[j]
            ));
        }
    }
    Ok(out)
}

fn cmd_whatif(args: &Args, input: &dyn InputSource) -> Result<String, String> {
    args.check_allowed(&["ecs", "remove-machine", "remove-task"])?;
    let ecs = load_env(args, input, 1)?;
    let w = if args.has("remove-machine") {
        let j: usize = args.require("remove-machine")?;
        whatif::remove_machine(&ecs, j).map_err(|e| e.to_string())?
    } else if args.has("remove-task") {
        let i: usize = args.require("remove-task")?;
        whatif::remove_task(&ecs, i).map_err(|e| e.to_string())?
    } else {
        return Err("whatif needs --remove-machine <j> or --remove-task <i>".into());
    };
    Ok(format!(
        "{}\nbefore: MPH {:.4}  TDH {:.4}  TMA {:.4}\n\
         after:  MPH {:.4}  TDH {:.4}  TMA {:.4}\n\
         delta:  MPH {:+.4}  TDH {:+.4}  TMA {:+.4}\n",
        w.description,
        w.before.mph,
        w.before.tdh,
        w.before.tma,
        w.after.mph,
        w.after.tdh,
        w.after.tma,
        w.delta_mph(),
        w.delta_tdh(),
        w.delta_tma(),
    ))
}

fn cmd_simulate(args: &Args, input: &dyn InputSource) -> Result<String, String> {
    use hc_sim::metrics::metrics;
    use hc_sim::policy::{BatchPolicy, OnlinePolicy, Policy};
    use hc_sim::sim::{simulate, SimConfig};
    use hc_sim::workload::{generate, WorkloadSpec};

    args.check_allowed(&["ecs", "tasks", "rate", "seed", "policy", "interval"])?;
    let ecs = load_env(args, input, 1)?;
    let etc = ecs.to_etc();
    let count: usize = args.get_or("tasks", 1000)?;
    let seed: u64 = args.get_or("seed", 0)?;
    // Default rate: ~75% of aggregate capacity.
    let mean_etc = etc.matrix().total_sum() / etc.matrix().len() as f64;
    let default_rate = 0.75 * etc.num_machines() as f64 / mean_etc;
    let rate: f64 = args.get_or("rate", default_rate)?;
    let interval: f64 = args.get_or("interval", 10.0 / rate)?;
    let policy = match args.get("policy").unwrap_or("mct") {
        "olb" => Policy::Immediate(OnlinePolicy::Olb),
        "met" => Policy::Immediate(OnlinePolicy::Met),
        "mct" => Policy::Immediate(OnlinePolicy::Mct),
        "batch-min-min" => Policy::Batch {
            policy: BatchPolicy::MinMin,
            interval,
        },
        "batch-sufferage" => Policy::Batch {
            policy: BatchPolicy::Sufferage,
            interval,
        },
        other => match other.strip_prefix("kpb=") {
            Some(pct) => Policy::Immediate(OnlinePolicy::Kpb {
                percent: pct
                    .parse()
                    .map_err(|_| format!("kpb=<pct>: bad percent {pct:?}"))?,
            }),
            None => return Err(format!("unknown policy {other:?}")),
        },
    };
    let wl = generate(&WorkloadSpec::uniform(count, rate, etc.num_tasks(), seed))
        .map_err(|e| e.to_string())?;
    let r = simulate(etc.matrix(), &wl, &SimConfig { policy }).map_err(|e| e.to_string())?;
    let s = metrics(&r, etc.num_machines());
    let mut out = format!(
        "policy {}: {} tasks at rate {:.4}/s (seed {seed})\n\
         makespan      = {:.2}\n\
         mean flowtime = {:.2}\n\
         max flowtime  = {:.2}\n\
         mean wait     = {:.2}\n\nper-machine:\n",
        policy.name(),
        s.tasks,
        rate,
        s.makespan,
        s.mean_flowtime,
        s.max_flowtime,
        s.mean_wait,
    );
    for (j, name) in etc.machine_names().iter().enumerate() {
        out.push_str(&format!(
            "  {name}: utilization {:.2}, {} tasks\n",
            s.utilization[j], s.tasks_per_machine[j]
        ));
    }
    Ok(out)
}

/// Applies one parsed edit to the in-process engine (mirrors the daemon's
/// store loop, minus the undo log: a CLI demo aborts on the first bad edit).
fn apply_session_edit(
    engine: &mut hc_session::SessionEngine,
    edit: &hc_session::Edit,
    etc_units: bool,
) -> Result<(), String> {
    let set = |engine: &mut hc_session::SessionEngine, t: usize, m: usize, v: f64| {
        engine
            .set(t, m, hc_session::to_ecs_value(v, etc_units))
            .map_err(|e| e.to_string())
    };
    match edit {
        hc_session::Edit::Cell {
            task,
            machine,
            value,
        } => set(engine, *task, *machine, *value),
        hc_session::Edit::Row { task, values } => values
            .iter()
            .enumerate()
            .try_for_each(|(m, v)| set(engine, *task, m, *v)),
        hc_session::Edit::Col { machine, values } => values
            .iter()
            .enumerate()
            .try_for_each(|(t, v)| set(engine, t, *machine, *v)),
    }
}

fn cmd_session(args: &Args, input: &dyn InputSource) -> Result<String, String> {
    args.check_allowed(&["ecs", "edits"])?;
    let ecs = load_env(args, input, 1)?;
    let etc_units = !args.has("ecs");
    let task_names = ecs.task_names().to_vec();
    let machine_names = ecs.machine_names().to_vec();
    let mut engine = hc_session::SessionEngine::new(ecs);

    let (report, stats) = engine.recompute(None).map_err(|e| e.to_string())?;
    let cold_iters = stats.total_iterations();
    let mut out = format!(
        "session demo: {} task types x {} machines (edits in {})\n\
         v1 cold: MPH {:.4}  TDH {:.4}  TMA {:.4}   \
         ({} Sinkhorn + {} SVD iterations)\n",
        task_names.len(),
        machine_names.len(),
        if etc_units {
            "ETC seconds"
        } else {
            "ECS speeds"
        },
        report.mph,
        report.tdh,
        report.tma,
        stats.sinkhorn_iterations,
        stats.svd_iterations,
    );
    let mut prev = (report.mph, report.tdh, report.tma);

    // Edit script: an explicit --edits file, or a built-in perturbation that
    // nudges up to three entries so the warm path has something to absorb.
    let text = match args.get("edits") {
        Some(path) => input.read(path)?,
        None => {
            let mut lines = String::new();
            for (t, &factor) in [1.15, 0.85, 1.10].iter().enumerate().take(task_names.len()) {
                let Some(m) = (0..machine_names.len()).find(|&m| engine.ecs().get(t, m) > 0.0)
                else {
                    continue;
                };
                let speed = engine.ecs().get(t, m) * factor;
                let value = if etc_units { 1.0 / speed } else { speed };
                lines.push_str(&format!("cell,{},{},{value}\n", t + 1, m + 1));
            }
            lines
        }
    };
    let edits =
        hc_session::parse_edits(&text, &task_names, &machine_names).map_err(|e| e.to_string())?;

    // One version per edit, like a client issuing sequential PATCHes.
    let mut warm_iters = Vec::new();
    for (k, edit) in edits.iter().enumerate() {
        apply_session_edit(&mut engine, edit, etc_units)?;
        let (report, stats) = engine.recompute(None).map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "v{} {}: MPH {:.4}  TDH {:.4}  TMA {:.4}  (dTMA {:+.4})   \
             ({} Sinkhorn + {} SVD iterations)\n",
            k + 2,
            if stats.fallback {
                "cold*" // warm path missed tolerance; silently recomputed cold
            } else if stats.warm {
                "warm"
            } else {
                "cold"
            },
            report.mph,
            report.tdh,
            report.tma,
            report.tma - prev.2,
            stats.sinkhorn_iterations,
            stats.svd_iterations,
        ));
        prev = (report.mph, report.tdh, report.tma);
        if stats.warm && !stats.fallback {
            warm_iters.push(stats.total_iterations());
        }
    }
    if !warm_iters.is_empty() {
        let mean = warm_iters.iter().sum::<usize>() as f64 / warm_iters.len() as f64;
        out.push_str(&format!(
            "warm recomputes averaged {mean:.1} solver iterations vs {cold_iters} cold\n"
        ));
    }
    Ok(out)
}

fn cmd_spec(args: &Args) -> Result<String, String> {
    args.check_allowed(&[])?;
    let which = args.positional(1).unwrap_or("cint");
    let d = match which {
        "cint" => hc_spec::dataset::cint2006(),
        "cfp" => hc_spec::dataset::cfp2006(),
        other => return Err(format!("unknown dataset {other:?} (cint | cfp)")),
    };
    Ok(csv::to_csv(&d.etc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(files: &[(&str, &str)]) -> MemInput {
        MemInput(
            files
                .iter()
                .map(|(n, c)| (n.to_string(), c.to_string()))
                .collect(),
        )
    }

    fn run(argv: &[&str], files: &[(&str, &str)]) -> Result<String, String> {
        let raw: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        dispatch(&raw, &mem(files))
    }

    const SAMPLE: &str = "task,m1,m2\nt1,2.0,8.0\nt2,6.0,3.0\n";

    #[test]
    fn help_and_unknown() {
        assert!(run(&[], &[]).unwrap().contains("USAGE"));
        assert!(run(&["help"], &[]).unwrap().contains("USAGE"));
        assert!(run(&["bogus"], &[]).is_err());
    }

    #[test]
    fn measure_basic() {
        let out = run(&["measure", "in.csv"], &[("in.csv", SAMPLE)]).unwrap();
        assert!(out.contains("MPH ="));
        assert!(out.contains("TMA ="));
        assert!(out.contains("t1:"));
        assert!(out.contains("m2:"));
    }

    #[test]
    fn measure_ecs_flag_changes_interpretation() {
        let a = run(&["measure", "in.csv"], &[("in.csv", SAMPLE)]).unwrap();
        let b = run(&["measure", "in.csv", "--ecs"], &[("in.csv", SAMPLE)]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn measure_zero_policy_strict_errors_on_limit_pattern() {
        let csv = "task,m1,m2\nt1,1.0,inf\nt2,1.0,1.0\n";
        let err = run(
            &["measure", "in.csv", "--zero-policy", "strict"],
            &[("in.csv", csv)],
        )
        .unwrap_err();
        assert!(err.contains("standard form"), "{err}");
        // Limit policy succeeds on the same input.
        let ok = run(
            &["measure", "in.csv", "--zero-policy", "limit"],
            &[("in.csv", csv)],
        )
        .unwrap();
        assert!(ok.contains("total-support core"));
        // reg=... also succeeds.
        let reg = run(
            &["measure", "in.csv", "--zero-policy", "reg=1e-4"],
            &[("in.csv", csv)],
        )
        .unwrap();
        assert!(reg.contains("(regularized)"));
        assert!(run(
            &["measure", "in.csv", "--zero-policy", "nope"],
            &[("in.csv", csv)]
        )
        .is_err());
    }

    #[test]
    fn structure_report() {
        let csv = "task,m1,m2\nt1,1.0,inf\nt2,1.0,1.0\n";
        let out = run(&["structure", "in.csv"], &[("in.csv", csv)]).unwrap();
        assert!(out.contains("support: true"));
        assert!(out.contains("total support: false"));
        assert!(out.contains("LimitOnly"));
    }

    #[test]
    fn canonical_orders() {
        let out = run(&["canonical", "in.csv"], &[("in.csv", SAMPLE)]).unwrap();
        assert!(out.contains("canonical task order"));
        assert!(out.contains("canonical machine order"));
    }

    #[test]
    fn generate_targeted_round_trips() {
        let out = run(
            &[
                "generate",
                "targeted",
                "--tasks",
                "6",
                "--machines",
                "4",
                "--mph",
                "0.7",
                "--tdh",
                "0.6",
                "--tma",
                "0.2",
                "--seed",
                "3",
            ],
            &[],
        )
        .unwrap();
        // Output is CSV; measure it back.
        let measured = run(&["measure", "gen.csv"], &[("gen.csv", &out)]).unwrap();
        assert!(measured.contains("MPH = 0.7000"), "{measured}");
        assert!(measured.contains("TDH = 0.6000"));
        assert!(measured.contains("TMA = 0.2000"));
    }

    #[test]
    fn generate_range_and_cvb() {
        let r = run(
            &[
                "generate",
                "range",
                "--tasks",
                "4",
                "--machines",
                "3",
                "--seed",
                "1",
            ],
            &[],
        )
        .unwrap();
        assert!(r.starts_with("task,m1,m2,m3"));
        let c = run(&["generate", "cvb", "--tasks", "4", "--machines", "3"], &[]).unwrap();
        assert_eq!(c.lines().count(), 5);
        assert!(run(&["generate", "bogus"], &[]).is_err());
        assert!(run(&["generate", "range", "--tasks", "4"], &[]).is_err());
    }

    #[test]
    fn schedule_all_and_named() {
        let out = run(&["schedule", "in.csv"], &[("in.csv", SAMPLE)]).unwrap();
        assert!(out.contains("Min-Min"));
        assert!(out.contains("GA"));
        assert!(out.contains("best:"));
        assert!(out.contains("t1 ->"));
        let one = run(
            &["schedule", "in.csv", "--heuristic", "min-min"],
            &[("in.csv", SAMPLE)],
        )
        .unwrap();
        assert!(one.contains("Min-Min"));
        assert!(!one.contains("OLB"));
        let opt = run(
            &["schedule", "in.csv", "--heuristic", "optimal"],
            &[("in.csv", SAMPLE)],
        )
        .unwrap();
        // Optimal on this 2x2: t1->m1 (2), t2->m2 (3) → makespan 3.
        assert!(opt.contains("makespan = 3.0000"), "{opt}");
        let kpb = run(
            &["schedule", "in.csv", "--heuristic", "kpb=50"],
            &[("in.csv", SAMPLE)],
        )
        .unwrap();
        assert!(kpb.contains("KPB"));
        assert!(run(
            &["schedule", "in.csv", "--heuristic", "bogus"],
            &[("in.csv", SAMPLE)]
        )
        .is_err());
    }

    #[test]
    fn whatif_machine_and_task() {
        let csv = "task,m1,m2,m3\nt1,2,8,4\nt2,6,3,5\nt3,4,4,4\n";
        let out = run(
            &["whatif", "in.csv", "--remove-machine", "2"],
            &[("in.csv", csv)],
        )
        .unwrap();
        assert!(out.contains("delta:"));
        let out = run(
            &["whatif", "in.csv", "--remove-task", "0"],
            &[("in.csv", csv)],
        )
        .unwrap();
        assert!(out.contains("remove task"));
        assert!(run(&["whatif", "in.csv"], &[("in.csv", csv)]).is_err());
    }

    #[test]
    fn simulate_runs() {
        let out = run(
            &["simulate", "in.csv", "--tasks", "50", "--seed", "3"],
            &[("in.csv", SAMPLE)],
        )
        .unwrap();
        assert!(out.contains("makespan"));
        assert!(out.contains("utilization"));
        let batch = run(
            &[
                "simulate",
                "in.csv",
                "--tasks",
                "50",
                "--policy",
                "batch-min-min",
            ],
            &[("in.csv", SAMPLE)],
        )
        .unwrap();
        assert!(batch.contains("batch-MinMin"));
        let kpb = run(
            &["simulate", "in.csv", "--tasks", "20", "--policy", "kpb=50"],
            &[("in.csv", SAMPLE)],
        )
        .unwrap();
        assert!(kpb.contains("online-KPB50"));
        assert!(run(
            &["simulate", "in.csv", "--policy", "bogus"],
            &[("in.csv", SAMPLE)]
        )
        .is_err());
    }

    #[test]
    fn session_demo_runs_warm() {
        let csv = "task,m1,m2,m3\nt1,2,8,4\nt2,6,3,5\nt3,4,4,4\n";
        let out = run(&["session", "in.csv"], &[("in.csv", csv)]).unwrap();
        assert!(out.contains("v1 cold:"), "{out}");
        assert!(out.contains("v2 warm:"), "{out}");
        assert!(out.contains("v4 warm:"), "{out}");
        assert!(out.contains("warm recomputes averaged"), "{out}");
    }

    #[test]
    fn session_demo_takes_edit_script() {
        let csv = "task,m1,m2\nt1,2.0,8.0\nt2,6.0,3.0\n";
        let edits = "cell,t1,m2,7.5\nrow,t2,5.5,3.5\n";
        let out = run(
            &["session", "in.csv", "--edits", "e.txt"],
            &[("in.csv", csv), ("e.txt", edits)],
        )
        .unwrap();
        assert!(out.contains("v3 warm:"), "{out}");
        // Bad scripts fail with the parser's line-numbered error.
        let err = run(
            &["session", "in.csv", "--edits", "e.txt"],
            &[("in.csv", csv), ("e.txt", "cell,t9,m1,1\n")],
        )
        .unwrap_err();
        assert!(err.contains("edit line 1"), "{err}");
    }

    #[test]
    fn spec_dumps_datasets() {
        let cint = run(&["spec", "cint"], &[]).unwrap();
        assert!(cint.starts_with("task,m1"));
        assert!(cint.contains("400.perlbench"));
        let cfp = run(&["spec", "cfp"], &[]).unwrap();
        assert!(cfp.contains("436.cactusADM"));
        // Measure the dump end to end: it must report the paper's values.
        let measured = run(&["measure", "d.csv"], &[("d.csv", &cint)]).unwrap();
        assert!(measured.contains("TMA = 0.07"), "{measured}");
        assert!(run(&["spec", "bogus"], &[]).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        assert!(run(
            &["measure", "in.csv", "--frobnicate"],
            &[("in.csv", SAMPLE)]
        )
        .is_err());
    }

    #[test]
    fn missing_file_reported() {
        let err = run(&["measure", "nope.csv"], &[]).unwrap_err();
        assert!(err.contains("nope.csv"));
    }
}
