//! `hcm top` — a live terminal dashboard over a running `hcm serve`.
//!
//! Polls `GET /debug/timeseries?format=sparkline` (the in-process TSDB,
//! DESIGN.md §16) plus `GET /healthz`, and renders one screen of serving
//! health: request rate, p50/p99 latency, cache hit rate, overload ladder
//! state, live workers, and SLO burn — each with a sparkline of recent
//! history. With `--once` it prints a single frame and exits (the mode the
//! test suite and verify.sh drive); otherwise it redraws every
//! `--interval-ms` until interrupted.
//!
//! Everything except the socket I/O is pure: sparkline-line parsing and frame
//! rendering are plain string functions, unit-tested without a server.

use crate::args::Args;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Series polled for the dashboard, in display order, with human labels.
/// Counters (requests, errors) arrive as per-second rates from the server's
/// sparkline renderer, so the labels say so.
const SERIES: &[(&str, &str)] = &[
    ("serve_requests_total", "req/s"),
    ("serve_errors_total", "err/s"),
    ("serve_latency_p50_us", "p50 us"),
    ("serve_latency_p99_us", "p99 us"),
    ("serve_cache_hit_rate", "cache hit"),
    ("serve_overload_state", "overload"),
    ("serve_workers_live", "workers"),
    ("serve_connections_open", "conns"),
    ("serve_slo_burn_short", "slo burn"),
];

/// Parsed `hcm top` invocation.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Server address (`host:port`) to poll.
    pub addr: String,
    /// Print one frame and exit instead of looping.
    pub once: bool,
    /// Redraw period in the looping mode.
    pub interval_ms: u64,
    /// History window requested per frame, seconds.
    pub window_s: u64,
}

/// Parses `hcm top` arguments.
pub fn parse_config(args: &Args) -> Result<TopConfig, String> {
    if args.positional(0) != Some("top") {
        return Err("top::parse_config expects the top subcommand".to_string());
    }
    if args.positional_count() > 1 {
        return Err("top takes no positional arguments".to_string());
    }
    args.check_allowed(&["addr", "once", "interval-ms", "window-s"])?;
    let cfg = TopConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        once: args.has("once"),
        interval_ms: args.get_or("interval-ms", 1000)?,
        window_s: args.get_or("window-s", 60)?,
    };
    if cfg.interval_ms == 0 {
        return Err("--interval-ms must be at least 1".to_string());
    }
    if cfg.window_s == 0 {
        return Err("--window-s must be at least 1".to_string());
    }
    Ok(cfg)
}

/// One parsed line of the server's `format=sparkline` output.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesLine {
    /// Series name as stored in the TSDB.
    pub name: String,
    /// Unicode sparkline over the queried window.
    pub spark: String,
    /// Most recent value (`None` when the server printed `-`).
    pub last: Option<f64>,
    /// Resolution the server answered at, seconds per point.
    pub step_s: u64,
}

/// Parses the `/debug/timeseries?format=sparkline` body: one
/// `name  <spark>  last=V step=Ss` line per series. Unrecognized lines are
/// skipped so a newer server never breaks an older client.
pub fn parse_sparklines(body: &str) -> Vec<SeriesLine> {
    let mut out = Vec::new();
    for line in body.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            continue;
        }
        let (Some(last_raw), Some(step_raw)) = (
            fields[2].strip_prefix("last="),
            fields[3]
                .strip_prefix("step=")
                .and_then(|s| s.strip_suffix('s')),
        ) else {
            continue;
        };
        let Ok(step_s) = step_raw.parse::<u64>() else {
            continue;
        };
        out.push(SeriesLine {
            name: fields[0].to_string(),
            spark: fields[1].to_string(),
            last: last_raw.parse::<f64>().ok(),
            step_s,
        });
    }
    out
}

/// Extracts the `status` value from a `/healthz` JSON body (`ok`,
/// `degraded`, ...); `?` when absent.
pub fn health_status(body: &str) -> &str {
    body.split_once("\"status\":\"")
        .and_then(|(_, rest)| rest.split_once('"'))
        .map_or("?", |(status, _)| status)
}

/// Maps the numeric `serve_overload_state` gauge to the ladder name.
fn overload_name(v: f64) -> &'static str {
    match v as i64 {
        0 => "ok",
        1 => "brownout",
        2 => "shedding",
        _ => "?",
    }
}

/// Renders one dashboard frame from parsed series. Pure so tests can golden
/// it; the header carries address + health, then one row per known series.
pub fn render(addr: &str, health: &str, lines: &[SeriesLine], window_s: u64) -> String {
    let find = |name: &str| lines.iter().find(|l| l.name == name);
    let overload = find("serve_overload_state")
        .and_then(|l| l.last)
        .map_or("?", overload_name);
    let mut out =
        format!("hcm top — {addr} — health {health} — overload {overload} — window {window_s}s\n");
    for &(name, label) in SERIES {
        let Some(line) = find(name) else {
            out.push_str(&format!("  {label:<9} {:>12}\n", "-"));
            continue;
        };
        let value = match (name, line.last) {
            (_, None) => "-".to_string(),
            ("serve_overload_state", Some(v)) => overload_name(v).to_string(),
            ("serve_cache_hit_rate", Some(v)) => format!("{:.0}%", v * 100.0),
            (_, Some(v)) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{v}"),
            (_, Some(v)) => format!("{v:.3}"),
        };
        out.push_str(&format!("  {label:<9} {value:>12}  {}\n", line.spark));
    }
    out
}

/// Minimal `GET` over std `TcpStream` (HTTP/1.1, `Connection: close`).
/// Returns `(status, body)`.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map_or("", |(_, b)| b)
        .to_string();
    Ok((status, body))
}

/// Fetches one frame's inputs and renders it.
fn frame(cfg: &TopConfig) -> Result<String, String> {
    let names: Vec<&str> = SERIES.iter().map(|(n, _)| *n).collect();
    let path = format!(
        "/debug/timeseries?series={}&window={}&format=sparkline",
        names.join(","),
        cfg.window_s
    );
    let (status, body) = http_get(&cfg.addr, &path)?;
    if status != 200 {
        return Err(format!(
            "{} answered {status} for /debug/timeseries (tsdb disabled via --tsdb-off?)",
            cfg.addr
        ));
    }
    let (_, health_body) = http_get(&cfg.addr, "/healthz")?;
    Ok(render(
        &cfg.addr,
        health_status(&health_body),
        &parse_sparklines(&body),
        cfg.window_s,
    ))
}

/// Runs the dashboard: one frame with `--once`, else redraw until killed.
/// Returns the final frame error, if any, for `main` to print.
pub fn run(cfg: &TopConfig) -> Result<(), String> {
    if cfg.once {
        print!("{}", frame(cfg)?);
        return Ok(());
    }
    loop {
        match frame(cfg) {
            // ANSI clear + home between frames; errors are transient (server
            // restarting) so they render in place of a frame instead of
            // killing the loop.
            Ok(f) => print!("\x1b[2J\x1b[H{f}"),
            Err(e) => println!("\x1b[2J\x1b[Hhcm top: {e}"),
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(cfg.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn cfg_of(argv: &[&str]) -> Result<TopConfig, String> {
        let raw: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        parse_config(&parse(&raw))
    }

    #[test]
    fn parses_flags_and_defaults() {
        let cfg = cfg_of(&["top"]).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7878");
        assert!(!cfg.once);
        assert_eq!(cfg.interval_ms, 1000);
        assert_eq!(cfg.window_s, 60);

        let cfg = cfg_of(&[
            "top",
            "--addr",
            "127.0.0.1:9",
            "--once",
            "--interval-ms",
            "250",
            "--window-s",
            "30",
        ])
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:9");
        assert!(cfg.once);
        assert_eq!(cfg.interval_ms, 250);
        assert_eq!(cfg.window_s, 30);

        assert!(cfg_of(&["top", "--interval-ms", "0"]).is_err());
        assert!(cfg_of(&["top", "--window-s", "0"]).is_err());
        assert!(cfg_of(&["top", "--frobnicate"]).is_err());
        assert!(cfg_of(&["top", "extra"]).is_err());
    }

    #[test]
    fn parses_sparkline_body() {
        let body = "serve_requests_total    ▁▂▃▄█  last=12.000 step=1s\n\
                    serve_overload_state    ▁▁▁▁▁  last=0.000 step=1s\n\
                    serve_latency_p99_us    ·····  last=- step=1s\n\
                    not a sparkline line\n";
        let lines = parse_sparklines(body);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].name, "serve_requests_total");
        assert_eq!(lines[0].spark, "▁▂▃▄█");
        assert_eq!(lines[0].last, Some(12.0));
        assert_eq!(lines[0].step_s, 1);
        assert_eq!(lines[2].last, None);
    }

    #[test]
    fn renders_frame_with_labels_and_ladder_name() {
        let lines = vec![
            SeriesLine {
                name: "serve_requests_total".into(),
                spark: "▁▂▃".into(),
                last: Some(12.0),
                step_s: 1,
            },
            SeriesLine {
                name: "serve_overload_state".into(),
                spark: "▁▁█".into(),
                last: Some(2.0),
                step_s: 1,
            },
            SeriesLine {
                name: "serve_cache_hit_rate".into(),
                spark: "███".into(),
                last: Some(0.75),
                step_s: 1,
            },
        ];
        let f = render("127.0.0.1:7878", "ok", &lines, 60);
        assert!(
            f.starts_with("hcm top — 127.0.0.1:7878 — health ok — overload shedding"),
            "{f}"
        );
        assert!(f.contains("req/s"), "{f}");
        assert!(f.contains("12"), "{f}");
        assert!(f.contains("75%"), "{f}");
        assert!(f.contains("shedding"), "{f}");
        // Series the server didn't answer render as placeholders, not panics.
        assert!(f.contains("p99 us"), "{f}");
        assert!(f.lines().count() == 1 + super::SERIES.len(), "{f}");
    }

    #[test]
    fn health_status_extraction() {
        assert_eq!(health_status("{\"status\":\"ok\",\"x\":1}"), "ok");
        assert_eq!(health_status("{\"status\":\"degraded\"}"), "degraded");
        assert_eq!(health_status("nope"), "?");
    }
}
