//! Property-based tests for the mapping heuristics: validity, lower-bound
//! respect, and optimality relations on random instances.

use hc_linalg::Matrix;
use hc_sched::exact::{optimal, simulated_annealing, SaParams};
use hc_sched::ga::{ga, GaParams};
use hc_sched::heuristics::{all_heuristics, Heuristic, HeuristicKind};
use hc_sched::problem::{makespan_lower_bound, MappingProblem};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = MappingProblem> {
    (2usize..=6, 2usize..=4).prop_flat_map(|(t, m)| {
        proptest::collection::vec(0.5_f64..20.0, t * m).prop_map(move |data| {
            MappingProblem::new(Matrix::from_vec(t, m, data).unwrap()).unwrap()
        })
    })
}

/// A problem with some incompatibilities but every task runnable somewhere.
fn arb_problem_with_incompat() -> impl Strategy<Value = MappingProblem> {
    (2usize..=5, 2usize..=4).prop_flat_map(|(t, m)| {
        (
            proptest::collection::vec(0.5_f64..20.0, t * m),
            proptest::collection::vec(proptest::bool::weighted(0.25), t * m),
        )
            .prop_map(move |(data, blocked)| {
                let mut mat = Matrix::from_vec(t, m, data).unwrap();
                for i in 0..t {
                    for j in 0..m {
                        if blocked[i * m + j] {
                            mat[(i, j)] = f64::INFINITY;
                        }
                    }
                    // Guarantee at least one compatible machine.
                    if (0..m).all(|j| mat[(i, j)].is_infinite()) {
                        mat[(i, 0)] = 1.0;
                    }
                }
                MappingProblem::new(mat).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristics_valid_and_above_lower_bound(p in arb_problem()) {
        let lb = makespan_lower_bound(&p);
        for h in all_heuristics() {
            let s = h.map(&p).unwrap();
            prop_assert_eq!(s.assignment.len(), p.num_tasks());
            let mk = s.makespan(&p).unwrap();
            prop_assert!(mk.is_finite());
            prop_assert!(mk >= lb - 1e-9, "{} below bound: {} < {}", h.name(), mk, lb);
        }
    }

    #[test]
    fn optimal_dominates_heuristics(p in arb_problem()) {
        let opt = optimal(&p, 1e6).unwrap().makespan(&p).unwrap();
        prop_assert!(opt >= makespan_lower_bound(&p) - 1e-9);
        for h in all_heuristics() {
            let mk = h.map(&p).unwrap().makespan(&p).unwrap();
            prop_assert!(mk >= opt - 1e-9, "{} beats optimum: {} < {}", h.name(), mk, opt);
        }
    }

    #[test]
    fn ga_dominated_by_optimum_dominates_minmin(p in arb_problem()) {
        let opt = optimal(&p, 1e6).unwrap().makespan(&p).unwrap();
        let minmin = HeuristicKind::MinMin.map(&p).unwrap().makespan(&p).unwrap();
        let g = ga(&p, &GaParams { generations: 150, ..Default::default() })
            .unwrap()
            .makespan(&p)
            .unwrap();
        prop_assert!(g >= opt - 1e-9);
        prop_assert!(g <= minmin + 1e-9, "GA must not lose to its seed");
    }

    #[test]
    fn sa_dominated_by_optimum_dominates_mct(p in arb_problem()) {
        let opt = optimal(&p, 1e6).unwrap().makespan(&p).unwrap();
        let mct = HeuristicKind::Mct.map(&p).unwrap().makespan(&p).unwrap();
        let s = simulated_annealing(&p, &SaParams { iterations: 3000, ..Default::default() })
            .unwrap()
            .makespan(&p)
            .unwrap();
        prop_assert!(s >= opt - 1e-9);
        prop_assert!(s <= mct + 1e-9, "SA must not lose to its seed");
    }

    #[test]
    fn incompatibilities_always_respected(p in arb_problem_with_incompat()) {
        for h in all_heuristics() {
            let s = h.map(&p).unwrap();
            for (i, &j) in s.assignment.iter().enumerate() {
                prop_assert!(
                    p.time(i, j).is_finite(),
                    "{} assigned task {} to incompatible machine {}", h.name(), i, j
                );
            }
        }
        let g = ga(&p, &GaParams { generations: 60, ..Default::default() }).unwrap();
        for (i, &j) in g.assignment.iter().enumerate() {
            prop_assert!(p.time(i, j).is_finite());
        }
    }

    #[test]
    fn makespan_monotone_under_slowdown(p in arb_problem(), factor in 1.1_f64..3.0) {
        // Uniformly slowing every machine scales all makespans by the factor.
        let slow = MappingProblem::new(p.etc().scaled(factor)).unwrap();
        for h in all_heuristics() {
            let a = h.map(&p).unwrap().makespan(&p).unwrap();
            let b = h.map(&slow).unwrap().makespan(&slow).unwrap();
            prop_assert!((b - a * factor).abs() < 1e-6 * b.max(1.0),
                "{}: {} vs {}", h.name(), b, a * factor);
        }
    }
}
