//! Ensemble evaluation: heuristic performance as a function of the heterogeneity
//! measures (the paper's application [3] — "selecting appropriate heuristics to
//! use in an HC environment based on its heterogeneity").

use crate::ga::{ga, GaParams};
use crate::heuristics::{Heuristic, HeuristicKind};
use crate::problem::MappingProblem;
use hc_core::ecs::Ecs;
use hc_core::error::MeasureError;
use hc_core::report::characterize;
use hc_linalg::par;

/// Per-heuristic result on one instance.
#[derive(Debug, Clone)]
pub struct HeuristicResult {
    /// Heuristic display name.
    pub name: &'static str,
    /// Achieved makespan.
    pub makespan: f64,
    /// Makespan normalized by the best heuristic on the same instance (1 = won).
    pub relative: f64,
}

/// Results for one environment: its measures and every heuristic's makespan.
#[derive(Debug, Clone)]
pub struct InstanceStudy {
    /// MPH of the environment.
    pub mph: f64,
    /// TDH of the environment.
    pub tdh: f64,
    /// TMA of the environment.
    pub tma: f64,
    /// Per-heuristic outcomes (same order as the heuristic list passed in).
    pub results: Vec<HeuristicResult>,
}

impl InstanceStudy {
    /// Name of the winning heuristic (lowest makespan; first on ties).
    pub fn winner(&self) -> &'static str {
        self.results
            .iter()
            .min_by(|a, b| a.makespan.partial_cmp(&b.makespan).expect("finite"))
            .map(|r| r.name)
            .unwrap_or("-")
    }
}

/// Evaluates the heuristic suite on one environment.
pub fn study_instance(
    ecs: &Ecs,
    heuristics: &[HeuristicKind],
    include_ga: bool,
) -> Result<InstanceStudy, MeasureError> {
    let report = characterize(ecs)?;
    let p = MappingProblem::from_etc(&ecs.to_etc());
    let mut results = Vec::with_capacity(heuristics.len() + usize::from(include_ga));
    for h in heuristics {
        let s = h.map(&p)?;
        results.push(HeuristicResult {
            name: h.name(),
            makespan: s.makespan(&p)?,
            relative: 0.0,
        });
    }
    if include_ga {
        let s = ga(&p, &GaParams::default())?;
        results.push(HeuristicResult {
            name: "GA",
            makespan: s.makespan(&p)?,
            relative: 0.0,
        });
    }
    let best = results
        .iter()
        .map(|r| r.makespan)
        .fold(f64::INFINITY, f64::min);
    for r in &mut results {
        r.relative = r.makespan / best;
    }
    Ok(InstanceStudy {
        mph: report.mph,
        tdh: report.tdh,
        tma: report.tma,
        results,
    })
}

/// Evaluates the suite over an ensemble in parallel (index order preserved).
pub fn study_ensemble(
    envs: &[Ecs],
    heuristics: &[HeuristicKind],
    include_ga: bool,
) -> Vec<Result<InstanceStudy, MeasureError>> {
    par::par_map_indexed(envs.len(), par::num_threads(), |i| {
        study_instance(&envs[i], heuristics, include_ga)
    })
}

/// Win counts per heuristic name over an ensemble.
pub fn win_table(studies: &[InstanceStudy]) -> Vec<(&'static str, usize)> {
    let mut names: Vec<&'static str> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for s in studies {
        let w = s.winner();
        match names.iter().position(|&n| n == w) {
            Some(k) => counts[k] += 1,
            None => {
                names.push(w);
                counts.push(1);
            }
        }
    }
    let mut out: Vec<(&'static str, usize)> = names.into_iter().zip(counts).collect();
    out.sort_by_key(|w| std::cmp::Reverse(w.1));
    out
}

/// Pearson correlation between a measure extractor and a heuristic's relative
/// makespan over an ensemble (e.g., "does Min-Min's advantage grow with TMA?").
pub fn correlation(
    studies: &[InstanceStudy],
    measure: impl Fn(&InstanceStudy) -> f64,
    heuristic_name: &str,
) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = studies
        .iter()
        .filter_map(|s| {
            let r = s.results.iter().find(|r| r.name == heuristic_name)?;
            Some((measure(s), r.relative))
        })
        .collect();
    if pairs.len() < 3 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in &pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::all_heuristics;
    use hc_gen::targeted::{targeted, TargetSpec};

    fn env(tma: f64, seed: u64) -> Ecs {
        targeted(
            &TargetSpec {
                jitter: 0.5,
                ..TargetSpec::exact(10, 4, 0.7, 0.7, tma)
            },
            seed,
        )
        .unwrap()
    }

    #[test]
    fn instance_study_complete() {
        let e = env(0.2, 1);
        let s = study_instance(&e, &all_heuristics(), false).unwrap();
        assert_eq!(s.results.len(), all_heuristics().len());
        assert!(s.results.iter().any(|r| (r.relative - 1.0).abs() < 1e-12));
        assert!(s.results.iter().all(|r| r.relative >= 1.0 - 1e-12));
        assert!((s.tma - 0.2).abs() < 1e-4);
    }

    #[test]
    fn ga_included_when_requested() {
        let e = env(0.1, 2);
        let s = study_instance(&e, &[HeuristicKind::MinMin], true).unwrap();
        assert_eq!(s.results.len(), 2);
        assert_eq!(s.results[1].name, "GA");
        // GA seeded with Min-Min can only match or beat it.
        assert!(s.results[1].makespan <= s.results[0].makespan + 1e-12);
    }

    #[test]
    fn ensemble_study_and_win_table() {
        let envs: Vec<Ecs> = (0..6).map(|s| env(0.15, s)).collect();
        let studies: Vec<InstanceStudy> = study_ensemble(&envs, &all_heuristics(), false)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(studies.len(), 6);
        let wins = win_table(&studies);
        let total: usize = wins.iter().map(|w| w.1).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn correlation_computes() {
        let envs: Vec<Ecs> = [0.0, 0.1, 0.2, 0.3, 0.4]
            .iter()
            .enumerate()
            .map(|(i, &t)| env(t, i as u64))
            .collect();
        let studies: Vec<InstanceStudy> = study_ensemble(&envs, &all_heuristics(), false)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let c = correlation(&studies, |s| s.tma, "MET");
        assert!(c.is_some());
        assert!(c.unwrap().abs() <= 1.0 + 1e-12);
        assert!(correlation(&studies[..2], |s| s.tma, "MET").is_none());
        assert!(correlation(&studies, |s| s.tma, "nope").is_none());
    }
}
