//! The classic static mapping heuristics (Braun et al. 2001 suite).
//!
//! All heuristics are deterministic given the problem (ties broken by lowest
//! index) and run in the stated polynomial time:
//!
//! | heuristic | idea | complexity |
//! |---|---|---|
//! | OLB | next task → machine that becomes ready first | O(T·M) |
//! | MET | next task → machine with minimum execution time, ignoring load | O(T·M) |
//! | MCT | next task → machine with minimum completion time | O(T·M) |
//! | Min-Min | repeatedly commit the task whose best completion time is smallest | O(T²·M) |
//! | Max-Min | …whose best completion time is largest | O(T²·M) |
//! | Sufferage | …that would suffer most if denied its best machine | O(T²·M) |
//! | KPB | MCT restricted to the k% best-execution-time machines | O(T·M log M) |
//! | Duplex | better of Min-Min and Max-Min | O(T²·M) |
//!
//! The iterative searches of the same benchmark suite (GA, SA, Tabu) live in
//! [`crate::ga`] and [`crate::exact`].

use crate::problem::{MappingProblem, Schedule};
use hc_core::error::MeasureError;

/// A static mapping heuristic.
pub trait Heuristic {
    /// Short display name.
    fn name(&self) -> &'static str;
    /// Maps every task to a machine.
    fn map(&self, p: &MappingProblem) -> Result<Schedule, MeasureError>;
}

/// The built-in heuristic selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// Opportunistic Load Balancing.
    Olb,
    /// Minimum Execution Time.
    Met,
    /// Minimum Completion Time.
    Mct,
    /// Min-Min.
    MinMin,
    /// Max-Min.
    MaxMin,
    /// Sufferage.
    Sufferage,
    /// K-percent best (with `k` as a fraction of machines, rounded up).
    Kpb {
        /// Fraction of machines considered, in `(0, 1]`.
        percent: u8,
    },
    /// Duplex: run Min-Min and Max-Min, keep the better schedule (Braun et al.).
    Duplex,
}

impl Heuristic for HeuristicKind {
    fn name(&self) -> &'static str {
        match self {
            HeuristicKind::Olb => "OLB",
            HeuristicKind::Met => "MET",
            HeuristicKind::Mct => "MCT",
            HeuristicKind::MinMin => "Min-Min",
            HeuristicKind::MaxMin => "Max-Min",
            HeuristicKind::Sufferage => "Sufferage",
            HeuristicKind::Kpb { .. } => "KPB",
            HeuristicKind::Duplex => "Duplex",
        }
    }

    fn map(&self, p: &MappingProblem) -> Result<Schedule, MeasureError> {
        let mut obs = hc_obs::span("sched.heuristic");
        let evals_before = crate::problem::makespan_evals_on_thread();
        let result = match self {
            HeuristicKind::Olb => olb(p),
            HeuristicKind::Met => met(p),
            HeuristicKind::Mct => mct(p),
            HeuristicKind::MinMin => minmin_family(p, SelectRule::MinMin),
            HeuristicKind::MaxMin => minmin_family(p, SelectRule::MaxMin),
            HeuristicKind::Sufferage => minmin_family(p, SelectRule::Sufferage),
            HeuristicKind::Kpb { percent } => kpb(p, *percent),
            HeuristicKind::Duplex => {
                let a = minmin_family(p, SelectRule::MinMin)?;
                let b = minmin_family(p, SelectRule::MaxMin)?;
                Ok(if a.makespan(p)? <= b.makespan(p)? {
                    a
                } else {
                    b
                })
            }
        };
        // Thread-local delta: exact even when ensembles run heuristics on
        // many threads concurrently.
        let evals = crate::problem::makespan_evals_on_thread() - evals_before;
        let slug = self.name().to_ascii_lowercase().replace('-', "_");
        hc_obs::metrics::counter_owned(format!("sched_heuristic_runs_{slug}")).inc();
        hc_obs::metrics::counter_owned(format!("sched_makespan_evals_{slug}")).add(evals);
        if obs.armed() {
            obs.field_str("heuristic", self.name());
            obs.field_u64("tasks", p.num_tasks() as u64);
            obs.field_u64("machines", p.num_machines() as u64);
            obs.field_u64("makespan_evals", evals);
            obs.field_bool("ok", result.is_ok());
        }
        result
    }
}

impl std::str::FromStr for HeuristicKind {
    type Err = String;

    /// Parses the user-facing spelling shared by the CLI and the HTTP server:
    /// `olb | met | mct | min-min | max-min | sufferage | duplex | kpb=<pct>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "olb" => HeuristicKind::Olb,
            "duplex" => HeuristicKind::Duplex,
            "met" => HeuristicKind::Met,
            "mct" => HeuristicKind::Mct,
            "min-min" => HeuristicKind::MinMin,
            "max-min" => HeuristicKind::MaxMin,
            "sufferage" => HeuristicKind::Sufferage,
            other => match other.strip_prefix("kpb=") {
                Some(pct) => HeuristicKind::Kpb {
                    percent: pct
                        .parse()
                        .map_err(|_| format!("kpb=<pct>: bad percent {pct:?}"))?,
                },
                None => return Err(format!("unknown heuristic {other:?}")),
            },
        })
    }
}

/// All standard heuristics (KPB at 50%).
pub fn all_heuristics() -> Vec<HeuristicKind> {
    vec![
        HeuristicKind::Olb,
        HeuristicKind::Met,
        HeuristicKind::Mct,
        HeuristicKind::MinMin,
        HeuristicKind::MaxMin,
        HeuristicKind::Sufferage,
        HeuristicKind::Kpb { percent: 50 },
        HeuristicKind::Duplex,
    ]
}

fn incompatible(task: usize) -> MeasureError {
    MeasureError::InvalidEnvironment {
        reason: format!("task {task} has no compatible machine"),
    }
}

/// OLB: assign each task (arrival order) to the machine with the lowest current
/// load among compatible machines, ignoring execution time.
fn olb(p: &MappingProblem) -> Result<Schedule, MeasureError> {
    let mut loads = vec![0.0_f64; p.num_machines()];
    let mut assignment = Vec::with_capacity(p.num_tasks());
    for i in 0..p.num_tasks() {
        let j = p
            .compatible_machines(i)
            .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite loads"))
            .ok_or_else(|| incompatible(i))?;
        loads[j] += p.time(i, j);
        assignment.push(j);
    }
    Ok(Schedule { assignment })
}

/// MET: assign each task to its fastest machine, ignoring load.
fn met(p: &MappingProblem) -> Result<Schedule, MeasureError> {
    let mut assignment = Vec::with_capacity(p.num_tasks());
    for i in 0..p.num_tasks() {
        let j = p
            .compatible_machines(i)
            .min_by(|&a, &b| {
                p.time(i, a)
                    .partial_cmp(&p.time(i, b))
                    .expect("finite times")
            })
            .ok_or_else(|| incompatible(i))?;
        assignment.push(j);
    }
    Ok(Schedule { assignment })
}

/// MCT: assign each task (arrival order) to the machine minimizing its completion
/// time `load_j + ETC(i, j)`.
fn mct(p: &MappingProblem) -> Result<Schedule, MeasureError> {
    let mut loads = vec![0.0_f64; p.num_machines()];
    let mut assignment = Vec::with_capacity(p.num_tasks());
    for i in 0..p.num_tasks() {
        let j = p
            .compatible_machines(i)
            .min_by(|&a, &b| {
                (loads[a] + p.time(i, a))
                    .partial_cmp(&(loads[b] + p.time(i, b)))
                    .expect("finite")
            })
            .ok_or_else(|| incompatible(i))?;
        loads[j] += p.time(i, j);
        assignment.push(j);
    }
    Ok(Schedule { assignment })
}

enum SelectRule {
    MinMin,
    MaxMin,
    Sufferage,
}

/// The Min-Min / Max-Min / Sufferage family: repeatedly pick an unmapped task by
/// the rule, commit it to its best-completion-time machine, update loads.
fn minmin_family(p: &MappingProblem, rule: SelectRule) -> Result<Schedule, MeasureError> {
    let t = p.num_tasks();
    let mut loads = vec![0.0_f64; p.num_machines()];
    let mut assignment = vec![usize::MAX; t];
    let mut unmapped: Vec<usize> = (0..t).collect();

    while !unmapped.is_empty() {
        // For each unmapped task: best and second-best completion times.
        let mut chosen: Option<(usize, usize, f64)> = None; // (pos, machine, key)
        for (pos, &i) in unmapped.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            let mut second = f64::INFINITY;
            for j in p.compatible_machines(i) {
                let ct = loads[j] + p.time(i, j);
                match best {
                    None => best = Some((j, ct)),
                    Some((_, b)) if ct < b => {
                        second = b;
                        best = Some((j, ct));
                    }
                    Some(_) => second = second.min(ct),
                }
            }
            let (bj, bct) = best.ok_or_else(|| incompatible(i))?;
            let key = match rule {
                SelectRule::MinMin => -bct, // maximize -ct == minimize ct
                SelectRule::MaxMin => bct,
                SelectRule::Sufferage => {
                    if second.is_finite() {
                        second - bct
                    } else {
                        f64::INFINITY // sole-machine tasks suffer infinitely
                    }
                }
            };
            let better = match &chosen {
                None => true,
                Some((_, _, k)) => key > *k,
            };
            if better {
                chosen = Some((pos, bj, key));
            }
        }
        let (pos, j, _) = chosen.expect("unmapped non-empty");
        let i = unmapped.swap_remove(pos);
        loads[j] += p.time(i, j);
        assignment[i] = j;
    }
    Ok(Schedule { assignment })
}

/// KPB: like MCT but each task only considers its `⌈percent% × M⌉` best
/// execution-time machines.
fn kpb(p: &MappingProblem, percent: u8) -> Result<Schedule, MeasureError> {
    if percent == 0 || percent > 100 {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("KPB percent must be in 1..=100, got {percent}"),
        });
    }
    let m = p.num_machines();
    let k = ((percent as usize * m).div_ceil(100)).max(1);
    let mut loads = vec![0.0_f64; m];
    let mut assignment = Vec::with_capacity(p.num_tasks());
    for i in 0..p.num_tasks() {
        let mut machines: Vec<usize> = p.compatible_machines(i).collect();
        if machines.is_empty() {
            return Err(incompatible(i));
        }
        machines.sort_by(|&a, &b| {
            p.time(i, a)
                .partial_cmp(&p.time(i, b))
                .expect("finite")
                .then(a.cmp(&b))
        });
        machines.truncate(k.min(machines.len()));
        let j = machines
            .into_iter()
            .min_by(|&a, &b| {
                (loads[a] + p.time(i, a))
                    .partial_cmp(&(loads[b] + p.time(i, b)))
                    .expect("finite")
            })
            .expect("non-empty");
        loads[j] += p.time(i, j);
        assignment.push(j);
    }
    Ok(Schedule { assignment })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::makespan_lower_bound;
    use hc_linalg::Matrix;

    fn problem(rows: &[&[f64]]) -> MappingProblem {
        MappingProblem::new(Matrix::from_rows(rows).unwrap()).unwrap()
    }

    #[test]
    fn heuristic_kind_from_str() {
        assert_eq!("olb".parse::<HeuristicKind>().unwrap(), HeuristicKind::Olb);
        assert_eq!(
            "min-min".parse::<HeuristicKind>().unwrap(),
            HeuristicKind::MinMin
        );
        assert_eq!(
            "kpb=25".parse::<HeuristicKind>().unwrap(),
            HeuristicKind::Kpb { percent: 25 }
        );
        assert!("kpb=abc".parse::<HeuristicKind>().is_err());
        assert!("bogus".parse::<HeuristicKind>().is_err());
        // Meta-selectors (all/ga/sa/tabu/optimal) are not heuristics.
        assert!("all".parse::<HeuristicKind>().is_err());
    }

    #[test]
    fn met_picks_fastest_machine() {
        let p = problem(&[&[5.0, 1.0], &[1.0, 5.0]]);
        let s = HeuristicKind::Met.map(&p).unwrap();
        assert_eq!(s.assignment, vec![1, 0]);
        assert_eq!(s.makespan(&p).unwrap(), 1.0);
    }

    #[test]
    fn met_ignores_load_pathology() {
        // All tasks fastest on machine 0: MET piles them up.
        let p = problem(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let s = HeuristicKind::Met.map(&p).unwrap();
        assert!(s.assignment.iter().all(|&j| j == 0));
        assert_eq!(s.makespan(&p).unwrap(), 4.0);
        // MCT balances.
        let s = HeuristicKind::Mct.map(&p).unwrap();
        assert!(s.makespan(&p).unwrap() < 4.0);
    }

    #[test]
    fn mct_greedy_completion() {
        let p = problem(&[&[2.0, 3.0], &[2.0, 3.0]]);
        let s = HeuristicKind::Mct.map(&p).unwrap();
        // Task 0 → m0 (2 < 3); task 1 → m1 (load 2+2=4 vs 3).
        assert_eq!(s.assignment, vec![0, 1]);
        assert_eq!(s.makespan(&p).unwrap(), 3.0);
    }

    #[test]
    fn olb_balances_loads_ignoring_times() {
        let p = problem(&[&[1.0, 100.0], &[1.0, 100.0]]);
        let s = HeuristicKind::Olb.map(&p).unwrap();
        // Task 0 → m0 (load 0 tie, lowest index), task 1 → m1 (load 0 < 1).
        assert_eq!(s.assignment, vec![0, 1]);
        assert_eq!(s.makespan(&p).unwrap(), 100.0);
    }

    #[test]
    fn minmin_beats_maxmin_on_consistent_small_case() {
        // Classic example where Min-Min commits cheap tasks first.
        let p = problem(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let min = HeuristicKind::MinMin.map(&p).unwrap();
        let max = HeuristicKind::MaxMin.map(&p).unwrap();
        let lb = makespan_lower_bound(&p);
        assert!(min.makespan(&p).unwrap() >= lb);
        assert!(max.makespan(&p).unwrap() >= lb);
    }

    #[test]
    fn sufferage_prioritizes_high_penalty_tasks() {
        // Task 0 suffers hugely without machine 0; task 1 barely cares. With both
        // contending for machine 0, sufferage gives it to task 0.
        let p = problem(&[&[1.0, 100.0], &[1.0, 1.5]]);
        let s = HeuristicKind::Sufferage.map(&p).unwrap();
        assert_eq!(s.assignment[0], 0, "high-sufferage task gets its machine");
        assert!(s.makespan(&p).unwrap() <= 1.5 + 1e-12);
    }

    #[test]
    fn kpb_limits_choice() {
        // percent=1 on 2 machines → k=1: degenerates to MET.
        let p = problem(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let kpb1 = HeuristicKind::Kpb { percent: 1 }.map(&p).unwrap();
        let met = HeuristicKind::Met.map(&p).unwrap();
        assert_eq!(kpb1.assignment, met.assignment);
        // percent=100 → full MCT behaviour.
        let kpb100 = HeuristicKind::Kpb { percent: 100 }.map(&p).unwrap();
        let mct = HeuristicKind::Mct.map(&p).unwrap();
        assert_eq!(kpb100.assignment, mct.assignment);
    }

    #[test]
    fn kpb_bad_percent_rejected() {
        let p = problem(&[&[1.0, 2.0]]);
        assert!(HeuristicKind::Kpb { percent: 0 }.map(&p).is_err());
        assert!(HeuristicKind::Kpb { percent: 101 }.map(&p).is_err());
    }

    #[test]
    fn incompatibility_respected_by_all() {
        let p = problem(&[&[f64::INFINITY, 2.0], &[1.0, f64::INFINITY]]);
        for h in all_heuristics() {
            let s = h.map(&p).unwrap();
            assert_eq!(s.assignment, vec![1, 0], "{}", h.name());
        }
    }

    #[test]
    fn all_heuristics_produce_valid_schedules() {
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
            &[3.0, 3.0, 3.0],
        ]);
        let lb = makespan_lower_bound(&p);
        for h in all_heuristics() {
            let s = h.map(&p).unwrap();
            let mk = s.makespan(&p).unwrap();
            assert!(
                mk.is_finite() && mk >= lb - 1e-12,
                "{}: {mk} < {lb}",
                h.name()
            );
            assert_eq!(s.assignment.len(), 5);
        }
    }

    #[test]
    fn duplex_is_min_of_minmin_maxmin() {
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
        ]);
        let d = HeuristicKind::Duplex.map(&p).unwrap().makespan(&p).unwrap();
        let a = HeuristicKind::MinMin.map(&p).unwrap().makespan(&p).unwrap();
        let b = HeuristicKind::MaxMin.map(&p).unwrap().makespan(&p).unwrap();
        assert_eq!(d, a.min(b));
    }

    #[test]
    fn names_unique() {
        let names: Vec<&str> = all_heuristics().iter().map(|h| h.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
