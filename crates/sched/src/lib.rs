//! # hc-sched — independent-task mapping heuristics
//!
//! The paper motivates its measures partly by *"selecting appropriate heuristics
//! to use in an HC environment based on its heterogeneity"* (reference [3]). This
//! crate supplies that substrate: the classic static mapping heuristics for
//! independent tasks on heterogeneous machines (the Braun et al. 2001 suite the
//! paper cites as reference [6]) plus a steady-state genetic algorithm, a makespan
//! evaluator, and ensemble studies correlating heuristic performance with the
//! (MPH, TDH, TMA) measures.
//!
//! Heuristics implemented: OLB, MET, MCT, Min-Min, Max-Min, Sufferage, KPB, and
//! a GA seeded by Min-Min. All operate on an ETC matrix where row `i` is a task
//! (an instance to execute once) and column `j` a machine; `∞` marks
//! incompatibility.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod eval;
pub mod exact;
pub mod ga;
pub mod heuristics;
pub mod problem;
pub mod robustness;

pub use heuristics::{all_heuristics, Heuristic, HeuristicKind};
pub use problem::{MappingProblem, Schedule};
