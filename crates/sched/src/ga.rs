//! A steady-state genetic algorithm for static mapping (the GA baseline of the
//! Braun et al. comparison study the paper cites as reference [6]).
//!
//! Chromosome = assignment vector. Population seeded with Min-Min plus random
//! valid assignments; tournament selection, uniform crossover, point mutation
//! (reassign one task to a random compatible machine), elitist replacement.
//! Deterministic for a given seed.

use crate::heuristics::{Heuristic, HeuristicKind};
use crate::problem::{MappingProblem, Schedule};
use hc_core::error::MeasureError;
use hc_gen::rng::{Rng, StdRng};

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene crossover probability (uniform crossover).
    pub crossover_rate: f64,
    /// Per-chromosome mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 40,
            generations: 300,
            crossover_rate: 0.5,
            mutation_rate: 0.6,
            tournament: 3,
            seed: 0,
        }
    }
}

/// Runs the GA and returns the best schedule found.
pub fn ga(p: &MappingProblem, params: &GaParams) -> Result<Schedule, MeasureError> {
    if params.population < 2 || params.tournament == 0 {
        return Err(MeasureError::InvalidEnvironment {
            reason: "GA needs population >= 2 and tournament >= 1".into(),
        });
    }
    let mut obs = hc_obs::span("sched.ga");
    let evals_before = crate::problem::makespan_evals_on_thread();
    let t = p.num_tasks();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Pre-compute compatible machine lists.
    let compat: Vec<Vec<usize>> = (0..t).map(|i| p.compatible_machines(i).collect()).collect();
    for (i, c) in compat.iter().enumerate() {
        if c.is_empty() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("task {i} has no compatible machine"),
            });
        }
    }
    let random_chrom = |rng: &mut StdRng| -> Vec<usize> {
        (0..t)
            .map(|i| compat[i][rng.gen_range(0..compat[i].len())])
            .collect()
    };

    // Seed population: Min-Min + MCT + randoms.
    let mut pop: Vec<Vec<usize>> = Vec::with_capacity(params.population);
    pop.push(HeuristicKind::MinMin.map(p)?.assignment);
    pop.push(HeuristicKind::Mct.map(p)?.assignment);
    while pop.len() < params.population {
        pop.push(random_chrom(&mut rng));
    }

    let fitness = |chrom: &[usize]| -> f64 {
        Schedule {
            assignment: chrom.to_vec(),
        }
        .makespan(p)
        .expect("chromosomes are valid by construction")
    };
    let mut fit: Vec<f64> = pop.iter().map(|c| fitness(c)).collect();

    let tournament = params.tournament;
    let select = |rng: &mut StdRng, fit: &[f64]| -> usize {
        let mut best = rng.gen_range(0..fit.len());
        for _ in 1..tournament {
            let c = rng.gen_range(0..fit.len());
            if fit[c] < fit[best] {
                best = c;
            }
        }
        best
    };

    for _ in 0..params.generations {
        // Produce one offspring; replace the worst if improved (steady state).
        let a = select(&mut rng, &fit);
        let b = select(&mut rng, &fit);
        let mut child: Vec<usize> = (0..t)
            .map(|i| {
                if rng.gen_bool(params.crossover_rate) {
                    pop[a][i]
                } else {
                    pop[b][i]
                }
            })
            .collect();
        if rng.gen_bool(params.mutation_rate) {
            let i = rng.gen_range(0..t);
            child[i] = compat[i][rng.gen_range(0..compat[i].len())];
        }
        let f = fitness(&child);
        let worst = (0..pop.len())
            .max_by(|&x, &y| fit[x].partial_cmp(&fit[y]).expect("finite"))
            .expect("non-empty");
        if f < fit[worst] {
            pop[worst] = child;
            fit[worst] = f;
        }
    }

    let best = (0..pop.len())
        .min_by(|&x, &y| fit[x].partial_cmp(&fit[y]).expect("finite"))
        .expect("non-empty");
    let evals = crate::problem::makespan_evals_on_thread() - evals_before;
    hc_obs::obs_counter!("sched_heuristic_runs_ga").inc();
    hc_obs::obs_counter!("sched_makespan_evals_ga").add(evals);
    if obs.armed() {
        obs.field_u64("tasks", t as u64);
        obs.field_u64("generations", params.generations as u64);
        obs.field_u64("makespan_evals", evals);
        obs.field_f64("best_makespan", fit[best]);
    }
    Ok(Schedule {
        assignment: pop[best].clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_linalg::Matrix;

    fn problem(rows: &[&[f64]]) -> MappingProblem {
        MappingProblem::new(Matrix::from_rows(rows).unwrap()).unwrap()
    }

    #[test]
    fn ga_never_worse_than_minmin() {
        // Elitist steady state seeded with Min-Min ⇒ result ≤ Min-Min.
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
            &[3.0, 3.0, 3.0],
            &[6.0, 2.0, 4.0],
        ]);
        let minmin = HeuristicKind::MinMin.map(&p).unwrap().makespan(&p).unwrap();
        let g = ga(&p, &GaParams::default()).unwrap().makespan(&p).unwrap();
        assert!(g <= minmin + 1e-12, "GA {g} vs Min-Min {minmin}");
    }

    #[test]
    fn ga_finds_optimum_on_tiny_instance() {
        // 2 tasks, 2 machines; optimum splits them: makespan 2.
        let p = problem(&[&[2.0, 5.0], &[5.0, 2.0]]);
        let g = ga(&p, &GaParams::default()).unwrap();
        assert_eq!(g.makespan(&p).unwrap(), 2.0);
    }

    #[test]
    fn ga_deterministic_per_seed() {
        let p = problem(&[&[4.0, 1.0], &[2.0, 6.0], &[9.0, 2.0]]);
        let a = ga(&p, &GaParams::default()).unwrap();
        let b = ga(&p, &GaParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ga_respects_compatibility() {
        let p = problem(&[&[f64::INFINITY, 2.0], &[1.0, f64::INFINITY]]);
        let g = ga(&p, &GaParams::default()).unwrap();
        assert_eq!(g.assignment, vec![1, 0]);
    }

    #[test]
    fn ga_param_validation() {
        let p = problem(&[&[1.0]]);
        assert!(ga(
            &p,
            &GaParams {
                population: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(ga(
            &p,
            &GaParams {
                tournament: 0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
