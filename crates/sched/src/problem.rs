//! The static mapping problem: assign each independent task to one machine,
//! minimizing makespan.

use hc_core::error::MeasureError;
use hc_linalg::Matrix;

/// A static mapping instance. `etc[(i, j)]` is task `i`'s runtime on machine `j`
/// (`∞` = incompatible).
#[derive(Debug, Clone)]
pub struct MappingProblem {
    etc: Matrix,
}

impl MappingProblem {
    /// Builds a problem from an ETC matrix. Every task must be runnable on at
    /// least one machine; entries must be positive or `∞`.
    pub fn new(etc: Matrix) -> Result<Self, MeasureError> {
        if etc.is_empty() {
            return Err(MeasureError::InvalidEnvironment {
                reason: "empty ETC matrix".into(),
            });
        }
        for i in 0..etc.rows() {
            let mut any = false;
            for j in 0..etc.cols() {
                let v = etc[(i, j)];
                if v.is_nan() || v <= 0.0 {
                    return Err(MeasureError::InvalidEnvironment {
                        reason: format!("ETC({i}, {j}) = {v}; must be positive or +inf"),
                    });
                }
                if v.is_finite() {
                    any = true;
                }
            }
            if !any {
                return Err(MeasureError::InvalidEnvironment {
                    reason: format!("task {i} cannot run on any machine"),
                });
            }
        }
        Ok(MappingProblem { etc })
    }

    /// From a labeled [`hc_core::ecs::Etc`] environment.
    pub fn from_etc(etc: &hc_core::ecs::Etc) -> Self {
        MappingProblem {
            etc: etc.matrix().clone(),
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.etc.rows()
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.etc.cols()
    }

    /// Runtime of task `i` on machine `j`.
    pub fn time(&self, task: usize, machine: usize) -> f64 {
        self.etc[(task, machine)]
    }

    /// The raw ETC matrix.
    pub fn etc(&self) -> &Matrix {
        &self.etc
    }

    /// Machines able to run `task` (finite ETC).
    pub fn compatible_machines(&self, task: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_machines()).filter(move |&j| self.etc[(task, j)].is_finite())
    }
}

/// A complete assignment of tasks to machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `assignment[i]` = machine executing task `i`.
    pub assignment: Vec<usize>,
}

impl Schedule {
    /// Validates against a problem and computes per-machine finish times.
    pub fn machine_loads(&self, p: &MappingProblem) -> Result<Vec<f64>, MeasureError> {
        if self.assignment.len() != p.num_tasks() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!(
                    "schedule covers {} tasks; problem has {}",
                    self.assignment.len(),
                    p.num_tasks()
                ),
            });
        }
        let mut loads = vec![0.0; p.num_machines()];
        for (i, &j) in self.assignment.iter().enumerate() {
            if j >= p.num_machines() {
                return Err(MeasureError::InvalidEnvironment {
                    reason: format!("task {i} assigned to nonexistent machine {j}"),
                });
            }
            let t = p.time(i, j);
            if !t.is_finite() {
                return Err(MeasureError::InvalidEnvironment {
                    reason: format!("task {i} assigned to incompatible machine {j}"),
                });
            }
            loads[j] += t;
        }
        Ok(loads)
    }

    /// Makespan: the maximum machine finish time.
    ///
    /// Every call is counted (globally and per thread, see
    /// [`makespan_evals_on_thread`]) — this is the unit of work the mapping
    /// heuristics and metaheuristics spend their time on.
    pub fn makespan(&self, p: &MappingProblem) -> Result<f64, MeasureError> {
        hc_obs::obs_counter!("sched_makespan_evals_total").inc();
        MAKESPAN_EVALS.with(|c| c.set(c.get() + 1));
        Ok(self.machine_loads(p)?.into_iter().fold(0.0_f64, f64::max))
    }

    /// Total accumulated machine time (flowtime of loads).
    pub fn total_time(&self, p: &MappingProblem) -> Result<f64, MeasureError> {
        Ok(self.machine_loads(p)?.into_iter().sum())
    }
}

thread_local! {
    static MAKESPAN_EVALS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`Schedule::makespan`] evaluations performed by the current
/// thread since it started. Callers (heuristic wrappers, the GA) snapshot
/// this before/after a run to attribute evaluation counts race-free even when
/// many instances are studied in parallel.
pub fn makespan_evals_on_thread() -> u64 {
    MAKESPAN_EVALS.with(|c| c.get())
}

/// A trivial lower bound on the makespan: `max(max_i min_j ETC(i,j),
/// Σ_i min_j ETC(i,j) / M)`. Used to sanity-check heuristic outputs in tests.
pub fn makespan_lower_bound(p: &MappingProblem) -> f64 {
    let mins: Vec<f64> = (0..p.num_tasks())
        .map(|i| {
            p.compatible_machines(i)
                .map(|j| p.time(i, j))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let max_min = mins.iter().copied().fold(0.0_f64, f64::max);
    let avg = mins.iter().sum::<f64>() / p.num_machines() as f64;
    max_min.max(avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p22() -> MappingProblem {
        MappingProblem::new(Matrix::from_rows(&[&[1.0, 4.0], &[3.0, 2.0]]).unwrap()).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(MappingProblem::new(Matrix::zeros(0, 0)).is_err());
        assert!(MappingProblem::new(Matrix::from_rows(&[&[0.0, 1.0]]).unwrap()).is_err());
        assert!(MappingProblem::new(Matrix::from_rows(&[&[-1.0, 1.0]]).unwrap()).is_err());
        assert!(MappingProblem::new(
            Matrix::from_rows(&[&[f64::INFINITY, f64::INFINITY]]).unwrap()
        )
        .is_err());
        assert!(MappingProblem::new(Matrix::from_rows(&[&[f64::INFINITY, 2.0]]).unwrap()).is_ok());
    }

    #[test]
    fn makespan_computation() {
        let p = p22();
        let s = Schedule {
            assignment: vec![0, 1],
        };
        assert_eq!(s.machine_loads(&p).unwrap(), vec![1.0, 2.0]);
        assert_eq!(s.makespan(&p).unwrap(), 2.0);
        assert_eq!(s.total_time(&p).unwrap(), 3.0);
        let both_on_0 = Schedule {
            assignment: vec![0, 0],
        };
        assert_eq!(both_on_0.makespan(&p).unwrap(), 4.0);
    }

    #[test]
    fn schedule_validation() {
        let p = p22();
        assert!(Schedule {
            assignment: vec![0]
        }
        .makespan(&p)
        .is_err());
        assert!(Schedule {
            assignment: vec![0, 5]
        }
        .makespan(&p)
        .is_err());
        let incompat =
            MappingProblem::new(Matrix::from_rows(&[&[f64::INFINITY, 2.0]]).unwrap()).unwrap();
        assert!(Schedule {
            assignment: vec![0]
        }
        .makespan(&incompat)
        .is_err());
    }

    #[test]
    fn lower_bound_sane() {
        let p = p22();
        // mins = [1, 2]; max_min = 2; avg = 1.5 → bound 2.
        assert_eq!(makespan_lower_bound(&p), 2.0);
        // Optimal schedule achieves it here.
        let opt = Schedule {
            assignment: vec![0, 1],
        };
        assert!(opt.makespan(&p).unwrap() >= makespan_lower_bound(&p) - 1e-12);
    }

    #[test]
    fn compatible_machines_iter() {
        let p =
            MappingProblem::new(Matrix::from_rows(&[&[f64::INFINITY, 2.0, 3.0]]).unwrap()).unwrap();
        let c: Vec<usize> = p.compatible_machines(0).collect();
        assert_eq!(c, vec![1, 2]);
    }
}
