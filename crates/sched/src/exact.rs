//! Exact (brute-force) makespan optimization for tiny instances, used as ground
//! truth when validating the heuristics, plus a simulated-annealing mapper.

use crate::heuristics::{Heuristic, HeuristicKind};
use crate::problem::{MappingProblem, Schedule};
use hc_core::error::MeasureError;
use hc_gen::rng::{Rng, StdRng};

/// Exhaustive search over all `Mᵀ` assignments with branch-and-bound pruning.
/// Intended for `Mᵀ ≲ 10⁷` (the `limit` guard rejects larger instances).
pub fn optimal(p: &MappingProblem, limit: f64) -> Result<Schedule, MeasureError> {
    let t = p.num_tasks();
    let m = p.num_machines();
    let space = (m as f64).powi(t as i32);
    if space > limit {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("search space {space:.1e} exceeds limit {limit:.1e}"),
        });
    }
    // Order tasks by decreasing best time: failing early prunes more.
    let mut order: Vec<usize> = (0..t).collect();
    let best_time = |i: usize| -> f64 {
        p.compatible_machines(i)
            .map(|j| p.time(i, j))
            .fold(f64::INFINITY, f64::min)
    };
    order.sort_by(|&a, &b| best_time(b).partial_cmp(&best_time(a)).expect("finite"));

    // Start from a greedy incumbent (MCT) so pruning bites immediately.
    let incumbent = HeuristicKind::Mct.map(p)?;
    let mut best_makespan = incumbent.makespan(p)?;
    let mut best = incumbent.assignment;

    let mut loads = vec![0.0_f64; m];
    let mut current = vec![usize::MAX; t];

    fn dfs(
        depth: usize,
        order: &[usize],
        p: &MappingProblem,
        loads: &mut Vec<f64>,
        current: &mut Vec<usize>,
        best_makespan: &mut f64,
        best: &mut Vec<usize>,
    ) {
        if depth == order.len() {
            let mk = loads.iter().copied().fold(0.0_f64, f64::max);
            if mk < *best_makespan {
                *best_makespan = mk;
                best.clone_from(current);
            }
            return;
        }
        let i = order[depth];
        for j in 0..p.num_machines() {
            let time = p.time(i, j);
            if !time.is_finite() {
                continue;
            }
            if loads[j] + time >= *best_makespan {
                continue; // bound: this branch cannot improve
            }
            loads[j] += time;
            current[i] = j;
            dfs(depth + 1, order, p, loads, current, best_makespan, best);
            loads[j] -= time;
            current[i] = usize::MAX;
        }
    }
    dfs(
        0,
        &order,
        p,
        &mut loads,
        &mut current,
        &mut best_makespan,
        &mut best,
    );
    Ok(Schedule { assignment: best })
}

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy)]
pub struct SaParams {
    /// Iterations.
    pub iterations: usize,
    /// Initial temperature as a fraction of the starting makespan.
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            iterations: 20_000,
            initial_temp: 0.3,
            cooling: 0.9995,
            seed: 0,
        }
    }
}

/// Simulated annealing seeded with MCT: random single-task reassignment moves,
/// Metropolis acceptance, returns the best state visited.
pub fn simulated_annealing(
    p: &MappingProblem,
    params: &SaParams,
) -> Result<Schedule, MeasureError> {
    let t = p.num_tasks();
    let compat: Vec<Vec<usize>> = (0..t).map(|i| p.compatible_machines(i).collect()).collect();
    for (i, c) in compat.iter().enumerate() {
        if c.is_empty() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("task {i} has no compatible machine"),
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let seedsched = HeuristicKind::Mct.map(p)?;
    let mut current = seedsched.assignment;
    let mut loads = vec![0.0_f64; p.num_machines()];
    for (i, &j) in current.iter().enumerate() {
        loads[j] += p.time(i, j);
    }
    let makespan = |loads: &[f64]| loads.iter().copied().fold(0.0_f64, f64::max);
    let mut cur_mk = makespan(&loads);
    let mut best = current.clone();
    let mut best_mk = cur_mk;
    let mut temp = params.initial_temp * cur_mk.max(f64::MIN_POSITIVE);

    for _ in 0..params.iterations {
        let i = rng.gen_range(0..t);
        let to = compat[i][rng.gen_range(0..compat[i].len())];
        let from = current[i];
        if to == from {
            temp *= params.cooling;
            continue;
        }
        loads[from] -= p.time(i, from);
        loads[to] += p.time(i, to);
        let new_mk = makespan(&loads);
        let accept =
            new_mk <= cur_mk || (temp > 0.0 && rng.next_f64() < ((cur_mk - new_mk) / temp).exp());
        if accept {
            current[i] = to;
            cur_mk = new_mk;
            if cur_mk < best_mk {
                best_mk = cur_mk;
                best.clone_from(&current);
            }
        } else {
            loads[to] -= p.time(i, to);
            loads[from] += p.time(i, from);
        }
        temp *= params.cooling;
    }
    Ok(Schedule { assignment: best })
}

/// Tabu-search parameters.
#[derive(Debug, Clone, Copy)]
pub struct TabuParams {
    /// Total move evaluations.
    pub iterations: usize,
    /// Tabu tenure: how many iterations a reversed move stays forbidden.
    pub tenure: usize,
    /// RNG seed (used only to diversify when the neighbourhood is exhausted).
    pub seed: u64,
}

impl Default for TabuParams {
    fn default() -> Self {
        TabuParams {
            iterations: 5_000,
            tenure: 12,
            seed: 0,
        }
    }
}

/// Short-hop tabu search (Braun et al.'s Tabu entrant, simplified): start from
/// MCT, explore single-task reassignment moves, always take the best
/// non-tabu neighbour (even if worsening), keep the best schedule seen.
/// Aspiration: a tabu move is allowed when it improves the global best.
pub fn tabu(p: &MappingProblem, params: &TabuParams) -> Result<Schedule, MeasureError> {
    let t = p.num_tasks();
    let m = p.num_machines();
    let compat: Vec<Vec<usize>> = (0..t).map(|i| p.compatible_machines(i).collect()).collect();
    for (i, c) in compat.iter().enumerate() {
        if c.is_empty() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("task {i} has no compatible machine"),
            });
        }
    }
    let mut current = HeuristicKind::Mct.map(p)?.assignment;
    let mut loads = vec![0.0_f64; m];
    for (i, &j) in current.iter().enumerate() {
        loads[j] += p.time(i, j);
    }
    let makespan = |loads: &[f64]| loads.iter().copied().fold(0.0_f64, f64::max);
    let mut best = current.clone();
    let mut best_mk = makespan(&loads);
    // tabu_until[(task, machine)] = iteration until which moving `task` to
    // `machine` is forbidden.
    let mut tabu_until = vec![0usize; t * m];
    let mut rng = StdRng::seed_from_u64(params.seed);

    for it in 1..=params.iterations {
        // Best single-task move in the whole neighbourhood.
        let mut chosen: Option<(usize, usize, f64)> = None; // (task, to, new_mk)
        for i in 0..t {
            let from = current[i];
            for &to in &compat[i] {
                if to == from {
                    continue;
                }
                let l_from = loads[from] - p.time(i, from);
                let l_to = loads[to] + p.time(i, to);
                // New makespan: max over unchanged machines and the two edited.
                let mut mk = l_from.max(l_to);
                for (j, &l) in loads.iter().enumerate() {
                    if j != from && j != to {
                        mk = mk.max(l);
                    }
                }
                let is_tabu = tabu_until[i * m + to] > it;
                if is_tabu && mk >= best_mk {
                    continue; // aspiration only for global improvements
                }
                if chosen.map(|(_, _, c)| mk < c).unwrap_or(true) {
                    chosen = Some((i, to, mk));
                }
            }
        }
        let Some((i, to, _)) = chosen else {
            // Fully tabu neighbourhood: random restart move.
            let i = rng.gen_range(0..t);
            let to = compat[i][rng.gen_range(0..compat[i].len())];
            let from = current[i];
            loads[from] -= p.time(i, from);
            loads[to] += p.time(i, to);
            current[i] = to;
            continue;
        };
        let from = current[i];
        loads[from] -= p.time(i, from);
        loads[to] += p.time(i, to);
        current[i] = to;
        // Forbid moving the task straight back.
        tabu_until[i * m + from] = it + params.tenure;
        let mk = makespan(&loads);
        if mk < best_mk {
            best_mk = mk;
            best.clone_from(&current);
        }
    }
    Ok(Schedule { assignment: best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::all_heuristics;
    use crate::problem::makespan_lower_bound;
    use hc_linalg::Matrix;

    fn problem(rows: &[&[f64]]) -> MappingProblem {
        MappingProblem::new(Matrix::from_rows(rows).unwrap()).unwrap()
    }

    #[test]
    fn optimal_on_known_instance() {
        // Optimum: t0→m0 (2), t1→m1 (2): makespan 2.
        let p = problem(&[&[2.0, 5.0], &[5.0, 2.0]]);
        let s = optimal(&p, 1e7).unwrap();
        assert_eq!(s.makespan(&p).unwrap(), 2.0);
    }

    #[test]
    fn optimal_beats_or_matches_every_heuristic() {
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
            &[3.0, 3.0, 3.0],
            &[5.0, 4.0, 2.0],
            &[2.0, 7.0, 6.0],
        ]);
        let opt = optimal(&p, 1e7).unwrap().makespan(&p).unwrap();
        assert!(opt >= makespan_lower_bound(&p) - 1e-9);
        for h in all_heuristics() {
            let mk = h.map(&p).unwrap().makespan(&p).unwrap();
            assert!(mk >= opt - 1e-9, "{} beat the optimum?!", h.name());
        }
        // On this instance at least one heuristic is strictly suboptimal —
        // otherwise the test is vacuous.
        let worst = all_heuristics()
            .iter()
            .map(|h| h.map(&p).unwrap().makespan(&p).unwrap())
            .fold(0.0_f64, f64::max);
        assert!(worst > opt + 1e-9, "instance too easy");
    }

    #[test]
    fn optimal_respects_incompatibility() {
        let p = problem(&[&[f64::INFINITY, 3.0], &[2.0, f64::INFINITY]]);
        let s = optimal(&p, 1e6).unwrap();
        assert_eq!(s.assignment, vec![1, 0]);
    }

    #[test]
    fn optimal_limit_guard() {
        let p = problem(&[&[1.0; 4]; 20].iter().map(|r| &r[..]).collect::<Vec<_>>());
        assert!(optimal(&p, 1e6).is_err());
    }

    #[test]
    fn sa_never_worse_than_mct_seed() {
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
        ]);
        let mct = HeuristicKind::Mct.map(&p).unwrap().makespan(&p).unwrap();
        let sa = simulated_annealing(&p, &SaParams::default())
            .unwrap()
            .makespan(&p)
            .unwrap();
        assert!(sa <= mct + 1e-12, "SA {sa} vs MCT {mct}");
    }

    #[test]
    fn sa_close_to_optimal_on_small_instance() {
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
            &[3.0, 3.0, 3.0],
            &[5.0, 4.0, 2.0],
        ]);
        let opt = optimal(&p, 1e7).unwrap().makespan(&p).unwrap();
        let sa = simulated_annealing(&p, &SaParams::default())
            .unwrap()
            .makespan(&p)
            .unwrap();
        assert!(sa <= opt * 1.15, "SA {sa} vs optimum {opt}");
    }

    #[test]
    fn tabu_never_worse_than_mct_seed() {
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
            &[3.0, 3.0, 3.0],
        ]);
        let mct = HeuristicKind::Mct.map(&p).unwrap().makespan(&p).unwrap();
        let t = tabu(&p, &TabuParams::default())
            .unwrap()
            .makespan(&p)
            .unwrap();
        assert!(t <= mct + 1e-12, "Tabu {t} vs MCT {mct}");
    }

    #[test]
    fn tabu_close_to_optimal() {
        let p = problem(&[
            &[4.0, 1.0, 7.0],
            &[2.0, 6.0, 3.0],
            &[9.0, 2.0, 1.0],
            &[1.0, 8.0, 5.0],
            &[3.0, 3.0, 3.0],
            &[5.0, 4.0, 2.0],
        ]);
        let opt = optimal(&p, 1e7).unwrap().makespan(&p).unwrap();
        let t = tabu(&p, &TabuParams::default())
            .unwrap()
            .makespan(&p)
            .unwrap();
        assert!(t >= opt - 1e-9);
        assert!(t <= opt * 1.1, "Tabu {t} vs optimum {opt}");
    }

    #[test]
    fn tabu_respects_compatibility_and_determinism() {
        let p = problem(&[&[f64::INFINITY, 2.0], &[1.0, f64::INFINITY]]);
        let t = tabu(&p, &TabuParams::default()).unwrap();
        assert_eq!(t.assignment, vec![1, 0]);
        let p2 = problem(&[&[4.0, 1.0], &[2.0, 6.0], &[9.0, 2.0]]);
        let a = tabu(&p2, &TabuParams::default()).unwrap();
        let b = tabu(&p2, &TabuParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sa_deterministic_per_seed() {
        let p = problem(&[&[4.0, 1.0], &[2.0, 6.0], &[9.0, 2.0]]);
        let a = simulated_annealing(&p, &SaParams::default()).unwrap();
        let b = simulated_annealing(&p, &SaParams::default()).unwrap();
        assert_eq!(a, b);
    }
}
