//! Makespan robustness of a schedule against ETC estimation error.
//!
//! The authors' broader research program (the paper's references [1], [11] and
//! the "robust heterogeneous computing systems" interest noted in the
//! biographies) quantifies how much the ETC estimates can be off before a
//! schedule's makespan guarantee breaks. The standard FePIA-style result for
//! independent-task mapping: with the makespan requirement `makespan ≤ τ` and
//! perturbations measured in the ℓ₂ norm on each machine's assigned-task
//! runtimes, machine `j`'s robustness radius is
//!
//! ```text
//! r_j = (τ − L_j) / √(n_j)
//! ```
//!
//! where `L_j` is its load and `n_j` its task count (the worst-case direction
//! raises all `n_j` runtimes equally), and the schedule's **robustness radius**
//! is `min_j r_j`.

use crate::problem::{MappingProblem, Schedule};
use hc_core::error::MeasureError;

/// Robustness analysis of one schedule against a makespan bound `tau`.
#[derive(Debug, Clone)]
pub struct Robustness {
    /// The makespan requirement the analysis is against.
    pub tau: f64,
    /// Achieved makespan (must be ≤ τ for a meaningful radius).
    pub makespan: f64,
    /// Per-machine radii `(τ − L_j)/√n_j`; `+∞` for idle machines.
    pub per_machine: Vec<f64>,
    /// The schedule's robustness radius `min_j r_j`.
    pub radius: f64,
    /// Index of the critical (radius-determining) machine.
    pub critical_machine: usize,
}

/// Computes the ℓ₂ robustness radius of `schedule` under makespan bound `tau`.
///
/// Errors when `tau` is not finite-positive or the schedule already violates it
/// (the radius would be negative — the guarantee is already broken).
pub fn robustness_radius(
    p: &MappingProblem,
    schedule: &Schedule,
    tau: f64,
) -> Result<Robustness, MeasureError> {
    if !tau.is_finite() || tau <= 0.0 {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("tau must be positive and finite, got {tau}"),
        });
    }
    let loads = schedule.machine_loads(p)?;
    let makespan = loads.iter().copied().fold(0.0_f64, f64::max);
    if makespan > tau {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("schedule makespan {makespan} already exceeds tau {tau}"),
        });
    }
    let mut counts = vec![0usize; p.num_machines()];
    for &j in &schedule.assignment {
        counts[j] += 1;
    }
    let per_machine: Vec<f64> = loads
        .iter()
        .zip(&counts)
        .map(|(&l, &n)| {
            if n == 0 {
                f64::INFINITY
            } else {
                (tau - l) / (n as f64).sqrt()
            }
        })
        .collect();
    let (critical_machine, radius) = per_machine
        .iter()
        .copied()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite radii"))
        .expect("at least one machine");
    Ok(Robustness {
        tau,
        makespan,
        per_machine,
        radius,
        critical_machine,
    })
}

/// Empirically validates a radius: perturbs the critical machine's assigned
/// runtimes uniformly by `delta/√n_j` each (the worst-case ℓ₂-norm-`delta`
/// direction) and reports the resulting makespan. Used by tests to confirm the
/// analytic radius is tight.
pub fn perturbed_makespan(
    p: &MappingProblem,
    schedule: &Schedule,
    machine: usize,
    delta: f64,
) -> Result<f64, MeasureError> {
    if machine >= p.num_machines() {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("machine {machine} out of range"),
        });
    }
    let n = schedule
        .assignment
        .iter()
        .filter(|&&j| j == machine)
        .count();
    if n == 0 {
        return schedule.makespan(p);
    }
    let per_task = delta / (n as f64).sqrt();
    let loads = schedule.machine_loads(p)?;
    let mut max = 0.0_f64;
    for (j, &l) in loads.iter().enumerate() {
        let adj = if j == machine {
            l + per_task * n as f64
        } else {
            l
        };
        max = max.max(adj);
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_linalg::Matrix;

    fn setup() -> (MappingProblem, Schedule) {
        let p = MappingProblem::new(
            Matrix::from_rows(&[&[2.0, 9.0], &[3.0, 9.0], &[9.0, 4.0]]).unwrap(),
        )
        .unwrap();
        // Loads: m0 = 5 (2 tasks), m1 = 4 (1 task).
        let s = Schedule {
            assignment: vec![0, 0, 1],
        };
        (p, s)
    }

    #[test]
    fn radius_formula() {
        let (p, s) = setup();
        let r = robustness_radius(&p, &s, 8.0).unwrap();
        assert_eq!(r.makespan, 5.0);
        // m0: (8-5)/√2 ≈ 2.1213; m1: (8-4)/1 = 4.
        assert!((r.per_machine[0] - 3.0 / 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((r.per_machine[1] - 4.0).abs() < 1e-12);
        assert_eq!(r.critical_machine, 0);
        assert!((r.radius - 3.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn radius_is_tight() {
        // Perturbing the critical machine by exactly the radius reaches τ; by
        // slightly more exceeds it.
        let (p, s) = setup();
        let r = robustness_radius(&p, &s, 8.0).unwrap();
        let at = perturbed_makespan(&p, &s, r.critical_machine, r.radius).unwrap();
        assert!((at - 8.0).abs() < 1e-9, "at radius: {at}");
        let over = perturbed_makespan(&p, &s, r.critical_machine, r.radius * 1.01).unwrap();
        assert!(over > 8.0);
    }

    #[test]
    fn idle_machine_infinite_radius() {
        let p = MappingProblem::new(Matrix::from_rows(&[&[1.0, 5.0]]).unwrap()).unwrap();
        let s = Schedule {
            assignment: vec![0],
        };
        let r = robustness_radius(&p, &s, 10.0).unwrap();
        assert_eq!(r.per_machine[1], f64::INFINITY);
        assert_eq!(r.critical_machine, 0);
    }

    #[test]
    fn violated_bound_rejected() {
        let (p, s) = setup();
        assert!(robustness_radius(&p, &s, 4.0).is_err());
        assert!(robustness_radius(&p, &s, 0.0).is_err());
        assert!(robustness_radius(&p, &s, f64::NAN).is_err());
    }

    #[test]
    fn tighter_tau_smaller_radius() {
        let (p, s) = setup();
        let loose = robustness_radius(&p, &s, 20.0).unwrap().radius;
        let tight = robustness_radius(&p, &s, 6.0).unwrap().radius;
        assert!(tight < loose);
    }

    #[test]
    fn better_schedules_are_more_robust() {
        // Among schedules meeting the same τ, a lower-makespan schedule has a
        // radius at least as large on its critical machine when loads are
        // balanced. Verify with the optimal vs a skewed schedule.
        let p =
            MappingProblem::new(Matrix::from_rows(&[&[2.0, 2.0], &[2.0, 2.0]]).unwrap()).unwrap();
        let balanced = Schedule {
            assignment: vec![0, 1],
        };
        let skewed = Schedule {
            assignment: vec![0, 0],
        };
        let tau = 6.0;
        let rb = robustness_radius(&p, &balanced, tau).unwrap().radius;
        let rs = robustness_radius(&p, &skewed, tau).unwrap().radius;
        assert!(rb > rs, "balanced {rb} vs skewed {rs}");
    }

    #[test]
    fn perturbed_makespan_edge_cases() {
        let (p, s) = setup();
        assert!(perturbed_makespan(&p, &s, 9, 1.0).is_err());
        // Perturbing an idle machine leaves the makespan unchanged.
        let p1 = MappingProblem::new(Matrix::from_rows(&[&[1.0, 5.0]]).unwrap()).unwrap();
        let s1 = Schedule {
            assignment: vec![0],
        };
        assert_eq!(perturbed_makespan(&p1, &s1, 1, 100.0).unwrap(), 1.0);
    }
}
