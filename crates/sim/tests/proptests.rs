//! Property-based tests for the discrete-event simulator: physical consistency
//! invariants that must hold for every workload, environment, and policy.

use hc_linalg::Matrix;
use hc_sim::policy::{BatchPolicy, OnlinePolicy, Policy};
use hc_sim::sim::{simulate, SimConfig};
use hc_sim::workload::{generate, WorkloadSpec};
use proptest::prelude::*;

fn arb_etc() -> impl Strategy<Value = Matrix> {
    (2usize..=6, 2usize..=4).prop_flat_map(|(t, m)| {
        proptest::collection::vec(0.5_f64..20.0, t * m)
            .prop_map(move |data| Matrix::from_vec(t, m, data).unwrap())
    })
}

fn policies() -> Vec<Policy> {
    vec![
        Policy::Immediate(OnlinePolicy::Olb),
        Policy::Immediate(OnlinePolicy::Met),
        Policy::Immediate(OnlinePolicy::Mct),
        Policy::Immediate(OnlinePolicy::Kpb { percent: 50 }),
        Policy::Batch {
            policy: BatchPolicy::MinMin,
            interval: 3.0,
        },
        Policy::Batch {
            policy: BatchPolicy::Sufferage,
            interval: 3.0,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn physical_consistency(etc in arb_etc(), seed in 0u64..1000, rate in 0.2f64..3.0) {
        let wl = generate(&WorkloadSpec::uniform(60, rate, etc.rows(), seed)).unwrap();
        for policy in policies() {
            let r = simulate(&etc, &wl, &SimConfig { policy }).unwrap();
            prop_assert_eq!(r.records.len(), 60, "{}", policy.name());
            for rec in &r.records {
                // No task starts before it arrives or finishes instantaneously.
                prop_assert!(rec.start >= rec.arrival - 1e-9, "{}", policy.name());
                prop_assert!(rec.finish > rec.start, "{}", policy.name());
                // Execution time equals the ETC entry.
                let expect = etc[(rec.task_type, rec.machine)];
                prop_assert!((rec.finish - rec.start - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn no_machine_overlap(etc in arb_etc(), seed in 0u64..1000) {
        // Tasks on one machine never overlap in time (FIFO queues).
        let wl = generate(&WorkloadSpec::uniform(50, 1.0, etc.rows(), seed)).unwrap();
        for policy in policies() {
            let r = simulate(&etc, &wl, &SimConfig { policy }).unwrap();
            for j in 0..etc.cols() {
                let mut spans: Vec<(f64, f64)> = r
                    .records
                    .iter()
                    .filter(|rec| rec.machine == j)
                    .map(|rec| (rec.start, rec.finish))
                    .collect();
                spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for w in spans.windows(2) {
                    prop_assert!(
                        w[1].0 >= w[0].1 - 1e-9,
                        "overlap on machine {} under {}: {:?}",
                        j, policy.name(), w
                    );
                }
            }
        }
    }

    #[test]
    fn busy_time_conservation(etc in arb_etc(), seed in 0u64..1000) {
        // Total busy time equals the sum of the executed ETC entries.
        let wl = generate(&WorkloadSpec::uniform(40, 1.0, etc.rows(), seed)).unwrap();
        let r = simulate(
            &etc,
            &wl,
            &SimConfig { policy: Policy::Immediate(OnlinePolicy::Mct) },
        )
        .unwrap();
        let busy: f64 = r.records.iter().map(|rec| rec.finish - rec.start).sum();
        let expect: f64 = r
            .records
            .iter()
            .map(|rec| etc[(rec.task_type, rec.machine)])
            .sum();
        prop_assert!((busy - expect).abs() < 1e-6);
    }

    #[test]
    fn makespan_at_least_critical_path(etc in arb_etc(), seed in 0u64..1000) {
        // The makespan can never beat the per-task best times: it is at least the
        // last arrival plus that task's fastest runtime... weaker but universal:
        // at least the maximum over tasks of (arrival + min_j etc).
        let wl = generate(&WorkloadSpec::uniform(30, 1.5, etc.rows(), seed)).unwrap();
        let bound = wl
            .arrivals
            .iter()
            .map(|a| {
                let best = (0..etc.cols())
                    .map(|j| etc[(a.task_type, j)])
                    .fold(f64::INFINITY, f64::min);
                a.time + best
            })
            .fold(0.0_f64, f64::max);
        for policy in policies() {
            let r = simulate(&etc, &wl, &SimConfig { policy }).unwrap();
            prop_assert!(
                r.makespan() >= bound - 1e-9,
                "{}: makespan {} below bound {}",
                policy.name(), r.makespan(), bound
            );
        }
    }
}
