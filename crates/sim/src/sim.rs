//! The event-driven simulator.
//!
//! State per machine is a FIFO queue summarized by its *ready time* (when the
//! machine finishes everything committed to it). Immediate policies commit each
//! task at its arrival instant; batch policies commit buffered tasks at interval
//! boundaries. Because commitments are irrevocable and queues are FIFO, the
//! trajectory is fully determined by the commitment order — the simulator
//! processes arrivals in time order and tracks every task's start/finish.

use crate::policy::{map_batch, pick_immediate, Policy};
use crate::workload::Workload;
use hc_core::error::MeasureError;
use hc_linalg::Matrix;

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The mapping policy.
    pub policy: Policy,
}

/// Per-task outcome record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRecord {
    /// Task type index.
    pub task_type: usize,
    /// Machine the task ran on.
    pub machine: usize,
    /// Arrival time.
    pub arrival: f64,
    /// Execution start time.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
}

impl TaskRecord {
    /// Time from arrival to completion.
    pub fn flowtime(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Time spent waiting in queue.
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }
}

/// Full simulation result.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-task records in arrival order.
    pub records: Vec<TaskRecord>,
    /// Final per-machine ready times.
    pub machine_ready: Vec<f64>,
}

impl SimResult {
    /// Completion time of the last task.
    pub fn makespan(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.finish)
            .fold(0.0_f64, f64::max)
    }
}

/// Runs the simulation of `workload` on the environment `etc` (task types ×
/// machines, `∞` = incompatible).
pub fn simulate(
    etc: &Matrix,
    workload: &Workload,
    config: &SimConfig,
) -> Result<SimResult, MeasureError> {
    let m = etc.cols();
    if m == 0 || etc.rows() == 0 {
        return Err(MeasureError::InvalidEnvironment {
            reason: "simulate needs a non-empty ETC matrix".into(),
        });
    }
    let mut obs = hc_obs::span("sim.simulate");
    hc_obs::obs_counter!("sim_runs_total").inc();
    hc_obs::obs_counter!("sim_tasks_total").add(workload.arrivals.len() as u64);
    if obs.armed() {
        obs.field_u64("machines", m as u64);
        obs.field_u64("arrivals", workload.arrivals.len() as u64);
    }
    for a in &workload.arrivals {
        if a.task_type >= etc.rows() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!(
                    "arrival references task type {} but the environment has {}",
                    a.task_type,
                    etc.rows()
                ),
            });
        }
    }
    let mut ready = vec![0.0_f64; m];
    let mut records: Vec<TaskRecord> = Vec::with_capacity(workload.arrivals.len());

    let mut commit = |task_type: usize, arrival: f64, machine: usize, ready: &mut [f64]| {
        let start = ready[machine].max(arrival);
        let finish = start + etc[(task_type, machine)];
        ready[machine] = finish;
        records.push(TaskRecord {
            task_type,
            machine,
            arrival,
            start,
            finish,
        });
    };

    match config.policy {
        Policy::Immediate(p) => {
            for a in &workload.arrivals {
                let row = etc.row(a.task_type);
                let j = pick_immediate(p, row, &ready, a.time)?;
                commit(a.task_type, a.time, j, &mut ready);
            }
        }
        Policy::Batch { policy, interval } => {
            if !interval.is_finite() || interval <= 0.0 {
                return Err(MeasureError::InvalidEnvironment {
                    reason: format!("batch interval must be positive, got {interval}"),
                });
            }
            let mut pending: Vec<(usize, f64)> = Vec::new(); // (task_type, arrival)
            let mut flush_at = interval;
            let mut flush = |pending: &mut Vec<(usize, f64)>,
                             now: f64,
                             ready: &mut [f64]|
             -> Result<(), MeasureError> {
                if pending.is_empty() {
                    return Ok(());
                }
                let types: Vec<usize> = pending.iter().map(|p| p.0).collect();
                // map_batch updates ready internally; recompute starts for the
                // records by replaying commitments in its chosen order is not
                // needed — the machine totals are what matter, and the batch
                // semantics start every batch member no earlier than `now`.
                let mut shadow = ready.to_vec();
                let assignment = map_batch(policy, etc, &types, &mut shadow, now)?;
                for (k, &(tt, arr)) in pending.iter().enumerate() {
                    commit(tt, arr.max(now), assignment[k], ready);
                }
                pending.clear();
                Ok(())
            };
            for a in &workload.arrivals {
                while a.time > flush_at {
                    flush(&mut pending, flush_at, &mut ready)?;
                    flush_at += interval;
                }
                pending.push((a.task_type, a.time));
            }
            flush(&mut pending, flush_at, &mut ready)?;
        }
    }

    Ok(SimResult {
        records,
        machine_ready: ready,
    })
}

/// Simulates an immediate-mode policy on machines with downtime calendars
/// (see [`crate::availability`]): a commitment's execution is placed at the
/// earliest time ≥ max(ready, arrival) at which it fits entirely between the
/// machine's down windows, and the policy's completion-time comparisons account
/// for that placement.
///
/// Batch policies are not supported here (their ready-time bookkeeping assumes
/// contiguous execution); use [`simulate`] for them.
pub fn simulate_available(
    etc: &Matrix,
    workload: &Workload,
    policy: crate::policy::OnlinePolicy,
    downtime: &[crate::availability::Downtime],
) -> Result<SimResult, MeasureError> {
    use crate::policy::OnlinePolicy;
    let m = etc.cols();
    if downtime.len() != m {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!(
                "downtime calendars ({}) must match the machine count ({m})",
                downtime.len()
            ),
        });
    }
    for a in &workload.arrivals {
        if a.task_type >= etc.rows() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("arrival references task type {}", a.task_type),
            });
        }
    }
    let mut ready = vec![0.0_f64; m];
    let mut records = Vec::with_capacity(workload.arrivals.len());
    for a in &workload.arrivals {
        let row = etc.row(a.task_type);
        // Candidate (start, finish) per compatible machine under the calendar.
        let candidates: Vec<(usize, f64, f64)> = (0..m)
            .filter(|&j| row[j].is_finite())
            .map(|j| {
                let start = downtime[j].next_fit(ready[j].max(a.time), row[j]);
                (j, start, start + row[j])
            })
            .collect();
        if candidates.is_empty() {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!("task type {} has no compatible machine", a.task_type),
            });
        }
        let (j, start, finish): (usize, f64, f64) = match policy {
            OnlinePolicy::Olb => *candidates
                .iter()
                .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
                .expect("non-empty"),
            OnlinePolicy::Met => *candidates
                .iter()
                .min_by(|x, y| row[x.0].partial_cmp(&row[y.0]).expect("finite"))
                .expect("non-empty"),
            OnlinePolicy::Mct => *candidates
                .iter()
                .min_by(|x, y| x.2.partial_cmp(&y.2).expect("finite"))
                .expect("non-empty"),
            OnlinePolicy::Kpb { percent } => {
                if percent == 0 || percent > 100 {
                    return Err(MeasureError::InvalidEnvironment {
                        reason: format!("KPB percent must be in 1..=100, got {percent}"),
                    });
                }
                let k = ((percent as usize * m).div_ceil(100)).max(1);
                let mut by_speed = candidates.clone();
                by_speed.sort_by(|x, y| {
                    row[x.0]
                        .partial_cmp(&row[y.0])
                        .expect("finite")
                        .then(x.0.cmp(&y.0))
                });
                by_speed.truncate(k.min(by_speed.len()));
                *by_speed
                    .iter()
                    .min_by(|x, y| x.2.partial_cmp(&y.2).expect("finite"))
                    .expect("non-empty")
            }
        };
        ready[j] = finish;
        records.push(TaskRecord {
            task_type: a.task_type,
            machine: j,
            arrival: a.time,
            start,
            finish,
        });
    }
    Ok(SimResult {
        records,
        machine_ready: ready,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatchPolicy, OnlinePolicy};
    use crate::workload::{generate, Arrival, WorkloadSpec};

    fn etc2() -> Matrix {
        Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 3.0]]).unwrap()
    }

    fn manual_workload(arrivals: &[(f64, usize)]) -> Workload {
        Workload {
            arrivals: arrivals
                .iter()
                .map(|&(time, task_type)| Arrival { time, task_type })
                .collect(),
        }
    }

    #[test]
    fn mct_single_task() {
        let w = manual_workload(&[(0.0, 0)]);
        let r = simulate(
            &etc2(),
            &w,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Mct),
            },
        )
        .unwrap();
        assert_eq!(r.records.len(), 1);
        let rec = r.records[0];
        assert_eq!(rec.machine, 0);
        assert_eq!(rec.start, 0.0);
        assert_eq!(rec.finish, 2.0);
        assert_eq!(r.makespan(), 2.0);
    }

    #[test]
    fn queueing_delays_start() {
        // Two type-0 tasks at t=0: first to m0 (finish 2); second MCT compares
        // m0 (2+2=4) vs m1 (4): tie → lowest index m0, finish 4 with wait 2.
        let w = manual_workload(&[(0.0, 0), (0.0, 0)]);
        let r = simulate(
            &etc2(),
            &w,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Mct),
            },
        )
        .unwrap();
        let second = r.records[1];
        assert_eq!(second.wait(), 2.0);
        assert_eq!(r.makespan(), 4.0);
    }

    #[test]
    fn idle_gap_respected() {
        // Second arrival after the first finished: no wait.
        let w = manual_workload(&[(0.0, 0), (10.0, 0)]);
        let r = simulate(
            &etc2(),
            &w,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Mct),
            },
        )
        .unwrap();
        assert_eq!(r.records[1].start, 10.0);
        assert_eq!(r.records[1].wait(), 0.0);
    }

    #[test]
    fn met_piles_up_mct_balances() {
        // Many identical tasks, machine 0 slightly faster: MET sends all to m0.
        let arrivals: Vec<(f64, usize)> = (0..8).map(|k| (k as f64 * 0.01, 0)).collect();
        let w = manual_workload(&arrivals);
        let met = simulate(
            &etc2(),
            &w,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Met),
            },
        )
        .unwrap();
        let mct = simulate(
            &etc2(),
            &w,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Mct),
            },
        )
        .unwrap();
        assert!(met.records.iter().all(|r| r.machine == 0));
        assert!(mct.makespan() < met.makespan());
    }

    #[test]
    fn batch_minmin_runs_and_respects_interval() {
        let w = manual_workload(&[(0.1, 0), (0.2, 1), (0.3, 0), (5.0, 1)]);
        let r = simulate(
            &etc2(),
            &w,
            &SimConfig {
                policy: Policy::Batch {
                    policy: BatchPolicy::MinMin,
                    interval: 1.0,
                },
            },
        )
        .unwrap();
        assert_eq!(r.records.len(), 4);
        // Nothing starts before its batch boundary.
        for rec in &r.records[..3] {
            assert!(
                rec.start >= 1.0 - 1e-12,
                "batched task started early: {rec:?}"
            );
        }
        // The t = 5.0 arrival lands exactly on a boundary and flushes there.
        assert!(r.records[3].start >= 5.0 - 1e-12);
        // A strictly later arrival waits for the next boundary.
        let w2 = manual_workload(&[(5.5, 1)]);
        let r2 = simulate(
            &etc2(),
            &w2,
            &SimConfig {
                policy: Policy::Batch {
                    policy: BatchPolicy::MinMin,
                    interval: 1.0,
                },
            },
        )
        .unwrap();
        assert!(r2.records[0].start >= 6.0 - 1e-12);
    }

    #[test]
    fn batch_policies_vs_immediate_same_task_count() {
        let wl = generate(&WorkloadSpec::uniform(200, 3.0, 2, 5)).unwrap();
        for policy in [
            Policy::Immediate(OnlinePolicy::Mct),
            Policy::Batch {
                policy: BatchPolicy::MinMin,
                interval: 0.5,
            },
            Policy::Batch {
                policy: BatchPolicy::Sufferage,
                interval: 0.5,
            },
        ] {
            let r = simulate(&etc2(), &wl, &SimConfig { policy }).unwrap();
            assert_eq!(r.records.len(), 200, "{}", policy.name());
            // Records are physically consistent.
            for rec in &r.records {
                assert!(rec.start >= rec.arrival - 1e-12);
                assert!(rec.finish > rec.start);
            }
            // Machine ready times equal max finish per machine.
            for j in 0..2 {
                let mx = r
                    .records
                    .iter()
                    .filter(|rec| rec.machine == j)
                    .map(|rec| rec.finish)
                    .fold(0.0_f64, f64::max);
                assert!((r.machine_ready[j] - mx).abs() < 1e-9 || mx == 0.0);
            }
        }
    }

    #[test]
    fn incompatibility_respected_online() {
        let etc = Matrix::from_rows(&[&[f64::INFINITY, 3.0]]).unwrap();
        let w = manual_workload(&[(0.0, 0)]);
        let r = simulate(
            &etc,
            &w,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Mct),
            },
        )
        .unwrap();
        assert_eq!(r.records[0].machine, 1);
    }

    #[test]
    fn invalid_inputs() {
        let w = manual_workload(&[(0.0, 5)]);
        assert!(simulate(
            &etc2(),
            &w,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Mct)
            }
        )
        .is_err());
        let w2 = manual_workload(&[(0.0, 0)]);
        assert!(simulate(
            &etc2(),
            &w2,
            &SimConfig {
                policy: Policy::Batch {
                    policy: BatchPolicy::MinMin,
                    interval: 0.0
                }
            }
        )
        .is_err());
        assert!(simulate(
            &Matrix::zeros(0, 0),
            &w2,
            &SimConfig {
                policy: Policy::Immediate(OnlinePolicy::Mct)
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let wl = generate(&WorkloadSpec::uniform(100, 2.0, 2, 3)).unwrap();
        let cfg = SimConfig {
            policy: Policy::Immediate(OnlinePolicy::Mct),
        };
        let a = simulate(&etc2(), &wl, &cfg).unwrap();
        let b = simulate(&etc2(), &wl, &cfg).unwrap();
        assert_eq!(a.records, b.records);
    }

    mod availability {
        use super::*;
        use crate::availability::Downtime;

        #[test]
        fn matches_plain_simulate_when_always_up() {
            let wl = generate(&WorkloadSpec::uniform(60, 1.0, 2, 5)).unwrap();
            let plain = simulate(
                &etc2(),
                &wl,
                &SimConfig {
                    policy: Policy::Immediate(OnlinePolicy::Mct),
                },
            )
            .unwrap();
            let avail = simulate_available(
                &etc2(),
                &wl,
                OnlinePolicy::Mct,
                &[Downtime::none(), Downtime::none()],
            )
            .unwrap();
            assert_eq!(plain.records, avail.records);
        }

        #[test]
        fn downtime_delays_and_reroutes() {
            // Machine 0 is down [0, 100): everything must run on machine 1.
            let wl = manual_workload(&[(0.0, 0), (1.0, 0)]);
            let down = [Downtime::new(vec![(0.0, 100.0)]).unwrap(), Downtime::none()];
            let r = simulate_available(&etc2(), &wl, OnlinePolicy::Mct, &down).unwrap();
            assert!(r.records.iter().all(|rec| rec.machine == 1));
            // With a short outage, execution is pushed past the window when it
            // cannot fit before it.
            let down2 = [Downtime::new(vec![(1.0, 5.0)]).unwrap(), Downtime::none()];
            // Task type 0 takes 2.0 on m0: at t=0 it cannot finish before the
            // window (needs [0, 2) but window starts at 1), so MCT compares
            // m0 finishing at 5+2=7 against m1 finishing at 4 and picks m1.
            let wl2 = manual_workload(&[(0.0, 0)]);
            let r2 = simulate_available(&etc2(), &wl2, OnlinePolicy::Mct, &down2).unwrap();
            assert_eq!(r2.records[0].machine, 1);
            assert_eq!(r2.records[0].finish, 4.0);
            // OLB (earliest start) also avoids the blocked machine.
            let r3 = simulate_available(&etc2(), &wl2, OnlinePolicy::Olb, &down2).unwrap();
            assert_eq!(r3.records[0].machine, 1);
        }

        #[test]
        fn kpb_with_downtime() {
            let wl = manual_workload(&[(0.0, 0)]);
            let down = [Downtime::new(vec![(0.0, 50.0)]).unwrap(), Downtime::none()];
            // KPB 50% on 2 machines = only the fastest (m0, which is down):
            // committed there anyway, starting after the window.
            let r =
                simulate_available(&etc2(), &wl, OnlinePolicy::Kpb { percent: 50 }, &down).unwrap();
            assert_eq!(r.records[0].machine, 0);
            assert_eq!(r.records[0].start, 50.0);
        }

        #[test]
        fn validation() {
            let wl = manual_workload(&[(0.0, 0)]);
            assert!(simulate_available(&etc2(), &wl, OnlinePolicy::Mct, &[]).is_err());
            assert!(simulate_available(
                &etc2(),
                &wl,
                OnlinePolicy::Kpb { percent: 0 },
                &[Downtime::none(), Downtime::none()]
            )
            .is_err());
        }
    }
}
