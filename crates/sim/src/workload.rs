//! Dynamic workload generation: Poisson arrivals over the environment's task
//! types.

use hc_core::error::MeasureError;
use hc_gen::rng::{Rng, StdRng};

/// One task instance in the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time.
    pub time: f64,
    /// Index of the task type being instantiated.
    pub task_type: usize,
}

/// Parameters of the arrival process.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of task instances to generate.
    pub count: usize,
    /// Mean arrival rate λ (tasks per unit time); interarrivals are Exp(λ).
    pub rate: f64,
    /// Per-task-type selection weights (need not be normalized). The paper's
    /// `w_t` weighting factor "the probability that a task type will be
    /// executed" maps directly onto this.
    pub type_weights: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Uniform type weights.
    pub fn uniform(count: usize, rate: f64, num_types: usize, seed: u64) -> Self {
        WorkloadSpec {
            count,
            rate,
            type_weights: vec![1.0; num_types],
            seed,
        }
    }
}

/// A generated workload: arrivals sorted by time.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The arrival stream, non-decreasing in time.
    pub arrivals: Vec<Arrival>,
}

/// Generates a workload from a spec.
pub fn generate(spec: &WorkloadSpec) -> Result<Workload, MeasureError> {
    if spec.type_weights.is_empty() {
        return Err(MeasureError::InvalidEnvironment {
            reason: "workload needs at least one task type".into(),
        });
    }
    if spec.type_weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
        return Err(MeasureError::InvalidEnvironment {
            reason: "type weights must be finite and nonnegative".into(),
        });
    }
    let total: f64 = spec.type_weights.iter().sum();
    if total <= 0.0 {
        return Err(MeasureError::InvalidEnvironment {
            reason: "type weights must not all be zero".into(),
        });
    }
    if !spec.rate.is_finite() || spec.rate <= 0.0 {
        return Err(MeasureError::InvalidEnvironment {
            reason: format!("arrival rate must be positive, got {}", spec.rate),
        });
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut t = 0.0_f64;
    let mut arrivals = Vec::with_capacity(spec.count);
    for _ in 0..spec.count {
        // Exponential interarrival via inverse CDF.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / spec.rate;
        // Weighted type choice.
        let mut pick = rng.gen_range(0.0..total);
        let mut task_type = spec.type_weights.len() - 1;
        for (k, &w) in spec.type_weights.iter().enumerate() {
            if pick < w {
                task_type = k;
                break;
            }
            pick -= w;
        }
        arrivals.push(Arrival { time: t, task_type });
    }
    Ok(Workload { arrivals })
}

/// Derives the paper's task weighting factors `w_t` (Eqs. 4/6: "the number of
/// times that a task type is executed") from an observed workload: the empirical
/// execution count of each type, floored at a small positive value so types that
/// happened not to arrive keep a valid (positive) weight. Machine weights are
/// uniform.
pub fn weights_from_workload(
    workload: &Workload,
    num_types: usize,
    num_machines: usize,
) -> Result<hc_core::weights::Weights, MeasureError> {
    let mut counts = vec![0usize; num_types];
    for a in &workload.arrivals {
        if a.task_type >= num_types {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!(
                    "arrival references task type {} but num_types is {num_types}",
                    a.task_type
                ),
            });
        }
        counts[a.task_type] += 1;
    }
    let task: Vec<f64> = counts
        .iter()
        .map(|&c| (c as f64).max(0.5)) // unseen types keep a small positive weight
        .collect();
    hc_core::weights::Weights::new(task, vec![1.0; num_machines])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_sized() {
        let w = generate(&WorkloadSpec::uniform(500, 2.0, 4, 1)).unwrap();
        assert_eq!(w.arrivals.len(), 500);
        for pair in w.arrivals.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(w.arrivals.iter().all(|a| a.task_type < 4));
    }

    #[test]
    fn rate_controls_density() {
        let slow = generate(&WorkloadSpec::uniform(1000, 0.5, 2, 3)).unwrap();
        let fast = generate(&WorkloadSpec::uniform(1000, 5.0, 2, 3)).unwrap();
        let span = |w: &Workload| w.arrivals.last().unwrap().time;
        assert!(
            span(&fast) < span(&slow) / 5.0,
            "10x rate should compress the span ~10x: {} vs {}",
            span(&fast),
            span(&slow)
        );
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let w = generate(&WorkloadSpec::uniform(20_000, 4.0, 2, 7)).unwrap();
        let span = w.arrivals.last().unwrap().time;
        let mean = span / 20_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean interarrival {mean}");
    }

    #[test]
    fn weights_bias_types() {
        let spec = WorkloadSpec {
            count: 10_000,
            rate: 1.0,
            type_weights: vec![9.0, 1.0],
            seed: 11,
        };
        let w = generate(&spec).unwrap();
        let zero = w.arrivals.iter().filter(|a| a.task_type == 0).count();
        let frac = zero as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "type-0 fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&WorkloadSpec::uniform(50, 1.0, 3, 9)).unwrap();
        let b = generate(&WorkloadSpec::uniform(50, 1.0, 3, 9)).unwrap();
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    fn weights_from_workload_counts_types() {
        let spec = WorkloadSpec {
            count: 1000,
            rate: 1.0,
            type_weights: vec![3.0, 1.0],
            seed: 4,
        };
        let wl = generate(&spec).unwrap();
        let w = weights_from_workload(&wl, 2, 3).unwrap();
        let t = w.task();
        assert_eq!(t.len(), 2);
        assert_eq!(w.machine().len(), 3);
        assert!((t[0] + t[1] - 1000.0).abs() < 1e-9);
        let ratio = t[0] / t[1];
        assert!((ratio - 3.0).abs() < 0.4, "empirical ratio {ratio}");
        // Unseen types keep a positive weight.
        let w3 = weights_from_workload(&wl, 5, 2).unwrap();
        assert!(w3.task()[4] > 0.0);
        // Out-of-range type rejected.
        assert!(weights_from_workload(&wl, 1, 2).is_err());
    }

    #[test]
    fn invalid_specs() {
        assert!(generate(&WorkloadSpec::uniform(5, 0.0, 2, 0)).is_err());
        assert!(generate(&WorkloadSpec::uniform(5, -1.0, 2, 0)).is_err());
        assert!(generate(&WorkloadSpec {
            count: 5,
            rate: 1.0,
            type_weights: vec![],
            seed: 0
        })
        .is_err());
        assert!(generate(&WorkloadSpec {
            count: 5,
            rate: 1.0,
            type_weights: vec![0.0, 0.0],
            seed: 0
        })
        .is_err());
        assert!(generate(&WorkloadSpec {
            count: 5,
            rate: 1.0,
            type_weights: vec![1.0, f64::NAN],
            seed: 0
        })
        .is_err());
    }
}
