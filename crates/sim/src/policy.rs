//! Online mapping policies.
//!
//! **Immediate mode** maps each task the moment it arrives, using the machines'
//! current *ready times* (when each machine will have drained its queue).
//! **Batch mode** buffers arrivals and maps the whole batch with a Min-Min or
//! Sufferage pass whenever the batch interval elapses — the classic dynamic
//! variants from the mapping literature (Maheswaran et al.).

use hc_core::error::MeasureError;
use hc_linalg::Matrix;

/// Immediate-mode policies (one task at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OnlinePolicy {
    /// Machine that becomes ready first (ignores execution time).
    Olb,
    /// Machine with minimum execution time (ignores ready times).
    Met,
    /// Machine with minimum completion time `ready + ETC`.
    Mct,
    /// MCT restricted to the k% fastest machines for the task type.
    Kpb {
        /// Percent of machines considered, `1..=100`.
        percent: u8,
    },
}

/// Batch-mode policies (map a buffered set together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchPolicy {
    /// Repeatedly commit the (task, machine) pair with minimum completion time.
    MinMin,
    /// Repeatedly commit the task that would suffer most without its best machine.
    Sufferage,
}

/// A complete policy selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Map on arrival.
    Immediate(OnlinePolicy),
    /// Buffer arrivals, map every `interval` time units.
    Batch {
        /// The batch heuristic.
        policy: BatchPolicy,
        /// Batching interval (> 0).
        interval: f64,
    },
}

impl Policy {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Policy::Immediate(OnlinePolicy::Olb) => "online-OLB".into(),
            Policy::Immediate(OnlinePolicy::Met) => "online-MET".into(),
            Policy::Immediate(OnlinePolicy::Mct) => "online-MCT".into(),
            Policy::Immediate(OnlinePolicy::Kpb { percent }) => format!("online-KPB{percent}"),
            Policy::Batch {
                policy: BatchPolicy::MinMin,
                ..
            } => "batch-MinMin".into(),
            Policy::Batch {
                policy: BatchPolicy::Sufferage,
                ..
            } => "batch-Sufferage".into(),
        }
    }
}

/// Picks a machine for one task under an immediate-mode policy.
///
/// `etc_row` is the task type's ETC row (∞ = incompatible); `ready` holds the
/// per-machine ready times; `now` is the arrival time.
pub fn pick_immediate(
    policy: OnlinePolicy,
    etc_row: &[f64],
    ready: &[f64],
    now: f64,
) -> Result<usize, MeasureError> {
    let m = etc_row.len();
    let compatible = || (0..m).filter(|&j| etc_row[j].is_finite());
    let start = |j: usize| ready[j].max(now);
    let chosen = match policy {
        OnlinePolicy::Olb => compatible()
            .min_by(|&a, &b| start(a).partial_cmp(&start(b)).expect("finite ready times")),
        OnlinePolicy::Met => {
            compatible().min_by(|&a, &b| etc_row[a].partial_cmp(&etc_row[b]).expect("finite etc"))
        }
        OnlinePolicy::Mct => compatible().min_by(|&a, &b| {
            (start(a) + etc_row[a])
                .partial_cmp(&(start(b) + etc_row[b]))
                .expect("finite")
        }),
        OnlinePolicy::Kpb { percent } => {
            if percent == 0 || percent > 100 {
                return Err(MeasureError::InvalidEnvironment {
                    reason: format!("KPB percent must be in 1..=100, got {percent}"),
                });
            }
            let mut machines: Vec<usize> = compatible().collect();
            machines.sort_by(|&a, &b| {
                etc_row[a]
                    .partial_cmp(&etc_row[b])
                    .expect("finite")
                    .then(a.cmp(&b))
            });
            let k = ((percent as usize * m).div_ceil(100)).max(1);
            machines.truncate(k.min(machines.len()));
            machines.into_iter().min_by(|&a, &b| {
                (start(a) + etc_row[a])
                    .partial_cmp(&(start(b) + etc_row[b]))
                    .expect("finite")
            })
        }
    };
    chosen.ok_or_else(|| MeasureError::InvalidEnvironment {
        reason: "task has no compatible machine".into(),
    })
}

/// Maps a batch of tasks (given as task-type indices) under a batch policy.
/// Returns per-batch-entry machine choices; `ready` is **updated** with the new
/// commitments.
pub fn map_batch(
    policy: BatchPolicy,
    etc: &Matrix,
    batch: &[usize],
    ready: &mut [f64],
    now: f64,
) -> Result<Vec<usize>, MeasureError> {
    let m = etc.cols();
    let mut unmapped: Vec<usize> = (0..batch.len()).collect();
    let mut out = vec![usize::MAX; batch.len()];
    while !unmapped.is_empty() {
        let mut chosen: Option<(usize, usize, f64)> = None; // (pos, machine, key)
        for (pos, &bi) in unmapped.iter().enumerate() {
            let tt = batch[bi];
            let mut best: Option<(usize, f64)> = None;
            let mut second = f64::INFINITY;
            for j in 0..m {
                let t = etc[(tt, j)];
                if !t.is_finite() {
                    continue;
                }
                let ct = ready[j].max(now) + t;
                match best {
                    None => best = Some((j, ct)),
                    Some((_, b)) if ct < b => {
                        second = b;
                        best = Some((j, ct));
                    }
                    Some(_) => second = second.min(ct),
                }
            }
            let (bj, bct) = best.ok_or_else(|| MeasureError::InvalidEnvironment {
                reason: format!("task type {tt} has no compatible machine"),
            })?;
            let key = match policy {
                BatchPolicy::MinMin => -bct,
                BatchPolicy::Sufferage => {
                    if second.is_finite() {
                        second - bct
                    } else {
                        f64::INFINITY
                    }
                }
            };
            if chosen.map(|(_, _, k)| key > k).unwrap_or(true) {
                chosen = Some((pos, bj, key));
            }
        }
        let (pos, j, _) = chosen.expect("non-empty batch");
        let bi = unmapped.swap_remove(pos);
        let tt = batch[bi];
        ready[j] = ready[j].max(now) + etc[(tt, j)];
        out[bi] = j;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_mct_accounts_for_ready_times() {
        // Machine 0 faster but busy; MCT picks machine 1.
        let row = [2.0, 3.0];
        let ready = [10.0, 0.0];
        assert_eq!(
            pick_immediate(OnlinePolicy::Mct, &row, &ready, 0.0).unwrap(),
            1
        );
        // MET ignores the queue.
        assert_eq!(
            pick_immediate(OnlinePolicy::Met, &row, &ready, 0.0).unwrap(),
            0
        );
        // OLB ignores execution times.
        assert_eq!(
            pick_immediate(OnlinePolicy::Olb, &row, &ready, 0.0).unwrap(),
            1
        );
    }

    #[test]
    fn immediate_respects_incompatibility() {
        let row = [f64::INFINITY, 5.0];
        for p in [OnlinePolicy::Olb, OnlinePolicy::Met, OnlinePolicy::Mct] {
            assert_eq!(pick_immediate(p, &row, &[0.0, 0.0], 0.0).unwrap(), 1);
        }
        let blocked = [f64::INFINITY, f64::INFINITY];
        assert!(pick_immediate(OnlinePolicy::Mct, &blocked, &[0.0, 0.0], 0.0).is_err());
    }

    #[test]
    fn kpb_immediate() {
        // KPB 50% on 2 machines = 1 machine = MET.
        let row = [2.0, 3.0];
        let ready = [10.0, 0.0];
        assert_eq!(
            pick_immediate(OnlinePolicy::Kpb { percent: 50 }, &row, &ready, 0.0).unwrap(),
            0
        );
        assert!(pick_immediate(OnlinePolicy::Kpb { percent: 0 }, &row, &ready, 0.0).is_err());
    }

    #[test]
    fn now_floors_ready_times() {
        // Machine idle since t=0, arrival at t=5: start is 5, not 0.
        let row = [1.0, 100.0];
        let j = pick_immediate(OnlinePolicy::Mct, &row, &[0.0, 0.0], 5.0).unwrap();
        assert_eq!(j, 0);
    }

    #[test]
    fn batch_minmin_spreads_load() {
        let etc = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap();
        let mut ready = vec![0.0, 0.0];
        let out = map_batch(BatchPolicy::MinMin, &etc, &[0, 1], &mut ready, 0.0).unwrap();
        // First commit goes to m0 (ct 1); second sees m0 busy (ct 2) vs m1 (ct 2):
        // tie broken by machine order inside best-search → m0 again or m1; either
        // way ready times reflect both commitments.
        assert_eq!(out.len(), 2);
        let total: f64 = ready.iter().sum();
        assert!(total > 0.0);
        assert!(ready.iter().cloned().fold(0.0, f64::max) <= 3.0);
    }

    #[test]
    fn batch_sufferage_prioritizes() {
        // Task 0 suffers hugely without m0; task 1 has close alternatives.
        let etc = Matrix::from_rows(&[&[1.0, 50.0], &[1.0, 1.5]]).unwrap();
        let mut ready = vec![0.0, 0.0];
        let out = map_batch(BatchPolicy::Sufferage, &etc, &[0, 1], &mut ready, 0.0).unwrap();
        assert_eq!(out[0], 0, "high-sufferage task keeps its machine");
        assert_eq!(out[1], 1);
    }

    #[test]
    fn batch_incompatibility_error() {
        let etc = Matrix::from_rows(&[&[f64::INFINITY, f64::INFINITY]]).unwrap();
        let mut ready = vec![0.0, 0.0];
        assert!(map_batch(BatchPolicy::MinMin, &etc, &[0], &mut ready, 0.0).is_err());
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Immediate(OnlinePolicy::Mct).name(), "online-MCT");
        assert_eq!(
            Policy::Batch {
                policy: BatchPolicy::Sufferage,
                interval: 1.0
            }
            .name(),
            "batch-Sufferage"
        );
        assert_eq!(
            Policy::Immediate(OnlinePolicy::Kpb { percent: 25 }).name(),
            "online-KPB25"
        );
    }
}
