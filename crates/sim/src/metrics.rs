//! Summary metrics over a simulation run.

use crate::sim::SimResult;

/// Aggregate metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Number of tasks completed.
    pub tasks: usize,
    /// Completion time of the last task.
    pub makespan: f64,
    /// Mean flowtime (completion − arrival).
    pub mean_flowtime: f64,
    /// Maximum flowtime.
    pub max_flowtime: f64,
    /// Mean queueing wait (start − arrival).
    pub mean_wait: f64,
    /// Per-machine busy-time utilization over `[0, makespan]`.
    pub utilization: Vec<f64>,
    /// Number of tasks each machine executed.
    pub tasks_per_machine: Vec<usize>,
}

/// Computes metrics from a result; `num_machines` sizes the per-machine vectors.
pub fn metrics(result: &SimResult, num_machines: usize) -> SimMetrics {
    let tasks = result.records.len();
    let makespan = result.makespan();
    let mut flow_sum = 0.0;
    let mut flow_max = 0.0_f64;
    let mut wait_sum = 0.0;
    let mut busy = vec![0.0_f64; num_machines];
    let mut counts = vec![0usize; num_machines];
    for r in &result.records {
        flow_sum += r.flowtime();
        flow_max = flow_max.max(r.flowtime());
        wait_sum += r.wait();
        if r.machine < num_machines {
            busy[r.machine] += r.finish - r.start;
            counts[r.machine] += 1;
        }
    }
    let n = tasks.max(1) as f64;
    let util: Vec<f64> = busy
        .iter()
        .map(|&b| if makespan > 0.0 { b / makespan } else { 0.0 })
        .collect();
    SimMetrics {
        tasks,
        makespan,
        mean_flowtime: flow_sum / n,
        max_flowtime: flow_max,
        mean_wait: wait_sum / n,
        utilization: util,
        tasks_per_machine: counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::TaskRecord;

    fn record(machine: usize, arrival: f64, start: f64, finish: f64) -> TaskRecord {
        TaskRecord {
            task_type: 0,
            machine,
            arrival,
            start,
            finish,
        }
    }

    #[test]
    fn metrics_basic() {
        let result = SimResult {
            records: vec![record(0, 0.0, 0.0, 2.0), record(1, 0.0, 1.0, 4.0)],
            machine_ready: vec![2.0, 4.0],
        };
        let m = metrics(&result, 2);
        assert_eq!(m.tasks, 2);
        assert_eq!(m.makespan, 4.0);
        assert_eq!(m.mean_flowtime, 3.0); // (2 + 4)/2
        assert_eq!(m.max_flowtime, 4.0);
        assert_eq!(m.mean_wait, 0.5); // (0 + 1)/2
        assert_eq!(m.tasks_per_machine, vec![1, 1]);
        assert!((m.utilization[0] - 0.5).abs() < 1e-12); // busy 2 of 4
        assert!((m.utilization[1] - 0.75).abs() < 1e-12); // busy 3 of 4
    }

    #[test]
    fn empty_run() {
        let result = SimResult {
            records: vec![],
            machine_ready: vec![0.0],
        };
        let m = metrics(&result, 1);
        assert_eq!(m.tasks, 0);
        assert_eq!(m.makespan, 0.0);
        assert_eq!(m.mean_flowtime, 0.0);
        assert_eq!(m.utilization, vec![0.0]);
    }
}
