//! Machine availability windows: planned downtime / failure intervals.
//!
//! Real HC environments lose machines to maintenance and failure; a mapping
//! policy that is told a machine is down must route around it. The model here is
//! deliberately simple and deterministic: each machine has a sorted list of
//! `[start, end)` down intervals. During a down interval the machine accepts no
//! new commitments (tasks already started are assumed checkpointed: a commitment
//! whose execution would overlap a down window is pushed to the window's end).

use hc_core::error::MeasureError;

/// Downtime calendar for one machine: disjoint, sorted `[start, end)` intervals.
#[derive(Debug, Clone, Default)]
pub struct Downtime {
    intervals: Vec<(f64, f64)>,
}

impl Downtime {
    /// Always-up machine.
    pub fn none() -> Self {
        Downtime::default()
    }

    /// Builds a calendar from intervals; they are sorted and must be disjoint,
    /// finite, and well-formed (`start < end`).
    pub fn new(mut intervals: Vec<(f64, f64)>) -> Result<Self, MeasureError> {
        for &(s, e) in &intervals {
            if !s.is_finite() || !e.is_finite() || s >= e || s < 0.0 {
                return Err(MeasureError::InvalidEnvironment {
                    reason: format!("bad downtime interval [{s}, {e})"),
                });
            }
        }
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in intervals.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(MeasureError::InvalidEnvironment {
                    reason: format!(
                        "overlapping downtime intervals [{}, {}) and [{}, {})",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ),
                });
            }
        }
        Ok(Downtime { intervals })
    }

    /// Periodic maintenance: `down` time units every `period`, starting at
    /// `offset`, over `[0, horizon)`.
    pub fn periodic(
        offset: f64,
        period: f64,
        down: f64,
        horizon: f64,
    ) -> Result<Self, MeasureError> {
        if period <= 0.0
            || period.is_nan()
            || down <= 0.0
            || down.is_nan()
            || down >= period
            || offset < 0.0
        {
            return Err(MeasureError::InvalidEnvironment {
                reason: format!(
                    "bad periodic downtime: offset {offset}, period {period}, down {down}"
                ),
            });
        }
        let mut intervals = Vec::new();
        let mut s = offset;
        while s < horizon {
            intervals.push((s, s + down));
            s += period;
        }
        Downtime::new(intervals)
    }

    /// `true` when the machine is down at `t`.
    pub fn is_down(&self, t: f64) -> bool {
        self.intervals.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// Earliest time ≥ `t` at which an execution of length `dur` fits entirely
    /// between down windows.
    pub fn next_fit(&self, t: f64, dur: f64) -> f64 {
        let mut start = t;
        loop {
            let mut moved = false;
            for &(s, e) in &self.intervals {
                // The execution [start, start + dur) must not intersect [s, e).
                if start < e && start + dur > s {
                    start = e;
                    moved = true;
                }
            }
            if !moved {
                return start;
            }
        }
    }

    /// Total downtime within `[0, horizon)`.
    pub fn total_down(&self, horizon: f64) -> f64 {
        self.intervals
            .iter()
            .map(|&(s, e)| (e.min(horizon) - s.min(horizon)).max(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let d = Downtime::new(vec![(10.0, 12.0), (2.0, 4.0)]).unwrap();
        assert!(!d.is_down(1.0));
        assert!(d.is_down(2.0));
        assert!(d.is_down(3.9));
        assert!(!d.is_down(4.0));
        assert!(d.is_down(11.0));
        assert_eq!(d.total_down(100.0), 4.0);
        assert_eq!(d.total_down(3.0), 1.0);
        assert_eq!(Downtime::none().total_down(10.0), 0.0);
    }

    #[test]
    fn validation() {
        assert!(Downtime::new(vec![(5.0, 5.0)]).is_err());
        assert!(Downtime::new(vec![(5.0, 3.0)]).is_err());
        assert!(Downtime::new(vec![(-1.0, 2.0)]).is_err());
        assert!(Downtime::new(vec![(1.0, 3.0), (2.0, 4.0)]).is_err());
        assert!(Downtime::new(vec![(1.0, f64::INFINITY)]).is_err());
        // Touching intervals are fine.
        assert!(Downtime::new(vec![(1.0, 2.0), (2.0, 3.0)]).is_ok());
    }

    #[test]
    fn next_fit_skips_windows() {
        let d = Downtime::new(vec![(5.0, 8.0), (10.0, 11.0)]).unwrap();
        // Fits before the first window.
        assert_eq!(d.next_fit(0.0, 5.0), 0.0);
        // Too long to finish before 5, and too long for the [8, 10) gap:
        // pushed past both windows.
        assert_eq!(d.next_fit(0.0, 6.0), 11.0);
        // Starting inside a window: pushed to its end.
        assert_eq!(d.next_fit(6.0, 1.0), 8.0);
        // Fits exactly in the [8, 10) gap.
        assert_eq!(d.next_fit(8.0, 2.0), 8.0);
        // Does not fit in the gap: pushed past the second window.
        assert_eq!(d.next_fit(8.0, 2.5), 11.0);
    }

    #[test]
    fn periodic_schedule() {
        let d = Downtime::periodic(10.0, 20.0, 2.0, 100.0).unwrap();
        assert!(d.is_down(10.5));
        assert!(d.is_down(31.0));
        assert!(!d.is_down(15.0));
        assert_eq!(d.total_down(100.0), 10.0); // 5 windows of 2
        assert!(Downtime::periodic(0.0, 5.0, 5.0, 10.0).is_err());
        assert!(Downtime::periodic(0.0, 0.0, 1.0, 10.0).is_err());
    }
}
