//! # hc-sim — discrete-event simulation of dynamic HC workloads
//!
//! The paper's terminology distinguishes a **task type** (an executable program)
//! from a **task** (one execution of it). The measure framework characterizes the
//! *static* ETC matrix of task types × machines; this crate closes the loop to the
//! *dynamic* setting its applications live in (performance prediction, reference
//! [9]; heuristic selection, reference [3]): a stream of task instances arrives
//! over time and an online mapper assigns each to a machine.
//!
//! * [`workload`] — Poisson arrival streams over the task types, deterministic
//!   per seed.
//! * [`policy`] — immediate-mode online policies (OLB, MET, MCT, KPB) and
//!   batch-mode policies (Min-Min, Sufferage) operating on machine ready times.
//! * [`sim`] — the event-driven simulator: machine queues, ready times, per-task
//!   records.
//! * [`metrics`] — makespan, mean/max flowtime, machine utilization, queue peaks.
//!
//! The X8 experiment (see the `hc-repro` crate) runs this simulator across
//! environments generated at controlled TMA and shows the static measures predict
//! dynamic scheduler behaviour.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod availability;
pub mod metrics;
pub mod policy;
pub mod sim;
pub mod workload;

pub use metrics::SimMetrics;
pub use policy::{BatchPolicy, OnlinePolicy, Policy};
pub use sim::{simulate, SimConfig, SimResult, TaskRecord};
pub use workload::{Workload, WorkloadSpec};
