//! `hc-serve`: a dependency-free HTTP analysis daemon for heterogeneous
//! computing matrices, exposed by the CLI as `hcm serve`.
//!
//! The server turns the workspace's pure analysis functions — MPH/TDH/TMA
//! measurement, zero-pattern structure reports, ETC generation, and mapping
//! heuristics — into network endpoints over plain `std::net`:
//!
//! | Endpoint             | Verb | Body            | Result |
//! |----------------------|------|-----------------|--------|
//! | `/measure`           | POST | CSV ETC matrix  | MPH/TDH/TMA JSON |
//! | `/structure`         | POST | CSV ETC matrix  | balanceability JSON |
//! | `/generate`          | POST | —               | synthesized CSV |
//! | `/schedule`          | POST | CSV ETC matrix  | heuristic makespans JSON |
//! | `/batch`             | POST | CSVs split by `---` | per-matrix measure JSON |
//! | `/session`           | POST | CSV ETC matrix  | new live session (id + measures) |
//! | `/session/{id}`      | GET / DELETE | —       | session state / removal |
//! | `/session/{id}/etc`  | PATCH | edit lines     | warm-started incremental re-measure |
//! | `/session/{id}/watch?version=N` | GET | —     | long-poll for measure deltas past version N |
//! | `/metrics`           | GET  | —               | counters + histograms (JSON; `?format=prometheus` for text exposition) |
//! | `/healthz`           | GET  | —               | liveness |
//! | `/debug/requests`    | GET  | —               | flight-recorder summary (recent + survivor requests) |
//! | `/debug/requests/{id}` | GET | —              | full span tree + telemetry for one recorded request |
//! | `/debug/timeseries`  | GET  | —               | retained per-second metric history (`?series=...&window=...`; no params lists the catalog) |
//! | `/sleepz?ms=`        | GET  | —               | debug: hold a worker |
//! | `/quitquitquit`      | GET  | —               | graceful drain |
//!
//! Architecture, bottom-up:
//!
//! * [`sys`] — epoll/rlimit/listen syscall shims over the libc std already
//!   links, keeping the crate dependency-free.
//! * [`reactor`] — the event-driven serving core (DESIGN.md §14): one epoll
//!   readiness loop owns every socket, non-blocking accept/read/write state
//!   machines speak HTTP/1.1 keep-alive (`--max-requests-per-conn`,
//!   `--idle-conn-timeout-ms`), and finished jobs return through a
//!   completion queue + wakeup pipe so workers never touch sockets.
//! * [`threadpool`] — elastic worker pool (autoscaled between
//!   `--workers-min`/`--workers-max` by the overload control loop); a
//!   **bounded** request queue sheds load (`503` + `Retry-After`) instead of
//!   buffering, and a subtask lane with work-helping lets `/batch` fan out
//!   without self-deadlock.
//! * [`overload`] — adaptive admission (DESIGN.md §15): CoDel-style
//!   queue-delay shedding with a brownout ladder (`ok` → `brownout` →
//!   `shedding`), endpoint-class priorities (bulk sheds first, health/cache
//!   hits always flow), drain-rate `Retry-After`, and the autoscale decision
//!   loop. `--target-queue-delay-ms 0` restores the fixed-depth-only legacy
//!   behavior.
//! * [`http`] — a strict HTTP/1.1 subset (Content-Length bodies, a
//!   resumable incremental parser) with size caps; reject/shed paths answer
//!   `Connection: close` and drop the connection.
//! * [`cache`] — 8-way-sharded content-addressed LRU keyed by FNV-1a over
//!   `endpoint\0options\0body`; identical requests skip Sinkhorn/heuristic
//!   work entirely (`X-Cache: hit`).
//! * [`metrics`] — per-endpoint counters and log₂ latency histograms,
//!   rendered by `GET /metrics` through the hand-rolled [`json`] builders.
//! * [`handlers`] / [`router`] / [`server`] — pure endpoint logic, then
//!   dispatch + caching + batching, then sockets and lifecycle.
//! * [`signal`] — SIGINT/SIGTERM → atomic flag → graceful drain.
//!
//! Fault containment (DESIGN.md §10): every job runs under
//! `catch_unwind`, so a panicking handler answers `500` with its request id
//! instead of killing a worker; deliberately-crashed workers (chaos drills via
//! [`failpoints`]) are respawned by a drop sentinel and counted in
//! `/metrics` as `worker_respawns_total`. Shared locks use the
//! poison-recovering helpers in [`sync`] so one panic never wedges the cache,
//! metrics, or the pool. Requests carry an optional deadline
//! (`--request-timeout-ms`, `X-Timeout-Ms`) threaded as an
//! [`hc_linalg::Budget`] into the iterative kernels; expiry maps to `504` with
//! iteration-progress diagnostics.
//!
//! Observability (DESIGN.md §11): every request is recorded into the
//! [`hc_obs::recorder`] flight recorder — span tree, phase timings
//! (`Server-Timing` response header), and kernel telemetry (Sinkhorn
//! iterations, SVD sweeps) — retrievable after the fact from
//! `/debug/requests/{id}`. Slow, errored, and panicked requests are pinned
//! into a survivor ring so a flood of healthy traffic cannot evict the one
//! request worth debugging. W3C `traceparent` is parsed (or generated) and
//! echoed alongside `X-Request-Id`, and `/metrics?format=prometheus` renders
//! the same counters and histograms in Prometheus text exposition format.

//! Live sessions (DESIGN.md §12): `/session/*` endpoints keep per-client
//! state in the sharded, TTL'd, LRU-bounded [`hc_session::SessionStore`]
//! (`--max-sessions`, `--session-ttl-s`). Edits recompute incrementally with
//! warm-started Sinkhorn/SVD solvers (silent cold fallback counted in
//! `session_warm_fallback_total`), `If-Match` versions give optimistic
//! concurrency (`409` on mismatch), and `GET /session/{id}/watch` long-polls
//! for measure deltas under the same deadline machinery — graceful drain
//! flushes parked watchers with a typed `503 draining`.

/// Poison-recovering lock helpers shared across the workspace
/// (re-export of [`hc_obs::sync`]).
pub use hc_obs::sync;

/// Chaos fault-injection sites (re-export of [`hc_obs::failpoints`]): arm with
/// `HC_FAILPOINT=site:action` or programmatically in tests. Server sites:
/// `handler`, `cache.insert`, `worker.idle`, plus `sinkhorn.iteration` in the
/// balancing kernel.
pub use hc_obs::failpoints;

pub mod cache;
pub mod collector;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod overload;
pub mod reactor;
pub mod router;
pub mod server;
pub mod session;
pub mod signal;
pub mod sys;
pub mod threadpool;

pub use server::{start, Config, ServerHandle, ServerState};
