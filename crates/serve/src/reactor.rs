//! The event-driven serving core: one epoll reactor thread owning the
//! listener and every connection (DESIGN.md §14).
//!
//! The reactor multiplexes all sockets over level-triggered epoll
//! ([`crate::sys`]) and never computes: parsed requests are dispatched to the
//! worker pool, and finished work comes back over a [`CompletionQueue`] whose
//! notify callback writes one byte into a wakeup pipe registered with the
//! same epoll — so a completion interrupts `epoll_wait` exactly like socket
//! readiness.
//!
//! Connection state machine:
//!
//! ```text
//! accept → Reading ──parsed──> Dispatched ──Respond──> Writing ─┬─close──> Draining → closed
//!            ^                  │      ^                        │
//!            │                  Park   │ Wake / deadline        │keep-alive
//!            │                  v      │                        │
//!            │                 Waiting─┘                        │
//!            └──────────────────────────────────────────────────┘
//! ```
//!
//! * **Reading** — interest `EPOLLIN|EPOLLRDHUP`; bytes feed the resumable
//!   [`RequestParser`]. A complete head+body dispatches to the pool.
//! * **Dispatched** — a worker owns the request; interest drops to `0`
//!   (errors and hangups are still delivered). The socket is untouched.
//! * **Waiting** — a parked `GET /session/{id}/watch` long-poll: the task is
//!   stored on the connection and a store waker re-dispatches it when the
//!   session changes; the sweep resumes it at its deadline.
//! * **Writing** — the rendered head and the response body (often an
//!   `Arc<[u8]>` straight from the result cache — zero copies) go out with
//!   vectored writes; `EPOLLOUT` is armed only after a partial write.
//! * **Draining** — a closing connection lingers briefly discarding input,
//!   so the kernel never RSTs a response out from under unread pipelined
//!   bytes; then the socket closes.
//!
//! Tokens are `slot_index | generation << 32`; the generation bumps on every
//! close so a stale epoll event or late completion for a recycled slot is
//! recognized and dropped instead of touching the wrong connection.

#![cfg(target_os = "linux")]

use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hc_session::WatchWaker;

use crate::http::{render_head, Body, HttpError, Request, RequestParser, Response};
use crate::server::{next_request_id, run_attempt, AttemptOutcome, ReqTask, ServerState};
use crate::signal;
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::threadpool::CompletionQueue;

/// `epoll_wait` tick: the sweep (timeouts, deadlines, shutdown flag) runs at
/// least this often even with no socket activity.
const TICK_MS: i32 = 100;
/// Events collected per `epoll_wait` call.
const EVENTS_PER_WAIT: usize = 1024;
/// Read chunk size; a shorter read means the socket is drained.
const READ_CHUNK: usize = 16 * 1024;
/// How long a closing connection lingers discarding input so the kernel does
/// not RST the response away because of unread bytes.
const DRAIN_WINDOW: Duration = Duration::from_millis(250);
/// Longest wait for in-flight requests during graceful shutdown.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Overload control-loop cadence: the ladder/autoscale tick runs at most this
/// often, however busy the event loop is (and at least every `TICK_MS`).
const CONTROL_TICK: Duration = Duration::from_millis(50);

/// Token of the listener socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token of the completion-queue wakeup pipe.
const TOKEN_WAKEUP: u64 = u64::MAX - 1;

fn token_of(idx: usize, gen: u32) -> u64 {
    (idx as u64) | ((gen as u64) << 32)
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

/// A response in flight: rendered head + body, with progress offsets.
struct WriteBuf {
    head: Vec<u8>,
    body: Body,
    head_off: usize,
    body_off: usize,
    close_after: bool,
}

/// Where a connection is in its request cycle (see the module diagram).
enum ConnState {
    Reading,
    Dispatched,
    Waiting {
        task: Box<ReqTask>,
        waker: Arc<WatchWaker>,
        deadline: Instant,
    },
    Writing(WriteBuf),
    Draining {
        until: Instant,
    },
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    /// Currently armed epoll interest mask (modifies are skipped when equal).
    interest: u32,
    /// Last byte moved in either direction; drives idle and write timeouts.
    last_activity: Instant,
    /// When the current request began: accept for the first, first byte of
    /// the next request for keep-alive reuse. The latency clock.
    req_start: Instant,
    /// Requests answered on this connection.
    served: u64,
    /// Keep-alive decision parsed from the current request's headers.
    cur_keep_alive: bool,
}

/// What the worker pool hands back to the reactor.
enum Completion {
    /// A response to write to the connection `token` belongs to.
    Respond {
        token: u64,
        response: Response,
        started: Instant,
    },
    /// A watch long-poll parked on its session: hold the task until its
    /// waker fires or `deadline` passes.
    Parked {
        token: u64,
        task: Box<ReqTask>,
        waker: Arc<WatchWaker>,
        deadline: Instant,
    },
    /// A parked watcher's session changed: re-dispatch its task.
    Wake { token: u64 },
}

/// Arms a `500` completion for the lifetime of a pool job: if the job
/// unwinds anywhere outside [`run_attempt`]'s own catch, the drop still
/// answers the client and settles the in-flight slot instead of leaking the
/// connection in `Dispatched` forever.
struct CompletionGuard {
    completions: Arc<CompletionQueue<Completion>>,
    state: Arc<ServerState>,
    token: u64,
    started: Instant,
    armed: bool,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.state.faults.panics.fetch_add(1, Ordering::Relaxed);
        let response = HttpError::typed(
            500,
            "internal_panic",
            "internal panic while dispatching request",
        )
        .to_response();
        self.completions.push(Completion::Respond {
            token: self.token,
            response,
            started: self.started,
        });
    }
}

/// One sweep decision, computed under the connection borrow and acted on
/// after it ends.
enum SweepAction {
    None,
    Resume,
    IdleClose,
    Stalled,
    Close,
}

/// Outcome of one vectored write attempt.
enum WriteStep {
    Done { close: bool },
    Progress,
    Blocked,
    Failed,
}

/// Runs the reactor until shutdown; owns teardown (session drain, pool
/// shutdown) even when reactor construction itself fails.
pub fn run(listener: TcpListener, state: Arc<ServerState>) {
    match Reactor::new(listener, Arc::clone(&state)) {
        Ok(mut reactor) => reactor.event_loop(),
        Err(e) => {
            eprintln!("hcm serve: reactor init failed: {e}");
            state.sessions.drain();
            state.pool.shutdown();
        }
    }
}

struct Reactor {
    epoll: Epoll,
    state: Arc<ServerState>,
    /// Taken (closed) when draining begins, refusing new connections.
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    /// Generation per slot, bumped on close; tokens carry the generation so
    /// stale events for recycled slots are dropped.
    gens: Vec<u32>,
    free: Vec<usize>,
    completions: Arc<CompletionQueue<Completion>>,
    wake_rx: UnixStream,
    draining_since: Option<Instant>,
    /// Last overload control-loop tick (throttles to [`CONTROL_TICK`]).
    last_control_tick: Instant,
}

impl Reactor {
    fn new(listener: TcpListener, state: Arc<ServerState>) -> io::Result<Self> {
        let epoll = Epoll::new()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        // The notify side lives in the completion queue: every push writes
        // one byte, kicking epoll_wait. A full pipe buffer is fine — a byte
        // is already pending, so the reactor is waking anyway.
        let completions = Arc::new(CompletionQueue::new(move || {
            let _ = (&wake_tx).write(&[1]);
        }));
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKEUP)?;
        Ok(Self {
            epoll,
            state,
            listener: Some(listener),
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            completions,
            wake_rx,
            draining_since: None,
            last_control_tick: Instant::now(),
        })
    }

    /// One overload control-loop step: tick the admission ladder with the
    /// current backlog, then apply its autoscale decision to the pool.
    fn control_tick(&mut self, now: Instant) {
        if now.duration_since(self.last_control_tick) < CONTROL_TICK {
            return;
        }
        self.last_control_tick = now;
        let queued = self.state.pool.queued();
        self.state.overload.tick(now, queued);
        let (min, max) = self.state.config.worker_bounds();
        let live = self.state.pool.worker_count();
        if let Some(target) = self.state.overload.autoscale(now, queued, live, min, max) {
            self.state.pool.set_target(target);
        }
    }

    fn event_loop(&mut self) {
        let mut events = vec![EpollEvent::default(); EVENTS_PER_WAIT];
        loop {
            let n = self.epoll.wait(&mut events, TICK_MS).unwrap_or(0);
            for ev in &events[..n] {
                let (mask, token) = (ev.events, ev.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKEUP => self.drain_wakeup_pipe(),
                    _ => self.conn_event(token, mask),
                }
            }
            self.process_completions();
            let now = Instant::now();
            self.sweep(now);
            self.control_tick(now);
            if self.draining_since.is_none()
                && (self.state.shutdown.load(Ordering::SeqCst) || signal::triggered())
            {
                self.begin_drain(now);
            }
            if let Some(since) = self.draining_since {
                self.close_idle_for_drain();
                if self.live_conns() == 0 || since.elapsed() > DRAIN_GRACE {
                    break;
                }
            }
        }
        // Teardown. Order matters: flush watchers (idempotent), close every
        // socket, then drain the pool — its jobs all push completions first,
        // so the final drain below settles the in-flight count exactly.
        self.state.sessions.drain();
        for idx in 0..self.conns.len() {
            self.close_conn(idx);
        }
        self.state.pool.shutdown();
        for completion in self.completions.drain() {
            match completion {
                Completion::Respond { .. } => {
                    self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
                }
                Completion::Parked { waker, .. } => {
                    waker.cancel();
                    self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
                }
                Completion::Wake { .. } => {}
            }
        }
    }

    fn valid(&self, idx: usize, gen: u32) -> bool {
        idx < self.conns.len() && self.gens[idx] == gen && self.conns[idx].is_some()
    }

    fn live_conns(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(idx) = self.free.pop() {
            idx
        } else {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let idx = self.alloc_slot();
                    let token = token_of(idx, self.gens[idx]);
                    if self.epoll.add(fd, EPOLLIN | EPOLLRDHUP, token).is_err() {
                        // Out of watch capacity; dropping the stream closes it.
                        self.free.push(idx);
                        continue;
                    }
                    let now = Instant::now();
                    self.conns[idx] = Some(Conn {
                        stream,
                        parser: RequestParser::new(self.state.config.max_body_bytes),
                        state: ConnState::Reading,
                        interest: EPOLLIN | EPOLLRDHUP,
                        last_activity: now,
                        req_start: now,
                        served: 0,
                        cur_keep_alive: true,
                    });
                    self.state
                        .conns
                        .accepted_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.state.conns.open.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept errors (ECONNABORTED, EMFILE): yield to
                // the tick rather than spinning.
                Err(_) => return,
            }
        }
    }

    fn drain_wakeup_pipe(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, mask: u32) {
        let (idx, gen) = split_token(token);
        if !self.valid(idx, gen) {
            return;
        }
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(idx);
            return;
        }
        enum Kind {
            Read,
            Write,
            Discard,
            Ignore,
        }
        let kind = match self.conns[idx].as_ref().map(|c| &c.state) {
            Some(ConnState::Reading) => Kind::Read,
            Some(ConnState::Writing(_)) if mask & EPOLLOUT != 0 => Kind::Write,
            Some(ConnState::Draining { .. }) => Kind::Discard,
            _ => Kind::Ignore,
        };
        match kind {
            Kind::Read => self.on_readable(idx),
            Kind::Write => self.continue_write(idx),
            Kind::Discard => self.discard_reads(idx),
            Kind::Ignore => {}
        }
    }

    fn set_interest(&mut self, idx: usize, interest: u32) {
        let token = token_of(idx, self.gens[idx]);
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.interest != interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), interest, token)
                .is_ok()
        {
            conn.interest = interest;
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        if let ConnState::Waiting { waker, .. } = conn.state {
            // The parked request can never be answered now: cancel the waker
            // and settle its in-flight slot here. (A Dispatched request's
            // completion still arrives and is settled then.)
            waker.cancel();
            self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.state.conns.open.fetch_sub(1, Ordering::Relaxed);
    }

    fn on_readable(&mut self, idx: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let read = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                if !matches!(conn.state, ConnState::Reading) {
                    return;
                }
                conn.stream.read(&mut chunk)
            };
            match read {
                Ok(0) => {
                    let (idle, started, err) = {
                        let conn = self.conns[idx].as_ref().unwrap();
                        (
                            conn.parser.is_idle(),
                            conn.req_start,
                            conn.parser.eof_error(),
                        )
                    };
                    if idle {
                        // Clean keep-alive close between requests.
                        self.close_conn(idx);
                    } else {
                        self.state.metrics.record(
                            "_http_error",
                            true,
                            false,
                            started.elapsed(),
                            Duration::ZERO,
                        );
                        let resp = err
                            .to_response()
                            .with_header("X-Request-Id", &next_request_id());
                        self.write_response(idx, resp, true, started);
                    }
                    return;
                }
                Ok(n) => {
                    {
                        let conn = self.conns[idx].as_mut().unwrap();
                        let now = Instant::now();
                        if conn.parser.is_idle() && conn.served > 0 {
                            // First byte of the next keep-alive request: the
                            // latency clock starts here, not at accept — idle
                            // reuse time is not queue time.
                            conn.req_start = now;
                        }
                        conn.last_activity = now;
                        conn.parser.feed(&chunk[..n]);
                    }
                    self.advance_parse(idx);
                    if n < READ_CHUNK {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    /// Polls the parser; a complete request dispatches, a malformed one
    /// answers its typed error and closes.
    fn advance_parse(&mut self, idx: usize) {
        let polled = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if !matches!(conn.state, ConnState::Reading) {
                return;
            }
            conn.parser.poll()
        };
        match polled {
            Ok(None) => {}
            Ok(Some((request, keep_alive))) => {
                let (started, parse_us) = {
                    let conn = self.conns[idx].as_mut().unwrap();
                    conn.cur_keep_alive = keep_alive;
                    (conn.req_start, conn.req_start.elapsed().as_micros() as u64)
                };
                self.dispatch_request(idx, request, started, parse_us);
            }
            Err(e) => {
                let started = self.conns[idx].as_ref().unwrap().req_start;
                self.state.metrics.record(
                    "_http_error",
                    true,
                    false,
                    started.elapsed(),
                    Duration::ZERO,
                );
                let resp = e
                    .to_response()
                    .with_header("X-Request-Id", &next_request_id());
                self.write_response(idx, resp, true, started);
            }
        }
    }

    fn dispatch_request(
        &mut self,
        idx: usize,
        mut request: Request,
        started: Instant,
        parse_us: u64,
    ) {
        let admit_state = self.state.overload.current_state();
        let mut class = crate::overload::classify(&request);
        if self.state.pool.would_shed() {
            // Fixed-depth backstop (the only shed when adaptive admission is
            // off): the queue is literally full, so shed without building the
            // job; the response must close so the slot frees up.
            let id =
                crate::server::record_shed(&self.state, &mut request, class, admit_state, started);
            self.shed(idx, started, id);
            return;
        }
        // Adaptive admission: consulted only past the ok rung. A request the
        // cache can answer is upgraded to Critical — serving it costs no
        // solver work and keeps monitoring clients alive through overload.
        if admit_state != crate::overload::STATE_OK {
            if class != crate::overload::Class::Critical
                && crate::router::would_hit_cache(&self.state, &request)
            {
                class = crate::overload::Class::Critical;
            }
            if self.state.overload.admit(class).is_err() {
                let id = crate::server::record_shed(
                    &self.state,
                    &mut request,
                    class,
                    admit_state,
                    started,
                );
                self.shed(idx, started, id);
                return;
            }
        }
        let task = Box::new(ReqTask {
            request,
            started,
            parse_us,
            dispatched: Instant::now(),
            park_deadline: None,
            class,
            admit_state,
        });
        self.state.in_flight.fetch_add(1, Ordering::Relaxed);
        {
            let conn = self.conns[idx].as_mut().unwrap();
            conn.state = ConnState::Dispatched;
        }
        self.set_interest(idx, 0);
        let token = token_of(idx, self.gens[idx]);
        let job = self.make_job(token, task);
        if self.state.pool.try_execute(job).is_err() {
            // Raced with shutdown or a refill after would_shed said go
            // (try_execute already counted the shed).
            self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
            let resp = Response::overloaded(self.state.overload.retry_after_s())
                .with_header("X-Request-Id", &next_request_id());
            self.write_response(idx, resp, true, started);
        }
    }

    /// Sheds one request: a typed `503` whose `Retry-After` is the current
    /// drain-rate estimate, closing the connection to free the slot.
    /// `request_id` joins the flight record [`crate::server::record_shed`]
    /// just wrote, so the refused client can look itself up.
    fn shed(&mut self, idx: usize, started: Instant, request_id: String) {
        self.state
            .metrics
            .record("_shed", true, false, started.elapsed(), Duration::ZERO);
        let resp = Response::overloaded(self.state.overload.retry_after_s())
            .with_header("X-Request-Id", &request_id);
        self.write_response(idx, resp, true, started);
    }

    /// Builds the pool job for one attempt: run, then either push the
    /// response or park the watch — re-running immediately when the session
    /// changed between the handler's check and the park.
    fn make_job(&self, token: u64, mut task: Box<ReqTask>) -> crate::threadpool::Job {
        let st = Arc::clone(&self.state);
        let completions = Arc::clone(&self.completions);
        Box::new(move || {
            let mut guard = CompletionGuard {
                completions: Arc::clone(&completions),
                state: Arc::clone(&st),
                token,
                started: task.started,
                armed: true,
            };
            loop {
                match run_attempt(&st, &mut task) {
                    AttemptOutcome::Respond(response) => {
                        guard.armed = false;
                        completions.push(Completion::Respond {
                            token,
                            response,
                            started: task.started,
                        });
                        return;
                    }
                    AttemptOutcome::Park(intent) => {
                        let cq = Arc::clone(&completions);
                        let waker = Arc::new(WatchWaker::new(move || {
                            cq.push(Completion::Wake { token });
                        }));
                        match st
                            .sessions
                            .add_waker(&intent.id, intent.since, Arc::clone(&waker))
                        {
                            Ok(true) => {
                                guard.armed = false;
                                completions.push(Completion::Parked {
                                    token,
                                    task,
                                    waker,
                                    deadline: intent.deadline,
                                });
                                return;
                            }
                            // The session changed (or died, or the store is
                            // draining) between try_watch and add_waker: run
                            // again right away — this attempt will observe it.
                            Ok(false) | Err(_) => {
                                task.park_deadline = Some(intent.deadline);
                                task.dispatched = Instant::now();
                            }
                        }
                    }
                }
            }
        })
    }

    fn process_completions(&mut self) {
        for completion in self.completions.drain() {
            match completion {
                Completion::Respond {
                    token,
                    response,
                    started,
                } => {
                    self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
                    // Drain-rate numerator: a worker finished real work (the
                    // connection may be gone, but capacity was still spent).
                    self.state.overload.on_response();
                    let (idx, gen) = split_token(token);
                    if !self.valid(idx, gen) {
                        // The connection died while the worker computed; the
                        // response has nowhere to go.
                        continue;
                    }
                    self.write_response(idx, response, false, started);
                }
                Completion::Parked {
                    token,
                    task,
                    waker,
                    deadline,
                } => {
                    let (idx, gen) = split_token(token);
                    if !self.valid(idx, gen) {
                        waker.cancel();
                        self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    if waker.is_cancelled() {
                        // The wake raced ahead of this park notice (fired
                        // between add_waker and the push): re-run now.
                        self.redispatch(idx, task, deadline);
                        continue;
                    }
                    let conn = self.conns[idx].as_mut().unwrap();
                    conn.state = ConnState::Waiting {
                        task,
                        waker,
                        deadline,
                    };
                }
                Completion::Wake { token } => {
                    let (idx, gen) = split_token(token);
                    if !self.valid(idx, gen) {
                        continue;
                    }
                    if matches!(
                        self.conns[idx].as_ref().unwrap().state,
                        ConnState::Waiting { .. }
                    ) {
                        self.resume_waiting(idx);
                    }
                }
            }
        }
    }

    /// Takes a Waiting connection's task and re-dispatches it (session
    /// change or deadline expiry — the attempt itself tells them apart).
    fn resume_waiting(&mut self, idx: usize) {
        let conn = self.conns[idx].as_mut().unwrap();
        match std::mem::replace(&mut conn.state, ConnState::Dispatched) {
            ConnState::Waiting {
                task,
                waker,
                deadline,
            } => {
                waker.cancel();
                self.redispatch(idx, task, deadline);
            }
            other => {
                self.conns[idx].as_mut().unwrap().state = other;
            }
        }
    }

    /// Re-runs a previously parked task, marking it resumed so the watch
    /// handler keeps its original deadline and metrics count it once.
    fn redispatch(&mut self, idx: usize, mut task: Box<ReqTask>, deadline: Instant) {
        task.park_deadline = Some(deadline);
        task.dispatched = Instant::now();
        let started = task.started;
        {
            let conn = self.conns[idx].as_mut().unwrap();
            conn.state = ConnState::Dispatched;
        }
        let token = token_of(idx, self.gens[idx]);
        let job = self.make_job(token, task);
        if self.state.pool.try_execute(job).is_err() {
            self.state.in_flight.fetch_sub(1, Ordering::Relaxed);
            let resp = Response::overloaded(self.state.overload.retry_after_s())
                .with_header("X-Request-Id", &next_request_id());
            self.write_response(idx, resp, true, started);
        }
    }

    /// Starts writing a response, deciding keep-alive vs close, and records
    /// the request's SLO observation — the one record site for every path
    /// (worker responses, sheds, parse errors, timeouts).
    fn write_response(
        &mut self,
        idx: usize,
        response: Response,
        force_close: bool,
        started: Instant,
    ) {
        self.state.slo.record(response.status, started.elapsed());
        let max = self.state.config.max_requests_per_conn;
        let draining = self.draining_since.is_some();
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        // Overload sheds and input rejections close unconditionally: the
        // connection's queue position (503) or parser state (413/422) is not
        // worth preserving, and closing frees the slot fastest.
        let close = force_close
            || !conn.cur_keep_alive
            || matches!(response.status, 413 | 422 | 503)
            || draining
            || (max > 0 && conn.served + 1 >= max);
        let head = render_head(&response, close).into_bytes();
        conn.served += 1;
        if conn.served > 1 {
            self.state
                .conns
                .keepalive_requests_total
                .fetch_add(1, Ordering::Relaxed);
        }
        conn.state = ConnState::Writing(WriteBuf {
            head,
            body: response.body,
            head_off: 0,
            body_off: 0,
            close_after: close,
        });
        conn.last_activity = Instant::now();
        self.continue_write(idx);
    }

    fn continue_write(&mut self, idx: usize) {
        loop {
            let step = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                let ConnState::Writing(buf) = &mut conn.state else {
                    return;
                };
                let body_len = buf.body.as_slice().len();
                if buf.head_off >= buf.head.len() && buf.body_off >= body_len {
                    WriteStep::Done {
                        close: buf.close_after,
                    }
                } else {
                    // Head and body go out in one vectored write; the body is
                    // borrowed in place (for cache hits an `Arc<[u8]>` shared
                    // with the cache — zero copies end to end).
                    let slices = [
                        IoSlice::new(&buf.head[buf.head_off..]),
                        IoSlice::new(&buf.body.as_slice()[buf.body_off..]),
                    ];
                    match conn.stream.write_vectored(&slices) {
                        Ok(0) => WriteStep::Failed,
                        Ok(mut n) => {
                            let head_adv = n.min(buf.head.len() - buf.head_off);
                            buf.head_off += head_adv;
                            n -= head_adv;
                            buf.body_off += n;
                            conn.last_activity = Instant::now();
                            WriteStep::Progress
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => WriteStep::Blocked,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => WriteStep::Progress,
                        Err(_) => WriteStep::Failed,
                    }
                }
            };
            match step {
                WriteStep::Done { close } => {
                    self.finish_request(idx, close);
                    return;
                }
                WriteStep::Progress => {}
                WriteStep::Blocked => {
                    self.set_interest(idx, EPOLLOUT);
                    return;
                }
                WriteStep::Failed => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    /// The response is fully written: close (via the draining linger) or
    /// return to Reading — where a pipelined next request may already be
    /// buffered and dispatches immediately.
    fn finish_request(&mut self, idx: usize, close: bool) {
        if close {
            {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                // FIN first, then discard input for a beat: closing with
                // unread bytes would RST the response we just wrote.
                let _ = conn.stream.shutdown(Shutdown::Write);
                conn.state = ConnState::Draining {
                    until: Instant::now() + DRAIN_WINDOW,
                };
            }
            self.set_interest(idx, EPOLLIN | EPOLLRDHUP);
            return;
        }
        {
            let conn = self.conns[idx].as_mut().unwrap();
            conn.state = ConnState::Reading;
            conn.req_start = Instant::now();
            conn.last_activity = conn.req_start;
        }
        self.set_interest(idx, EPOLLIN | EPOLLRDHUP);
        self.advance_parse(idx);
    }

    fn discard_reads(&mut self, idx: usize) {
        let mut chunk = [0u8; 4096];
        loop {
            let read = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                conn.stream.read(&mut chunk)
            };
            match read {
                Ok(0) => {
                    self.close_conn(idx);
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    /// Time-driven transitions, at least once per tick: watch deadlines,
    /// idle keep-alive reaping, stalled mid-request reads, write timeouts,
    /// and the post-close drain window.
    fn sweep(&mut self, now: Instant) {
        let read_timeout = self.state.config.read_timeout;
        let write_timeout = self.state.config.write_timeout;
        let idle_ms = self.state.config.idle_conn_timeout_ms;
        for idx in 0..self.conns.len() {
            let action = {
                let Some(conn) = self.conns[idx].as_ref() else {
                    continue;
                };
                match &conn.state {
                    ConnState::Waiting { deadline, .. } if now >= *deadline => SweepAction::Resume,
                    ConnState::Waiting { .. } | ConnState::Dispatched => SweepAction::None,
                    ConnState::Reading if conn.parser.is_idle() => {
                        if idle_ms > 0
                            && now.duration_since(conn.last_activity)
                                >= Duration::from_millis(idle_ms)
                        {
                            SweepAction::IdleClose
                        } else {
                            SweepAction::None
                        }
                    }
                    ConnState::Reading => {
                        // Mid-request with no bytes for a whole read-timeout:
                        // the same stall the old per-read socket timeout caught.
                        if now.duration_since(conn.last_activity) >= read_timeout {
                            SweepAction::Stalled
                        } else {
                            SweepAction::None
                        }
                    }
                    ConnState::Writing(_) => {
                        if now.duration_since(conn.last_activity) >= write_timeout {
                            SweepAction::Close
                        } else {
                            SweepAction::None
                        }
                    }
                    ConnState::Draining { until } => {
                        if now >= *until {
                            SweepAction::Close
                        } else {
                            SweepAction::None
                        }
                    }
                }
            };
            match action {
                SweepAction::None => {}
                SweepAction::Resume => self.resume_waiting(idx),
                SweepAction::IdleClose => {
                    self.state
                        .conns
                        .idle_timeouts_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.close_conn(idx);
                }
                SweepAction::Stalled => {
                    let started = self.conns[idx].as_ref().unwrap().req_start;
                    self.state.metrics.record(
                        "_http_error",
                        true,
                        false,
                        started.elapsed(),
                        Duration::ZERO,
                    );
                    let resp =
                        HttpError::bad("read error or timeout: connection stalled mid-request")
                            .to_response()
                            .with_header("X-Request-Id", &next_request_id());
                    self.write_response(idx, resp, true, started);
                }
                SweepAction::Close => self.close_conn(idx),
            }
        }
    }

    /// Entered once when shutdown is requested: stop accepting, flush
    /// session watchers (parked long-polls answer a typed `503 draining`),
    /// and let in-flight requests finish under [`DRAIN_GRACE`].
    fn begin_drain(&mut self, now: Instant) {
        self.draining_since = Some(now);
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        self.state.sessions.drain();
    }

    /// During drain, connections idle between requests have nothing left to
    /// serve — close them instead of waiting out their keep-alive timeouts.
    fn close_idle_for_drain(&mut self) {
        for idx in 0..self.conns.len() {
            let idle = matches!(
                self.conns[idx]
                    .as_ref()
                    .map(|c| (&c.state, c.parser.is_idle())),
                Some((ConnState::Reading, true))
            );
            if idle {
                self.close_conn(idx);
            }
        }
    }
}
