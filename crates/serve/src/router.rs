//! Dispatch, result caching, batch fan-out, and per-request metrics.
//!
//! The router owns every cross-cutting concern the pure handlers must not know
//! about: method checks, the content-addressed cache (`X-Cache: hit|miss` on
//! cacheable endpoints), `/batch` fan-out over the pool's subtask lane,
//! `/metrics` assembly, and the admin endpoints (`/healthz`, `/sleepz`,
//! `/quitquitquit`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hc_linalg::Budget;

use crate::cache::{cache_key, CachedResponse};
use crate::handlers::{self, ReqCtx};
use crate::http::{Body, HttpError, Request, Response};
use crate::json::{JsonArray, JsonObject};
use crate::server::{Config, ServerState};

/// Most matrices accepted in one `/batch` request.
pub const MAX_BATCH_PARTS: usize = 1024;

/// Longest `/sleepz` nap in milliseconds (keeps the debug endpoint harmless).
const MAX_SLEEP_MS: u64 = 10_000;

/// Largest honoured `X-Timeout-Ms` when the server sets no deadline of its
/// own, so a header cannot schedule an effectively-unbounded budget.
const MAX_HEADER_TIMEOUT_MS: u64 = 600_000;

/// Endpoints whose responses describe live server state and must never be
/// served stale by an intermediary: every one gets `Cache-Control: no-store`
/// centrally in [`route`] (one list instead of per-handler headers, so a new
/// live endpoint cannot silently miss it).
const NO_STORE_ENDPOINTS: &[&str] = &[
    "metrics",
    "healthz",
    "debug_requests",
    "debug_request",
    "debug_profile",
    "debug_timeseries",
    "session",
    "session_id",
    "session_etc",
    "session_watch",
];

/// The per-request deadline in effect: the client's `X-Timeout-Ms` clamped to
/// the server's `--request-timeout-ms` (or to [`MAX_HEADER_TIMEOUT_MS`] when
/// the server sets none). `None` = no deadline.
fn effective_timeout_ms(config: &Config, req: &Request) -> Option<u64> {
    match (req.timeout_ms, config.request_timeout_ms) {
        (None, 0) => None,
        (None, server) => Some(server),
        (Some(header), 0) => Some(header.min(MAX_HEADER_TIMEOUT_MS)),
        (Some(header), server) => Some(header.min(server)),
    }
}

/// Stable metric name for a request path (also the admission controller's
/// endpoint-class key; see [`crate::overload::classify`]).
pub(crate) fn endpoint_name(req: &Request) -> &'static str {
    if req.path.starts_with("/debug/requests/") {
        return "debug_request";
    }
    if req.path == "/debug/profile" {
        return "debug_profile";
    }
    if req.path == "/debug/timeseries" {
        return "debug_timeseries";
    }
    if let Some(rest) = req.path.strip_prefix("/session/") {
        return if rest.ends_with("/etc") {
            "session_etc"
        } else if rest.ends_with("/watch") {
            "session_watch"
        } else {
            "session_id"
        };
    }
    match req.path.as_str() {
        "/session" => "session",
        "/measure" => "measure",
        "/structure" => "structure",
        "/generate" => "generate",
        "/schedule" => "schedule",
        "/batch" => "batch",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/debug/requests" => "debug_requests",
        "/sleepz" => "sleepz",
        "/quitquitquit" => "quitquitquit",
        _ => "other",
    }
}

/// Canonical textual form of the query for cache keying. `Request::query` is a
/// `BTreeMap`, so equivalent requests serialize identically regardless of the
/// parameter order on the wire.
fn canonical_options(req: &Request) -> String {
    let mut out = String::new();
    for (k, v) in &req.query {
        if !out.is_empty() {
            out.push('&');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

/// Whether this request would be answered straight from the result cache.
/// Used by the admission controller to upgrade cache-resident requests to
/// Critical during overload: serving them costs no solver work. The probe is
/// a non-counting peek — it must not inflate hit statistics or churn LRU
/// order for a request that may still be shed by the depth backstop.
pub(crate) fn would_hit_cache(state: &ServerState, req: &Request) -> bool {
    let name = endpoint_name(req);
    if !matches!(name, "measure" | "structure" | "generate" | "schedule") || req.method != "POST" {
        return false;
    }
    state
        .cache
        .contains(cache_key(name, &canonical_options(req), &req.body))
}

/// Runs a cacheable handler through the result cache.
///
/// Responses other than `200` are never cached (errors must re-evaluate).
/// Both directions are zero-copy: a hit answers with an `Arc` clone of the
/// cached bytes, and a miss stores a shared handle to the response's own
/// buffer rather than duplicating it.
/// Returns the response and whether it was a cache hit.
fn cached(
    state: &ServerState,
    name: &'static str,
    req: &Request,
    ctx: &ReqCtx<'_>,
    handler: fn(&Request, &ReqCtx<'_>) -> Result<Response, HttpError>,
) -> (Response, bool) {
    let key = cache_key(name, &canonical_options(req), &req.body);
    if let Some(hit) = state.cache.get(key) {
        let resp = Response {
            status: 200,
            content_type: hit.content_type,
            body: Body::Shared(hit.body),
            headers: Vec::new(),
        };
        return (resp.with_header("X-Cache", "hit"), true);
    }
    match handler(req, ctx) {
        Ok(mut resp) if resp.status == 200 => {
            let entry = CachedResponse {
                content_type: resp.content_type,
                body: resp.body.share(),
            };
            {
                let mut shard = state.cache.lock_shard(key);
                // Deliberate crash site: a panic here poisons the shard lock,
                // exercising the clear-on-recovery path under chaos tests.
                hc_obs::failpoints::fire("cache.insert");
                shard.put(key, entry);
            }
            (resp.with_header("X-Cache", "miss"), false)
        }
        Ok(resp) => (resp, false),
        Err(e) => {
            if e.status == 504 {
                state
                    .faults
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
            }
            (e.to_response(), false)
        }
    }
}

/// `POST /batch` — many matrices in one request, fanned across the pool.
///
/// The body is a sequence of CSV matrices separated by lines containing only
/// `---`. Each part is measured exactly as `POST /measure` would (same query
/// parameters, same per-part cache), and the response carries one result
/// object — or `{"error": …}` — per part, in input order.
///
/// Items are fault-isolated: a panicking, malformed, oversized, or
/// deadline-exceeded part yields a per-item error object (`"code"` set) while
/// every other part completes normally — one bad matrix never fails the batch.
fn batch(state: &Arc<ServerState>, req: &Request, ctx: &ReqCtx<'_>) -> Result<Response, HttpError> {
    handlers::check_allowed(req, &["ecs", "zero-policy"])?;
    let text = req.body_text()?;
    let parts: Vec<String> = split_batch(text);
    if parts.is_empty() {
        return Err(HttpError::bad(
            "empty batch: body must hold CSV matrices separated by '---' lines",
        ));
    }
    if parts.len() > MAX_BATCH_PARTS {
        return Err(HttpError::bad(format!(
            "batch of {} parts exceeds the limit of {MAX_BATCH_PARTS}",
            parts.len()
        )));
    }

    let n = parts.len();
    let results: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(vec![None; n]));
    let finished = Arc::new(AtomicUsize::new(0));
    for (i, part) in parts.into_iter().enumerate() {
        let sub = Request {
            method: "POST".to_string(),
            path: "/measure".to_string(),
            query: req.query.clone(),
            body: part.into_bytes(),
            request_id: None,
            timeout_ms: None,
            traceparent: None,
            if_match: None,
            malformed_headers: Vec::new(),
        };
        let (st, res, fin) = (
            Arc::clone(state),
            Arc::clone(&results),
            Arc::clone(&finished),
        );
        // The whole batch shares one deadline; each subtask carries an owned
        // clone because it may outlive this stack frame on another worker.
        let budget = ctx.budget.cloned();
        let max_cells = ctx.max_cells;
        state.pool.spawn_subtask(Box::new(move || {
            let item_ctx = ReqCtx {
                budget: budget.as_ref(),
                max_cells,
            };
            // Per-item fault isolation: a panic in one part becomes that
            // part's error object, never a whole-batch failure.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Reuse the /measure cache so identical matrices — within this
                // batch or across requests — are computed once.
                let (resp, _hit) = cached(&st, "measure", &sub, &item_ctx, handlers::measure);
                String::from_utf8_lossy(resp.body.as_slice()).into_owned()
            }));
            let rendered = outcome.unwrap_or_else(|_| {
                st.faults.panics.fetch_add(1, Ordering::Relaxed);
                let resp = HttpError::typed(
                    500,
                    "internal_panic",
                    "internal panic while measuring batch item",
                )
                .to_response();
                String::from_utf8_lossy(resp.body.as_slice()).into_owned()
            });
            hc_obs::sync::lock_recover(&res)[i] = Some(rendered);
            fin.fetch_add(1, Ordering::SeqCst);
        }));
    }
    // Help drain the subtask lane so a busy pool (even one worker) completes.
    let fin = Arc::clone(&finished);
    state
        .pool
        .help_until(move || fin.load(Ordering::SeqCst) == n);

    let collected = hc_obs::sync::lock_recover(&results);
    let mut arr = JsonArray::new();
    for slot in collected.iter() {
        arr.push_raw(slot.as_deref().unwrap_or("null"));
    }
    Ok(Response::json(
        JsonObject::new()
            .u64("count", n as u64)
            .raw("results", &arr.finish())
            .finish(),
    ))
}

/// Splits a batch body into per-matrix CSV chunks on `---` separator lines.
fn split_batch(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    for line in text.lines() {
        if line.trim() == "---" {
            if !current.trim().is_empty() {
                parts.push(std::mem::take(&mut current));
            }
            current.clear();
        } else {
            current.push_str(line);
            current.push('\n');
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn metrics_document(state: &ServerState) -> String {
    let recorder_json = JsonObject::new()
        .u64("capacity", state.recorder.capacity() as u64)
        .u64(
            "survivor_capacity",
            state.recorder.survivor_capacity() as u64,
        )
        .u64("recorded_total", state.recorder.recorded_total())
        .u64(
            "survivors_pinned_total",
            state.recorder.survivors_pinned_total(),
        )
        .finish();
    let cache_stats = state.cache.stats();
    let cache_json = JsonObject::new()
        .u64("entries", cache_stats.entries as u64)
        .u64("capacity", cache_stats.capacity as u64)
        .u64("hits", cache_stats.hits)
        .u64("misses", cache_stats.misses)
        .u64("evictions", cache_stats.evictions)
        .finish();
    let faults_json = JsonObject::new()
        .u64("panics_total", state.faults.panics.load(Ordering::Relaxed))
        .u64(
            "deadline_exceeded_total",
            state.faults.deadline_exceeded.load(Ordering::Relaxed),
        )
        .finish();
    let sessions_json = crate::metrics::sessions_json(&crate::metrics::session_counters());
    let slo_json = crate::metrics::slo_json(&state.slo.snapshot());
    let overload_json = state.overload.snapshot().to_json();
    state.metrics.to_json(
        &state.pool.stats_json(),
        &crate::metrics::connections_json(&state.conns),
        &cache_json,
        &faults_json,
        &recorder_json,
        &sessions_json,
        &slo_json,
        &overload_json,
        state.in_flight.load(std::sync::atomic::Ordering::Relaxed),
        &hc_obs::metrics::export_json(),
    )
}

/// `GET /debug/profile?seconds=N&format=folded|json` — the continuous
/// profiler's folded-stack render (default) or JSON top table. `seconds`
/// restricts the profile to the epochs overlapping the last N seconds;
/// absent means since boot. Answers a typed 404 while profiling is disabled
/// (`--profile-hz 0`).
fn debug_profile(req: &Request) -> Result<Response, HttpError> {
    if !hc_obs::profile::running() {
        return Err(HttpError::typed(
            404,
            "profiler_disabled",
            "continuous profiling is disabled (start the server with --profile-hz > 0)",
        ));
    }
    let window = match req.param("seconds") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(s) if s > 0 => Some(Duration::from_secs(s)),
            _ => {
                return Err(HttpError::bad(format!(
                    "seconds must be a positive integer, got {raw:?}"
                )))
            }
        },
    };
    match req.param("format") {
        None | Some("folded") => Ok(Response::text(hc_obs::profile::render_folded(window))),
        Some("json") => Ok(Response::json(hc_obs::profile::top_json(window, 50))),
        Some(other) => Err(HttpError::bad(format!(
            "unknown format {other:?} (expected folded or json)"
        ))),
    }
}

/// Folds a session handler result into the dispatch shape, keeping the
/// deadline-exceeded fault counter accurate (session endpoints bypass the
/// cache path that normally counts 504s).
fn session_result(state: &ServerState, result: Result<Response, HttpError>) -> (Response, bool) {
    match result {
        Ok(resp) => (resp, false),
        Err(e) => {
            if e.status == 504 {
                state
                    .faults
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
            }
            (e.to_response(), false)
        }
    }
}

fn require_method(req: &Request, method: &str) -> Result<(), Response> {
    if req.method == method {
        Ok(())
    } else {
        Err(Response::error(
            405,
            &format!("{} requires {method}", req.path),
        ))
    }
}

/// Routes one request, records metrics, and returns the response to write.
///
/// `accepted` is the instant the connection was accepted (before queueing),
/// so the recorded latency includes queue wait; the service time measured
/// from here is recorded separately. `request_id` is the id the connection
/// handler will echo as `X-Request-Id`.
pub fn route(
    state: &Arc<ServerState>,
    req: &Request,
    accepted: Instant,
    request_id: &str,
) -> Response {
    let service_start = Instant::now();
    let queue_wait = service_start.duration_since(accepted);
    let mut obs = hc_obs::span("serve.request");
    let name = endpoint_name(req);
    // The deadline is measured from accept, so queue wait spends budget too:
    // a request that waited out its deadline in the queue fails fast.
    let deadline_ms = effective_timeout_ms(&state.config, req);
    if let Some(ms) = deadline_ms {
        hc_obs::recorder::note_u64("deadline_ms", ms);
    }
    let budget =
        deadline_ms.map(|ms| Budget::with_deadline_at(accepted + Duration::from_millis(ms)));
    let ctx = ReqCtx {
        budget: budget.as_ref(),
        max_cells: state.config.max_cells,
    };
    let (resp, cache_hit) = dispatch(state, name, req, &ctx);
    let resp = if NO_STORE_ENDPOINTS.contains(&name) {
        resp.with_header("Cache-Control", "no-store")
    } else {
        resp
    };
    let service = service_start.elapsed();
    let latency = accepted.elapsed();
    // A watch that decided to park produced a placeholder, not a response:
    // nothing reached the client, so recording metrics or logging now would
    // double-count the request when the reactor re-runs it.
    if crate::session::park_pending() {
        return resp;
    }
    if budget.is_some() {
        // How much of the request's deadline the handler actually spent.
        hc_obs::recorder::note_u64("budget_consumed_us", service.as_micros() as u64);
    }
    state
        .metrics
        .record(name, resp.status >= 400, cache_hit, latency, service);
    if obs.armed() {
        obs.field_str("request_id", request_id);
        obs.field_str("endpoint", name);
        obs.field_str("path", &req.path);
        obs.field_u64("status", u64::from(resp.status));
        obs.field_bool("cache_hit", cache_hit);
        obs.field_u64("queue_us", queue_wait.as_micros() as u64);
        obs.field_u64("service_us", service.as_micros() as u64);
    }
    let slow_ms = state.config.slow_ms;
    if slow_ms > 0 && latency >= std::time::Duration::from_millis(slow_ms) {
        let latency_ms = latency.as_millis() as u64;
        if hc_obs::sink_installed() {
            hc_obs::event(
                hc_obs::Level::Warn,
                "serve.slow_request",
                &[
                    (
                        "request_id",
                        hc_obs::FieldValue::Str(request_id.to_string()),
                    ),
                    ("endpoint", hc_obs::FieldValue::Str(name.to_string())),
                    ("status", hc_obs::FieldValue::U64(u64::from(resp.status))),
                    ("latency_ms", hc_obs::FieldValue::U64(latency_ms)),
                    (
                        "queue_us",
                        hc_obs::FieldValue::U64(queue_wait.as_micros() as u64),
                    ),
                    (
                        "service_us",
                        hc_obs::FieldValue::U64(service.as_micros() as u64),
                    ),
                ],
            );
        } else {
            eprintln!(
                "hcm serve: slow request {request_id}: {} {} -> {} in {latency_ms} ms \
                 (queue {} us, service {} us; threshold {slow_ms} ms)",
                req.method,
                req.path,
                resp.status,
                queue_wait.as_micros(),
                service.as_micros(),
            );
        }
    }
    resp
}

fn dispatch(
    state: &Arc<ServerState>,
    name: &'static str,
    req: &Request,
    ctx: &ReqCtx<'_>,
) -> (Response, bool) {
    // Deliberate crash site at handler entry; the connection job's
    // catch_unwind turns it into a 500 carrying the request id.
    hc_obs::failpoints::fire("handler");
    match name {
        "measure" | "structure" | "generate" | "schedule" => {
            if let Err(resp) = require_method(req, "POST") {
                return (resp, false);
            }
            let handler = match name {
                "measure" => handlers::measure,
                "structure" => handlers::structure,
                "generate" => handlers::generate,
                _ => handlers::schedule,
            };
            cached(state, name, req, ctx, handler)
        }
        "batch" => {
            if let Err(resp) = require_method(req, "POST") {
                return (resp, false);
            }
            match batch(state, req, ctx) {
                Ok(resp) => (resp, false),
                Err(e) => (e.to_response(), false),
            }
        }
        "session" => {
            if let Err(resp) = require_method(req, "POST") {
                return (resp, false);
            }
            session_result(state, crate::session::create(state, req, ctx))
        }
        "session_id" => {
            let id = req.path.trim_start_matches("/session/");
            match req.method.as_str() {
                "GET" => session_result(state, crate::session::get(state, id)),
                "DELETE" => session_result(state, crate::session::delete(state, id)),
                _ => (
                    Response::error(405, &format!("{} requires GET or DELETE", req.path)),
                    false,
                ),
            }
        }
        "session_etc" => {
            if let Err(resp) = require_method(req, "PATCH") {
                return (resp, false);
            }
            let id = req
                .path
                .trim_start_matches("/session/")
                .trim_end_matches("/etc");
            session_result(state, crate::session::patch(state, req, id, ctx))
        }
        "session_watch" => {
            if let Err(resp) = require_method(req, "GET") {
                return (resp, false);
            }
            let id = req
                .path
                .trim_start_matches("/session/")
                .trim_end_matches("/watch");
            session_result(state, crate::session::watch(state, req, id, ctx))
        }
        "metrics" => match require_method(req, "GET") {
            Ok(()) => match req.param("format") {
                None | Some("json") => (Response::json(metrics_document(state)), false),
                Some("prometheus") => (
                    Response::prometheus(crate::metrics::prometheus_document(state)),
                    false,
                ),
                Some(other) => (
                    Response::error(
                        400,
                        &format!("unknown format {other:?} (expected json or prometheus)"),
                    ),
                    false,
                ),
            },
            Err(resp) => (resp, false),
        },
        "healthz" => {
            // `ok` stays for backwards compatibility: the process is up and
            // answering. `status` degrades to "degraded" while an SLO
            // burn-rate alert fires, so orchestration can act before the
            // budget is gone.
            let degraded = state.slo.snapshot().degraded;
            (
                Response::json(
                    JsonObject::new()
                        .bool("ok", true)
                        .str("status", if degraded { "degraded" } else { "ok" })
                        .str(
                            "overload_state",
                            crate::overload::state_name(state.overload.current_state()),
                        )
                        .u64("uptime_seconds", state.metrics.uptime().as_secs())
                        .raw("build", &crate::metrics::build_info_json())
                        .i64(
                            "requests_in_flight",
                            state.in_flight.load(std::sync::atomic::Ordering::Relaxed),
                        )
                        .finish(),
                ),
                false,
            )
        }
        "debug_requests" => match require_method(req, "GET") {
            Ok(()) => (Response::json(state.recorder.summary_json()), false),
            Err(resp) => (resp, false),
        },
        "debug_timeseries" => match require_method(req, "GET") {
            Ok(()) => match crate::collector::debug_timeseries(state, req) {
                Ok(resp) => (resp, false),
                Err(e) => (e.to_response(), false),
            },
            Err(resp) => (resp, false),
        },
        "debug_profile" => match require_method(req, "GET") {
            Ok(()) => match debug_profile(req) {
                Ok(resp) => (resp, false),
                Err(e) => (e.to_response(), false),
            },
            Err(resp) => (resp, false),
        },
        "debug_request" => match require_method(req, "GET") {
            Ok(()) => {
                let id = req.path.trim_start_matches("/debug/requests/");
                match state.recorder.lookup(id) {
                    Some(record) => (Response::json(record.to_json()), false),
                    None => (
                        HttpError::typed(
                            404,
                            "not_recorded",
                            format!("request {id} is not in the flight recorder"),
                        )
                        .to_response(),
                        false,
                    ),
                }
            }
            Err(resp) => (resp, false),
        },
        "sleepz" => {
            // Debug endpoint: occupy a worker for a bounded time, making
            // load-shed behaviour deterministic in tests and drills.
            let ms = req
                .param("ms")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(100)
                .min(MAX_SLEEP_MS);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            (
                Response::json(JsonObject::new().u64("slept_ms", ms).finish()),
                false,
            )
        }
        "quitquitquit" => {
            state
                .shutdown
                .store(true, std::sync::atomic::Ordering::SeqCst);
            // Flush session watchers immediately (the accept loop also drains
            // as a backstop for the SIGINT path): parked long-polls answer a
            // typed 503 instead of holding workers to their deadlines.
            state.sessions.drain();
            (
                Response::json(JsonObject::new().bool("shutting_down", true).finish()),
                false,
            )
        }
        _ => (
            Response::error(404, &format!("no such endpoint {}", req.path)),
            false,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_batches() {
        let parts = split_batch("a,b\n1,2\n---\nc,d\n3,4\n---\n");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], "a,b\n1,2\n");
        assert_eq!(parts[1], "c,d\n3,4\n");
        assert!(split_batch("---\n   \n---").is_empty());
        assert_eq!(split_batch("just,one\n1,2").len(), 1);
    }

    #[test]
    fn canonical_options_sorted_and_stable() {
        let req = Request {
            method: "POST".into(),
            path: "/measure".into(),
            query: [("zero-policy", "limit"), ("ecs", "1")]
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
            request_id: None,
            timeout_ms: None,
            traceparent: None,
            if_match: None,
            malformed_headers: Vec::new(),
        };
        assert_eq!(canonical_options(&req), "ecs=1&zero-policy=limit");
    }

    #[test]
    fn timeout_header_clamped_by_server_config() {
        let mut config = Config::default();
        let req = |ms: Option<u64>| Request {
            method: "POST".into(),
            path: "/measure".into(),
            query: Default::default(),
            body: Vec::new(),
            request_id: None,
            timeout_ms: ms,
            traceparent: None,
            if_match: None,
            malformed_headers: Vec::new(),
        };
        // Server timeout off: header honoured, but capped.
        config.request_timeout_ms = 0;
        assert_eq!(effective_timeout_ms(&config, &req(None)), None);
        assert_eq!(effective_timeout_ms(&config, &req(Some(250))), Some(250));
        assert_eq!(
            effective_timeout_ms(&config, &req(Some(u64::MAX))),
            Some(MAX_HEADER_TIMEOUT_MS)
        );
        // Server timeout on: default for headerless requests, clamp for the rest.
        config.request_timeout_ms = 1000;
        assert_eq!(effective_timeout_ms(&config, &req(None)), Some(1000));
        assert_eq!(effective_timeout_ms(&config, &req(Some(250))), Some(250));
        assert_eq!(effective_timeout_ms(&config, &req(Some(9999))), Some(1000));
    }
}
