//! Server configuration, shared state, and per-request attempt execution.
//!
//! The sockets live in [`crate::reactor`]: one event-loop thread owns the
//! (nonblocking) listener and every connection, multiplexed over epoll with
//! HTTP/1.1 keep-alive. This module owns everything around that loop — the
//! [`Config`] / [`ServerState`] pair, [`start`] / [`ServerHandle`] lifecycle,
//! and [`run_attempt`]: the worker-side execution of one parsed request
//! (request id, trace context, flight recording, panic isolation, phase
//! timings), returning either a response for the reactor to write or a park
//! decision for a session watch long-poll.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use hc_obs::recorder::{FlightRecorder, Outcome, PhaseTimings};
use hc_obs::trace::TraceContext;

use crate::cache::ShardedCache;
use crate::http::{Request, Response};
use crate::metrics::Registry;
use crate::router;
use crate::signal;
use crate::threadpool::Pool;

/// Server configuration; every `hcm serve` flag maps to one field.
#[derive(Debug, Clone)]
pub struct Config {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded request-queue depth; beyond it connections get `503`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Log requests whose accept-to-response latency exceeds this many
    /// milliseconds (0 disables slow-request logging).
    pub slow_ms: u64,
    /// Default per-request deadline in milliseconds (0 disables). A client's
    /// `X-Timeout-Ms` header is clamped to this value when set; expiry answers
    /// `504` with iteration-progress diagnostics.
    pub request_timeout_ms: u64,
    /// Largest accepted matrix size in cells (tasks × machines); larger inputs
    /// are rejected with `422` before any matrix allocation.
    pub max_cells: usize,
    /// Flight-recorder main-ring capacity: completed requests retained for
    /// `/debug/requests` (0 disables recording entirely).
    pub record_requests: usize,
    /// Flight-recorder survivor-ring capacity: slow, errored, panicked, and
    /// deadline-exceeded requests pinned separately so healthy floods cannot
    /// evict them.
    pub record_survivors: usize,
    /// Most live sessions held at once; creating beyond this evicts the
    /// least-recently-used session.
    pub max_sessions: usize,
    /// Idle time in seconds after which a session expires.
    pub session_ttl_s: u64,
    /// Continuous-profiler sampling rate in Hz (0 disables profiling and
    /// `GET /debug/profile`). The profiler is process-global: the first
    /// server to start wins, and it is never stopped on shutdown.
    pub profile_hz: u32,
    /// Availability SLO objective in (0, 1); requests answering ≥ 500 spend
    /// error budget.
    pub slo_availability: f64,
    /// Latency SLO threshold in milliseconds (0 disables the latency
    /// objective); requests slower than this spend latency budget regardless
    /// of status.
    pub slo_latency_ms: u64,
    /// Short SLO window length in seconds; the mid and long windows scale
    /// with it at the fixed 1:5:60 ratio (60 → 1 m / 5 m / 1 h).
    pub slo_window_s: u64,
    /// Most requests served on one keep-alive connection before the server
    /// answers `Connection: close` (0 = unlimited). Bounds how long one
    /// client can monopolize a connection slot.
    pub max_requests_per_conn: u64,
    /// Idle keep-alive connections (no request in progress) are closed after
    /// this many milliseconds (0 disables the idle timeout).
    pub idle_conn_timeout_ms: u64,
    /// Adaptive-admission target: smoothed queue delay (dispatch → worker
    /// pickup) the overload ladder defends, in milliseconds. 0 disables
    /// adaptive admission, leaving only the fixed `--queue-depth` cutoff.
    pub target_queue_delay_ms: u64,
    /// Autoscale floor for the worker count (0 = same as `workers`).
    pub workers_min: usize,
    /// Autoscale ceiling for the worker count (0 = same as `workers`, which
    /// disables autoscaling unless it exceeds the floor).
    pub workers_max: usize,
    /// In-process time-series retention in seconds: how far back
    /// `/debug/timeseries` (and `hcm top`) can look. Clamped to ≥ 60.
    pub tsdb_retention_s: u64,
    /// Disables the in-process time-series store and its collector thread
    /// entirely (`/debug/timeseries` answers a typed 404).
    pub tsdb_off: bool,
}

impl Config {
    /// The effective `[min, max]` worker bounds: a zero `workers_min` /
    /// `workers_max` falls back to `workers`, and the ceiling never sits
    /// below the floor. `min == max` means autoscaling is off.
    pub fn worker_bounds(&self) -> (usize, usize) {
        let min = if self.workers_min == 0 {
            self.workers
        } else {
            self.workers_min
        }
        .max(1);
        let max = if self.workers_max == 0 {
            self.workers
        } else {
            self.workers_max
        }
        .max(min);
        (min, max)
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            queue_depth: 64,
            cache_entries: 256,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            slow_ms: 0,
            request_timeout_ms: 0,
            max_cells: 4_000_000,
            record_requests: 256,
            record_survivors: 64,
            max_sessions: 64,
            session_ttl_s: 900,
            profile_hz: 99,
            slo_availability: 0.999,
            slo_latency_ms: 0,
            slo_window_s: 60,
            max_requests_per_conn: 1024,
            idle_conn_timeout_ms: 30_000,
            target_queue_delay_ms: 100,
            workers_min: 0,
            workers_max: 0,
            tsdb_retention_s: 86_400,
            tsdb_off: false,
        }
    }
}

/// Connection-lifecycle counters, rendered as the `connections` object in
/// `/metrics` and as `hc_serve_connections_*` Prometheus series. Maintained
/// by the reactor thread alone (plain atomics for cross-thread reads).
#[derive(Debug, Default)]
pub struct ConnCounters {
    /// Connections currently open (`connections_open`, a gauge).
    pub open: AtomicI64,
    /// Connections accepted since boot (`connections_accepted_total`).
    pub accepted_total: AtomicU64,
    /// Requests beyond the first served on a reused connection
    /// (`keepalive_requests_total`).
    pub keepalive_requests_total: AtomicU64,
    /// Idle keep-alive connections closed by `--idle-conn-timeout-ms`
    /// (`idle_timeouts_total`).
    pub idle_timeouts_total: AtomicU64,
}

/// Fault-containment counters, rendered as the `faults` object in `/metrics`.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Handler panics caught and converted to `500` responses
    /// (`panics_total`).
    pub panics: AtomicU64,
    /// Requests (or batch items) answered `504` because their deadline
    /// expired (`deadline_exceeded_total`).
    pub deadline_exceeded: AtomicU64,
}

/// Shared server state: the pool, the result cache, and the metrics registry.
pub struct ServerState {
    /// Worker pool (requests + batch subtasks).
    pub pool: Pool,
    /// Content-addressed result cache (8-way sharded).
    pub cache: ShardedCache,
    /// Per-endpoint counters and histograms.
    pub metrics: Registry,
    /// Active configuration.
    pub config: Config,
    /// Set to request a graceful drain.
    pub shutdown: AtomicBool,
    /// Accepted requests not yet answered (queued + executing).
    pub in_flight: AtomicI64,
    /// Panic and deadline counters (see [`FaultCounters`]).
    pub faults: FaultCounters,
    /// The flight recorder behind `/debug/requests`.
    pub recorder: FlightRecorder,
    /// Live analysis sessions (`/session/*`), shared across workers.
    pub sessions: hc_session::SessionStore,
    /// Rolling multi-window SLO tracker fed once per finished request;
    /// surfaces in `/metrics` (`slo` object + Prometheus series) and flips
    /// `/healthz` to `degraded` while a burn-rate alert fires.
    pub slo: hc_obs::slo::SloEngine,
    /// Connection-lifecycle counters (see [`ConnCounters`]).
    pub conns: ConnCounters,
    /// Adaptive admission + autoscale controller (see [`crate::overload`]):
    /// workers feed it queue sojourns, the reactor ticks it and enforces its
    /// decisions.
    pub overload: crate::overload::OverloadController,
    /// The in-process time-series store behind `/debug/timeseries` and
    /// `hcm top`; `None` with `--tsdb-off`. Fed once per second by the
    /// collector thread (see [`crate::collector`]).
    pub tsdb: Option<Arc<hc_obs::tsdb::Tsdb>>,
}

/// A running server; dropping it does NOT stop the server — call
/// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state (tests inspect metrics and cache through this).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests a graceful drain; returns immediately.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop (and therefore the drained pool) to finish.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept thread panicked");
        }
    }
}

/// Binds the listener, spawns the pool and accept thread, and returns.
pub fn start(config: Config) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    signal::install();
    // Keep-alive fan-in needs one fd per idle client; raise the soft nofile
    // limit toward a comfortable ceiling. Best-effort: a locked-down limit
    // just means fewer concurrent connections, not a startup failure.
    let _ = crate::sys::raise_nofile_limit(65_536);
    // Widen the accept backlog past std's hardcoded 128 so a connection
    // storm queues instead of shedding half-open zombies (clamped by the
    // kernel to net.core.somaxconn).
    {
        use std::os::unix::io::AsRawFd;
        let _ = crate::sys::set_listen_backlog(listener.as_raw_fd(), 4096);
    }
    // The continuous profiler is process-global and idempotent: the first
    // server to start it wins, and shutdown leaves it running so profiles
    // stay cumulative across in-process restarts (tests, embedding).
    if config.profile_hz > 0 {
        hc_obs::profile::start(config.profile_hz);
    }

    let slo_config = hc_obs::slo::SloConfig {
        availability_objective: config.slo_availability,
        latency_objective: config.slo_availability,
        latency_threshold_ms: config.slo_latency_ms,
        ..hc_obs::slo::SloConfig::default()
    }
    .with_short_window(config.slo_window_s);

    // The pool starts at the autoscale floor; the overload control loop grows
    // it toward the ceiling on demand.
    let (workers_min, _) = config.worker_bounds();
    let tsdb = if config.tsdb_off {
        None
    } else {
        Some(Arc::new(hc_obs::tsdb::Tsdb::with_retention(
            config.tsdb_retention_s,
        )))
    };
    let state = Arc::new(ServerState {
        pool: Pool::new(workers_min, config.queue_depth),
        overload: crate::overload::OverloadController::new(config.target_queue_delay_ms),
        tsdb,
        cache: ShardedCache::new(config.cache_entries),
        metrics: Registry::new(),
        recorder: FlightRecorder::new(config.record_requests, config.record_survivors),
        sessions: hc_session::SessionStore::new(hc_session::SessionConfig {
            max_sessions: config.max_sessions,
            ttl: Duration::from_secs(config.session_ttl_s),
        }),
        slo: hc_obs::slo::SloEngine::new(slo_config),
        config,
        shutdown: AtomicBool::new(false),
        in_flight: AtomicI64::new(0),
        faults: FaultCounters::default(),
        conns: ConnCounters::default(),
    });
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("hc-serve-accept".to_string())
        .spawn(move || crate::reactor::run(listener, accept_state))
        .map_err(|e| format!("spawn accept thread: {e}"))?;
    if state.tsdb.is_some() {
        crate::collector::spawn(Arc::clone(&state));
    }

    Ok(ServerHandle {
        local_addr,
        state,
        accept_thread: Some(accept_thread),
    })
}

/// Generates a process-unique request id: server start time (µs since the
/// epoch, hex) plus a monotonically increasing sequence number.
pub(crate) fn next_request_id() -> String {
    static BOOT_US: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let boot = BOOT_US.get_or_init(|| {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    });
    format!("{boot:x}-{:x}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// The single code path for every unusable optional header: one structured
/// warn event (and one counter tick) per malformed value, carrying the
/// request id so the warning is attributable. Called after the request id is
/// resolved and recording has begun, so the warning also lands in the
/// request's flight record.
pub(crate) fn warn_malformed_headers(request_id: &str, malformed: &[(&'static str, String)]) {
    for (header, value) in malformed {
        hc_obs::obs_counter!("serve_malformed_header_total").inc();
        hc_obs::event(
            hc_obs::Level::Warn,
            "serve.malformed_header",
            &[
                (
                    "request_id",
                    hc_obs::FieldValue::Str(request_id.to_string()),
                ),
                ("header", hc_obs::FieldValue::Str((*header).to_string())),
                ("value", hc_obs::FieldValue::Str(value.clone())),
            ],
        );
    }
}

/// Resolves the request's trace context: a valid incoming `traceparent`
/// joins the caller's trace (its span id becomes our parent); an absent
/// header starts a fresh trace; a malformed one starts a fresh trace *and*
/// is appended to the request's malformed-header notes.
pub(crate) fn resolve_trace(request: &mut Request) -> TraceContext {
    match request.traceparent.take() {
        None => TraceContext::generate(),
        Some(raw) => match TraceContext::parse(&raw) {
            Ok(trace) => trace,
            Err(_) => {
                request.malformed_headers.push(("traceparent", raw));
                TraceContext::generate()
            }
        },
    }
}

/// Renders the `Server-Timing` response header value: the four request
/// phases, each as `name;dur=<milliseconds>` in wire order.
pub(crate) fn server_timing_value(phases: &PhaseTimings) -> String {
    let ms = |us: u64| us as f64 / 1000.0;
    format!(
        "queue;dur={:.3}, parse;dur={:.3}, compute;dur={:.3}, serialize;dur={:.3}",
        ms(phases.queue_us),
        ms(phases.parse_us),
        ms(phases.compute_us),
        ms(phases.serialize_us)
    )
}

/// Records a shed decision in the flight recorder, on the reactor thread:
/// the request never reaches a worker, but `/debug/requests/{id}` must still
/// explain why it was refused (priority class, ladder rung, `shed: true`).
/// Returns the request id so the `503`'s `X-Request-Id` joins the record.
pub(crate) fn record_shed(
    st: &ServerState,
    request: &mut Request,
    class: crate::overload::Class,
    state_at_admission: u8,
    started: Instant,
) -> String {
    let id = request.request_id.clone().unwrap_or_else(next_request_id);
    request.request_id = Some(id.clone());
    let trace = resolve_trace(request);
    request.traceparent = Some(trace.header_value());
    let recording = st
        .recorder
        .begin(&id, &request.method, &request.path, &trace);
    hc_obs::recorder::note_overload(
        class.as_str(),
        crate::overload::state_name(state_at_admission),
        true,
    );
    recording.finish(Outcome {
        status: 503,
        latency_us: started.elapsed().as_micros() as u64,
        phases: PhaseTimings::default(),
        slow: false,
        panicked: false,
    });
    id
}

/// One parsed request traveling between the reactor and the worker pool,
/// carrying the state an attempt needs and what must stay stable when a
/// parked watch re-runs it.
pub(crate) struct ReqTask {
    /// The request. `request_id` and `traceparent` are written back on the
    /// first attempt so re-runs of a parked watch keep the same identity.
    pub request: Request,
    /// When this request began on the connection: accept for the first
    /// request, first byte of the next request for keep-alive reuse. The
    /// latency/SLO/deadline clock.
    pub started: Instant,
    /// Time from `started` until the request was fully parsed (includes
    /// network arrival, like the old blocking read).
    pub parse_us: u64,
    /// When the reactor handed the task to the pool (re-stamped on each
    /// re-dispatch); pickup minus this is the queue phase.
    pub dispatched: Instant,
    /// `Some` on re-runs of a parked watch: the original long-poll deadline.
    pub park_deadline: Option<Instant>,
    /// Priority class assigned at admission (cache upgrades included) —
    /// recorded into the request's flight record.
    pub class: crate::overload::Class,
    /// Overload ladder rung at admission ([`crate::overload::STATE_OK`] etc.).
    pub admit_state: u8,
}

/// What one execution attempt of a request produced.
pub(crate) enum AttemptOutcome {
    /// A response for the reactor to write.
    Respond(Response),
    /// A session watch with nothing to report yet: park the connection until
    /// the session changes or the deadline passes, then re-run.
    Park(crate::session::ParkIntent),
}

/// Executes one attempt of a request on a worker thread: request id + trace
/// resolution, flight recording, the panic-isolated route call, and response
/// decoration (`X-Request-Id`, `traceparent`, `Server-Timing`).
///
/// Socket I/O, SLO recording, and in-flight accounting stay with the
/// reactor; this function never blocks on the network. A parked watch
/// abandons its recording (dropping the guard) — only the attempt that
/// answers the client records an outcome.
pub(crate) fn run_attempt(st: &Arc<ServerState>, task: &mut ReqTask) -> AttemptOutcome {
    // Phase clock: queue = dispatch → worker pickup, parse = request arrival
    // + parsing on the reactor, compute = routing + handler, serialize =
    // response assembly. Goes out as `Server-Timing` and into the recorder.
    let picked_up = Instant::now();
    let queue_us = picked_up.duration_since(task.dispatched).as_micros() as u64;
    // Feed the admission controller's EWMA: this sojourn sample is what the
    // brownout ladder and the autoscaler react to.
    st.overload.observe_queue_delay(queue_us);
    let started = task.started;
    let id = task
        .request
        .request_id
        .clone()
        .unwrap_or_else(next_request_id);
    task.request.request_id = Some(id.clone());
    let trace = resolve_trace(&mut task.request);
    task.request.traceparent = Some(trace.header_value());
    // Recording starts before the handler so every span, event, and numeric
    // note the request produces on this thread — including those emitted
    // while unwinding from a panic — attaches to its record.
    let recording = st
        .recorder
        .begin(&id, &task.request.method, &task.request.path, &trace);
    if task.park_deadline.is_none() {
        warn_malformed_headers(&id, &task.request.malformed_headers);
    }
    // Why this request was (not) shed: class and ladder rung at admission,
    // rendered as the record's `overload` object by `/debug/requests/{id}`.
    hc_obs::recorder::note_overload(
        task.class.as_str(),
        crate::overload::state_name(task.admit_state),
        false,
    );
    // Panic isolation: a handler panic (bug or armed failpoint) must cost
    // this request a 500, not the worker its life or later requests their
    // poisoned locks.
    let compute_start = Instant::now();
    crate::session::set_park_deadline(task.park_deadline);
    let request = &task.request;
    let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        router::route(st, request, started, &id)
    }));
    crate::session::set_park_deadline(None);
    let compute_us = compute_start.elapsed().as_micros() as u64;
    // Taken unconditionally: a stale intent must never leak into the next
    // job this pooled worker thread runs.
    let intent = crate::session::take_park_intent();
    if routed.is_ok() {
        if let Some(intent) = intent {
            // The placeholder response never reaches the client; dropping
            // the recording abandons it without an outcome.
            drop(recording);
            return AttemptOutcome::Park(intent);
        }
    }
    let panicked = routed.is_err();
    let resp = match routed {
        Ok(resp) => resp,
        Err(_) => {
            st.faults.panics.fetch_add(1, Ordering::Relaxed);
            st.metrics
                .record("_panic", true, false, started.elapsed(), Duration::ZERO);
            crate::http::HttpError::typed(
                500,
                "internal_panic",
                format!("internal panic while handling request {id}"),
            )
            .to_response()
        }
    };
    let serialize_start = Instant::now();
    let resp = resp
        .with_header("X-Request-Id", &id)
        .with_header("traceparent", &trace.header_value());
    let latency = started.elapsed();
    let phases = PhaseTimings {
        queue_us,
        parse_us: task.parse_us,
        compute_us,
        serialize_us: serialize_start.elapsed().as_micros() as u64,
    };
    let resp = resp.with_header("Server-Timing", &server_timing_value(&phases));
    let slow = st.config.slow_ms > 0 && latency >= Duration::from_millis(st.config.slow_ms);
    // Observed while the flight record is still armed on this thread, so the
    // latency histogram's per-bucket exemplars carry this request's id and
    // traceparent — the join from a Prometheus bucket to `/debug/requests/{id}`.
    hc_obs::obs_histogram!("serve_request_latency_us").observe(latency.as_micros() as u64);
    recording.finish(Outcome {
        status: resp.status,
        latency_us: latency.as_micros() as u64,
        phases,
        slow,
        panicked,
    });
    AttemptOutcome::Respond(resp)
}
