//! HTTP surface for live sessions (DESIGN.md §12).
//!
//! | Endpoint                        | Verb   | Body                     |
//! |---------------------------------|--------|--------------------------|
//! | `/session`                      | POST   | CSV ETC matrix           |
//! | `/session/{id}`                 | GET    | —                        |
//! | `/session/{id}/etc`             | PATCH  | `cell,`/`row,`/`col,` edit lines |
//! | `/session/{id}`                 | DELETE | —                        |
//! | `/session/{id}/watch?version=N` | GET    | —                        |
//!
//! The stateful parts (store, engine, warm solvers) live in `hc-session`;
//! this module only translates HTTP to store calls and store results to the
//! wire. The `measures` object in every session response is rendered by
//! [`crate::json::measure_body`] — the same builder `POST /measure` and
//! `/batch` items use, byte-for-byte.

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

use hc_session::{parse_edits, SessionError, SessionSnapshot, TryWatch};

use crate::handlers::{self, ReqCtx};
use crate::http::{HttpError, Request, Response};
use crate::json::JsonObject;
use crate::server::ServerState;

/// Default long-poll window for `GET /session/{id}/watch` when neither the
/// client nor the server sets a deadline.
const WATCH_DEFAULT_MS: u64 = 30_000;

/// Long-poll window cap while the overload ladder is past ok: a parked
/// watcher pins a reactor slot, and during brownout/shedding those slots are
/// the scarce resource — watchers answer `timed_out` quickly and re-poll
/// instead of parking for the full default window.
pub(crate) const OVERLOAD_WATCH_CAP_MS: u64 = 1_000;

/// What the [`watch`] handler asks of the reactor when nothing has changed
/// yet: park the connection on this session/watermark until a store waker
/// fires or `deadline` passes, then run the request again.
pub(crate) struct ParkIntent {
    pub id: String,
    pub since: u64,
    pub deadline: Instant,
}

thread_local! {
    /// Side-channel from [`watch`] to the worker's attempt loop. Handlers
    /// return [`Response`]s; a watch that wants to park instead leaves its
    /// intent here and returns a placeholder the attempt loop discards.
    static PARK_INTENT: RefCell<Option<ParkIntent>> = const { RefCell::new(None) };
    /// Set by the attempt loop on *re-runs* of a previously parked watch:
    /// the original deadline. `None` means a first attempt.
    static PARK_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Takes the park intent left by [`watch`], if any. The attempt loop calls
/// this unconditionally after every dispatch so a stale intent can never leak
/// into the next request on this pooled worker thread.
pub(crate) fn take_park_intent() -> Option<ParkIntent> {
    PARK_INTENT.with(|p| p.borrow_mut().take())
}

/// True while a park intent is pending (this dispatch decided to park);
/// the router skips metrics and logging for such attempts.
pub(crate) fn park_pending() -> bool {
    PARK_INTENT.with(|p| p.borrow().is_some())
}

/// Marks the current dispatch as a resumed parked watch carrying its original
/// deadline (`Some`), or a fresh attempt (`None`).
pub(crate) fn set_park_deadline(deadline: Option<Instant>) {
    PARK_DEADLINE.with(|d| d.set(deadline));
}

/// Maps a typed store failure to its HTTP error.
fn session_error(e: SessionError) -> HttpError {
    match e {
        SessionError::NotFound => HttpError::typed(
            404,
            "session_not_found",
            "no such session (unknown id, expired, or deleted)",
        ),
        SessionError::VersionConflict { current } => HttpError::typed(
            409,
            "version_conflict",
            format!("If-Match version does not match current version {current}"),
        )
        .with_details(format!("\"current_version\":{current}")),
        SessionError::Draining => HttpError::typed(
            503,
            "draining",
            "server is draining; session writes and watches are refused",
        ),
        SessionError::Full { max_sessions } => HttpError::typed(
            503,
            "sessions_full",
            format!("session store is full ({max_sessions} sessions; --max-sessions)"),
        ),
        SessionError::Measure(e) => handlers::measure_error(e),
    }
}

/// Renders the `recompute` object: how the last analysis ran.
fn stats_json(stats: &hc_session::RecomputeStats) -> String {
    JsonObject::new()
        .bool("warm", stats.warm)
        .bool("fallback", stats.fallback)
        .bool("cutover", stats.cutover)
        .u64("sinkhorn_iterations", stats.sinkhorn_iterations as u64)
        .u64("svd_iterations", stats.svd_iterations as u64)
        .finish()
}

/// Renders the standard session document shared by POST/GET/PATCH responses.
fn snapshot_json(snap: &SessionSnapshot) -> String {
    JsonObject::new()
        .str("id", &snap.id)
        .u64("version", snap.version)
        .raw(
            "measures",
            &crate::json::measure_body(&snap.report, &snap.task_names, &snap.machine_names),
        )
        .raw("recompute", &stats_json(&snap.stats))
        .finish()
}

/// `POST /session` — register a matrix and run the first (cold) analysis.
pub fn create(state: &ServerState, req: &Request, ctx: &ReqCtx<'_>) -> Result<Response, HttpError> {
    handlers::check_allowed(req, &["ecs"])?;
    let ecs = handlers::load_ecs(req, ctx)?;
    // Sessions registered from ETC seconds keep accepting edits in seconds;
    // `?ecs=1` registers (and edits) raw speeds.
    let etc_units = !req.has_param("ecs");
    let snap = state
        .sessions
        .create(ecs, etc_units, ctx.budget)
        .map_err(session_error)?;
    Ok(Response::json(snapshot_json(&snap)))
}

/// `GET /session/{id}` — current version and measures.
pub fn get(state: &ServerState, id: &str) -> Result<Response, HttpError> {
    let snap = state
        .sessions
        .get(id)
        .ok_or_else(|| session_error(SessionError::NotFound))?;
    Ok(Response::json(snapshot_json(&snap)))
}

/// `PATCH /session/{id}/etc` — apply edit lines and recompute incrementally.
pub fn patch(
    state: &ServerState,
    req: &Request,
    id: &str,
    ctx: &ReqCtx<'_>,
) -> Result<Response, HttpError> {
    handlers::check_allowed(req, &[])?;
    let text = req.body_text()?;
    if text.trim().is_empty() {
        return Err(HttpError::bad(
            "empty body: expected edit lines (cell,<task>,<machine>,<value> | \
             row,<task>,v1,... | col,<machine>,v1,...)",
        ));
    }
    // Names are fixed at session creation, so resolving against a snapshot
    // taken before the store lock is race-free.
    let snap = state
        .sessions
        .get(id)
        .ok_or_else(|| session_error(SessionError::NotFound))?;
    let edits = parse_edits(text, &snap.task_names, &snap.machine_names)
        .map_err(|e| HttpError::bad(e.to_string()))?;
    let snap = state
        .sessions
        .patch(id, &edits, req.if_match, ctx.budget)
        .map_err(session_error)?;
    Ok(Response::json(snapshot_json(&snap)))
}

/// `DELETE /session/{id}` — drop the session, waking any watchers.
pub fn delete(state: &ServerState, id: &str) -> Result<Response, HttpError> {
    if !state.sessions.delete(id) {
        return Err(session_error(SessionError::NotFound));
    }
    Ok(Response::json(
        JsonObject::new().bool("deleted", true).finish(),
    ))
}

/// `GET /session/{id}/watch?version=N` — long-poll for versions beyond `N`.
///
/// Bounded by the request's deadline machinery: the effective budget (client
/// `X-Timeout-Ms` clamped by `--request-timeout-ms`) caps the wait, falling
/// back to [`WATCH_DEFAULT_MS`] when no deadline applies. Expiring quietly is
/// a `200` with `"timed_out":true`, not an error — the client just re-polls.
///
/// The wait itself never blocks a worker: when nothing is past the watermark
/// yet, the handler leaves a [`ParkIntent`] in thread-local storage and the
/// attempt loop hands the connection back to the reactor, which re-runs the
/// request when a store waker fires or the deadline passes (the `resumed`
/// path here, which re-checks and renders the timeout body).
pub fn watch(
    state: &ServerState,
    req: &Request,
    id: &str,
    ctx: &ReqCtx<'_>,
) -> Result<Response, HttpError> {
    handlers::check_allowed(req, &["version"])?;
    let since: u64 = match req.param("version") {
        None => 0,
        Some(raw) => raw
            .parse()
            .map_err(|_| HttpError::bad(format!("query parameter version={raw:?} is malformed")))?,
    };
    let resumed = PARK_DEADLINE.with(|d| d.get());
    let deadline = resumed.unwrap_or_else(|| {
        // Under overload, cap the park so watchers cycle their reactor slots
        // quickly; already-parked watchers keep their original deadline.
        let default_window = if state.overload.current_state() != crate::overload::STATE_OK {
            Duration::from_millis(WATCH_DEFAULT_MS.min(OVERLOAD_WATCH_CAP_MS))
        } else {
            Duration::from_millis(WATCH_DEFAULT_MS)
        };
        let window = match ctx.budget.and_then(|b| b.remaining()) {
            Some(remaining) => remaining.min(default_window),
            None => default_window,
        };
        Instant::now() + window
    });
    match state.sessions.try_watch(id, since, resumed.is_none()) {
        Ok(TryWatch::Changed {
            snapshot,
            deltas,
            truncated,
        }) => {
            let mut arr = crate::json::JsonArray::new();
            for d in &deltas {
                arr.push_raw(
                    &JsonObject::new()
                        .u64("version", d.version)
                        .num("mph", d.mph)
                        .num("tdh", d.tdh)
                        .num("tma", d.tma)
                        .num("d_mph", d.d_mph)
                        .num("d_tdh", d.d_tdh)
                        .num("d_tma", d.d_tma)
                        .raw("recompute", &stats_json(&d.stats))
                        .finish(),
                );
            }
            Ok(Response::json(
                JsonObject::new()
                    .str("id", &snapshot.id)
                    .u64("version", snapshot.version)
                    .bool("timed_out", false)
                    .bool("truncated", truncated)
                    .raw("deltas", &arr.finish())
                    .raw(
                        "measures",
                        &crate::json::measure_body(
                            &snapshot.report,
                            &snapshot.task_names,
                            &snapshot.machine_names,
                        ),
                    )
                    .finish(),
            ))
        }
        Ok(TryWatch::NotYet { version }) => {
            if Instant::now() >= deadline {
                return Ok(Response::json(
                    JsonObject::new()
                        .str("id", id)
                        .u64("version", version)
                        .bool("timed_out", true)
                        .bool("truncated", false)
                        .raw("deltas", "[]")
                        .finish(),
                ));
            }
            PARK_INTENT.with(|p| {
                *p.borrow_mut() = Some(ParkIntent {
                    id: id.to_string(),
                    since,
                    deadline,
                })
            });
            // Placeholder: the attempt loop sees the intent and parks the
            // connection instead of writing this.
            Ok(Response::json(
                JsonObject::new().bool("parked", true).finish(),
            ))
        }
        Err(e) => Err(session_error(e)),
    }
}
