//! Worker thread pool with a bounded request queue and a batch subtask lane.
//!
//! Two queues, one worker set:
//!
//! * **requests** — bounded at `queue_depth`. The accept loop calls
//!   [`Pool::try_execute`]; when the queue is full the job is handed back so
//!   the caller can shed load with `503 Retry-After` instead of buffering
//!   unboundedly (backpressure, not OOM).
//! * **subtasks** — an unbounded lane for `/batch` fan-out, drained in
//!   *preference* to requests. It cannot grow without bound in practice: only
//!   running batch handlers (≤ worker count) feed it, each bounded by its
//!   request's matrix count.
//!
//! Deadlock freedom for nested fan-out: a batch handler running on a worker
//! never blocks waiting for queue space. It pushes subtasks and then *helps* —
//! popping subtask jobs (its own or another batch's) and running them inline
//! until its results are complete ([`Pool::help_until`]). Even with one worker
//! and a full request queue, batches make progress.
//!
//! Self-healing: jobs run under `catch_unwind` (a panicking job costs itself,
//! not the worker), and a worker thread that dies anyway — e.g. the
//! `worker.idle` chaos failpoint, which deliberately panics *outside* the
//! catch — is detected by a drop sentinel and respawned, counted in
//! `worker_respawns_total`. All pool locks recover from poisoning via
//! [`hc_obs::sync`], so a dying worker can never wedge the queues.
//!
//! Elastic sizing: the worker count is a *target*, not a constant. The
//! reactor's overload control loop calls [`Pool::set_target`] inside the
//! `--workers-min`/`--workers-max` bounds; growth spawns workers immediately
//! (counted in `worker_scale_up_total`), and shrink is cooperative — an idle
//! worker that finds itself surplus retires by exiting cleanly through the
//! same disarmed-sentinel path as shutdown (counted in
//! `worker_scale_down_total`). Busy workers never retire mid-backlog: the
//! retire check runs only when both queues are empty.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hc_obs::sync::{lock_recover, wait_recover, wait_timeout_recover};

use crate::json::JsonObject;

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Queues {
    requests: VecDeque<Job>,
    subtasks: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    queues: Mutex<Queues>,
    /// Signaled when work arrives or shutdown begins.
    work_ready: Condvar,
    /// Signaled whenever a job finishes (batch handlers wait on this).
    job_done: Condvar,
    /// Worker thread handles; respawned workers push their own handle here.
    workers: Mutex<Vec<JoinHandle<()>>>,
    queue_depth: usize,
    /// Worker threads currently alive (spawned minus retired; a panic-death
    /// keeps this constant because the sentinel respawn replaces it 1:1).
    live: AtomicUsize,
    /// Worker count the pool is converging toward ([`Pool::set_target`]).
    target: AtomicUsize,
    /// Monotonic index source so every spawned worker gets a unique thread
    /// name even as workers come and go.
    next_index: AtomicUsize,
    shed_total: AtomicU64,
    completed_total: AtomicU64,
    /// Jobs that panicked (caught; the worker survived).
    job_panics: AtomicU64,
    /// Workers that died and were replaced by the respawn sentinel.
    respawns: AtomicU64,
    /// Workers spawned by autoscale target raises (initial spawn excluded).
    scale_up: AtomicU64,
    /// Workers retired because they were surplus to the autoscale target.
    scale_down: AtomicU64,
}

/// The pool handle. Dropping it without [`Pool::shutdown`] detaches workers;
/// the server always shuts down explicitly. Shutdown takes `&self` so the pool
/// can live inside a shared `Arc<ServerState>`.
pub struct Pool {
    shared: Arc<Shared>,
}

impl Pool {
    /// Spawns `workers` threads sharing a request queue bounded at
    /// `queue_depth` pending jobs. The count is the initial target; the
    /// overload control loop may move it later via [`Pool::set_target`].
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            workers: Mutex::new(Vec::with_capacity(workers)),
            queue_depth: queue_depth.max(1),
            live: AtomicUsize::new(workers),
            target: AtomicUsize::new(workers),
            next_index: AtomicUsize::new(workers),
            shed_total: AtomicU64::new(0),
            completed_total: AtomicU64::new(0),
            job_panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            scale_up: AtomicU64::new(0),
            scale_down: AtomicU64::new(0),
        });
        for i in 0..workers {
            spawn_worker(&shared, i);
        }
        Self { shared }
    }

    /// Moves the worker-count target. Growth spawns new workers right away
    /// (each counted in `worker_scale_up_total`); shrink wakes the idle
    /// workers so surplus ones retire cooperatively (see module docs).
    pub fn set_target(&self, n: usize) {
        let n = n.max(1);
        self.shared.target.store(n, Ordering::Relaxed);
        loop {
            let live = self.shared.live.load(Ordering::Relaxed);
            if live >= n {
                break;
            }
            if self
                .shared
                .live
                .compare_exchange(live, live + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.shared.scale_up.fetch_add(1, Ordering::Relaxed);
                let index = self.shared.next_index.fetch_add(1, Ordering::Relaxed);
                spawn_worker(&self.shared, index);
            }
        }
        // Below-target wakes are harmless; surplus idle workers need the nudge
        // to notice the lowered target and retire.
        self.shared.work_ready.notify_all();
    }

    /// Checks whether a new request would be shed right now (queue full or
    /// shutting down), counting it as a shed when so. Lets the accept thread
    /// answer `503` without constructing (and losing) the connection job.
    pub fn would_shed(&self) -> bool {
        let q = lock_recover(&self.shared.queues);
        let full = q.shutting_down || q.requests.len() >= self.shared.queue_depth;
        drop(q);
        if full {
            self.shared.shed_total.fetch_add(1, Ordering::Relaxed);
        }
        full
    }

    /// Enqueues a request job, or returns it when the queue is full (the
    /// caller sheds the load) or the pool is shutting down.
    pub fn try_execute(&self, job: Job) -> Result<(), Job> {
        let mut q = lock_recover(&self.shared.queues);
        if q.shutting_down || q.requests.len() >= self.shared.queue_depth {
            drop(q);
            self.shared.shed_total.fetch_add(1, Ordering::Relaxed);
            return Err(job);
        }
        q.requests.push_back(job);
        drop(q);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Enqueues a batch subtask (never shed; see module docs for the bound).
    pub fn spawn_subtask(&self, job: Job) {
        let mut q = lock_recover(&self.shared.queues);
        q.subtasks.push_back(job);
        drop(q);
        self.shared.work_ready.notify_one();
    }

    /// Runs subtask jobs inline until `done()` reports true.
    ///
    /// Called by batch handlers after fanning out: the calling worker helps
    /// drain the subtask lane (running any batch's subtasks), and when the lane
    /// is momentarily empty it waits on the job-completion condvar — another
    /// worker may still be computing this batch's last subtask.
    pub fn help_until<F: Fn() -> bool>(&self, done: F) {
        loop {
            if done() {
                return;
            }
            let mut q = lock_recover(&self.shared.queues);
            if let Some(job) = q.subtasks.pop_front() {
                drop(q);
                job();
                self.shared.completed_total.fetch_add(1, Ordering::Relaxed);
                self.shared.job_done.notify_all();
                continue;
            }
            if done() {
                return;
            }
            // Re-check after a bounded wait: job_done wakes us when any worker
            // finishes a job; the timeout guards against lost wakeups.
            let (guard, _) =
                wait_timeout_recover(&self.shared.job_done, q, Duration::from_millis(20));
            drop(guard);
        }
    }

    /// Number of jobs shed because the queue was full.
    pub fn shed_total(&self) -> u64 {
        self.shared.shed_total.load(Ordering::Relaxed)
    }

    /// Number of jobs completed.
    pub fn completed_total(&self) -> u64 {
        self.shared.completed_total.load(Ordering::Relaxed)
    }

    /// Currently queued (not yet started) request jobs.
    pub fn queued(&self) -> usize {
        lock_recover(&self.shared.queues).requests.len()
    }

    /// Jobs that panicked under `catch_unwind` (the worker survived).
    pub fn job_panics_total(&self) -> u64 {
        self.shared.job_panics.load(Ordering::Relaxed)
    }

    /// Workers that died and were replaced by the respawn sentinel.
    pub fn worker_respawns_total(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Workers spawned by autoscale target raises.
    pub fn worker_scale_up_total(&self) -> u64 {
        self.shared.scale_up.load(Ordering::Relaxed)
    }

    /// Workers retired as surplus to the autoscale target.
    pub fn worker_scale_down_total(&self) -> u64 {
        self.shared.scale_down.load(Ordering::Relaxed)
    }

    /// Pool gauges as a JSON object for `/metrics`.
    pub fn stats_json(&self) -> String {
        JsonObject::new()
            .u64("workers", self.worker_count() as u64)
            .u64("queue_depth", self.shared.queue_depth as u64)
            .u64("queued", self.queued() as u64)
            .u64("completed_total", self.completed_total())
            .u64("shed_total", self.shed_total())
            .u64("job_panics_total", self.job_panics_total())
            .u64("worker_respawns_total", self.worker_respawns_total())
            .u64("worker_scale_up_total", self.worker_scale_up_total())
            .u64("worker_scale_down_total", self.worker_scale_down_total())
            .finish()
    }

    /// Number of live worker threads (a gauge under autoscaling).
    pub fn worker_count(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stops accepting new requests, drains everything
    /// already queued, and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = lock_recover(&self.shared.queues);
            q.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        // A dying worker's sentinel may push a replacement handle while we
        // join the first batch; loop until the list stays empty. A handle
        // joining with Err means that worker died panicking — its replacement
        // (or the shutdown flag) has already handled it, so the Err is not
        // propagated.
        loop {
            let handles: Vec<_> = lock_recover(&self.shared.workers).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

/// A lock-protected handoff queue from worker threads back to the reactor.
///
/// Workers [`push`](CompletionQueue::push) finished work; each push invokes
/// `notify` (the reactor's wakeup-pipe write) so the event loop leaves
/// `epoll_wait` and [`drain`](CompletionQueue::drain)s the batch. The notify
/// callback must be cheap and non-blocking — it runs on the worker thread
/// while no queue lock is held.
pub struct CompletionQueue<T> {
    items: Mutex<Vec<T>>,
    notify: Box<dyn Fn() + Send + Sync>,
}

impl<T> CompletionQueue<T> {
    /// A queue whose pushes invoke `notify`.
    pub fn new(notify: impl Fn() + Send + Sync + 'static) -> Self {
        Self {
            items: Mutex::new(Vec::new()),
            notify: Box::new(notify),
        }
    }

    /// Enqueues one completion and signals the reactor.
    pub fn push(&self, item: T) {
        lock_recover(&self.items).push(item);
        (self.notify)();
    }

    /// Takes everything queued so far (oldest first).
    pub fn drain(&self) -> Vec<T> {
        std::mem::take(&mut *lock_recover(&self.items))
    }
}

/// Spawns one worker thread and registers its handle in `shared.workers`.
fn spawn_worker(shared: &Arc<Shared>, index: usize) {
    let for_thread = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("hc-serve-worker-{index}"))
        .spawn(move || {
            let mut sentinel = RespawnSentinel {
                shared: Arc::clone(&for_thread),
                index,
                armed: true,
            };
            worker_loop(&for_thread);
            // Clean exit (shutdown): the sentinel must not respawn.
            sentinel.armed = false;
        })
        .expect("spawn worker thread");
    lock_recover(&shared.workers).push(handle);
}

/// Armed for the lifetime of a worker thread: if the thread unwinds while the
/// sentinel is armed (a panic escaped the per-job catch, e.g. the
/// `worker.idle` failpoint), its drop spawns a replacement so the pool's
/// capacity self-heals. Disarmed on clean shutdown exit.
struct RespawnSentinel {
    shared: Arc<Shared>,
    index: usize,
    armed: bool,
}

impl Drop for RespawnSentinel {
    fn drop(&mut self) {
        if !self.armed || lock_recover(&self.shared.queues).shutting_down {
            return;
        }
        self.shared.respawns.fetch_add(1, Ordering::Relaxed);
        spawn_worker(&self.shared, self.index);
    }
}

/// Claims a retirement slot when this worker is surplus to the autoscale
/// target: CAS-decrements `live` so exactly one worker exits per unit of
/// surplus, however many race. Never retires the last worker.
fn try_retire(shared: &Shared) -> bool {
    loop {
        let target = shared.target.load(Ordering::Relaxed);
        let live = shared.live.load(Ordering::Relaxed);
        if live <= target || live <= 1 {
            return false;
        }
        if shared
            .live
            .compare_exchange(live, live - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            shared.scale_down.fetch_add(1, Ordering::Relaxed);
            return true;
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock_recover(&shared.queues);
            loop {
                // Subtasks first: they unblock an already-running batch request.
                if let Some(job) = q.subtasks.pop_front() {
                    break Some(job);
                }
                if let Some(job) = q.requests.pop_front() {
                    break Some(job);
                }
                if q.shutting_down {
                    break None;
                }
                // Both queues are empty: an idle surplus worker retires here,
                // exiting through the same clean path as shutdown.
                if try_retire(shared) {
                    break None;
                }
                q = wait_recover(&shared.work_ready, q);
            }
        };
        match job {
            Some(job) => {
                // A panicking job is caught here so the worker survives; the
                // connection-level catch has already answered the client 500.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                    shared.job_panics.fetch_add(1, Ordering::Relaxed);
                }
                shared.completed_total.fetch_add(1, Ordering::Relaxed);
                shared.job_done.notify_all();
                // Deliberate chaos crash site, *outside* the catch and *after*
                // the job's response went out: a panic here kills this worker
                // without losing a request, exercising the respawn sentinel.
                hc_obs::failpoints::fire("worker.idle");
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_jobs() {
        let pool = Pool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("queue should not fill"));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn sheds_when_full() {
        let pool = Pool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the single worker.
        {
            let g = Arc::clone(&gate);
            pool.try_execute(Box::new(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .map_err(|_| ())
            .unwrap();
        }
        // Wait until the worker picked the blocker up, then fill the queue.
        while pool.queued() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.try_execute(Box::new(|| {})).is_ok());
        assert!(pool.try_execute(Box::new(|| {})).is_ok());
        // Queue (depth 2) now full: the next job must be handed back.
        assert!(pool.try_execute(Box::new(|| {})).is_err());
        assert_eq!(pool.shed_total(), 1);
        // Release and drain.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn batch_helping_makes_progress_with_one_worker() {
        // One worker, tiny queue: the batch job itself occupies the only
        // worker, and its subtasks still complete via helping.
        let pool = Arc::new(Pool::new(1, 1));
        let results = Arc::new(Mutex::new(vec![false; 16]));
        let done = Arc::new(AtomicUsize::new(0));
        let (p2, r2, d2) = (Arc::clone(&pool), Arc::clone(&results), Arc::clone(&done));
        let outcome = Arc::new(Mutex::new(None::<bool>));
        let o2 = Arc::clone(&outcome);
        pool.try_execute(Box::new(move || {
            for i in 0..16 {
                let (r3, d3) = (Arc::clone(&r2), Arc::clone(&d2));
                p2.spawn_subtask(Box::new(move || {
                    r3.lock().unwrap()[i] = true;
                    d3.fetch_add(1, Ordering::SeqCst);
                }));
            }
            let d4 = Arc::clone(&d2);
            p2.help_until(move || d4.load(Ordering::SeqCst) == 16);
            *o2.lock().unwrap() = Some(r2.lock().unwrap().iter().all(|&b| b));
        }))
        .map_err(|_| ())
        .unwrap();
        // Spin until the batch reports.
        for _ in 0..1000 {
            if outcome.lock().unwrap().is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(*outcome.lock().unwrap(), Some(true));
        pool.shutdown();
    }

    #[test]
    fn panicking_job_is_caught_and_counted() {
        let pool = Pool::new(2, 64);
        pool.try_execute(Box::new(|| panic!("deliberate test panic: job bug")))
            .map_err(|_| ())
            .unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .map_err(|_| ())
            .unwrap();
        }
        pool.shutdown();
        // Every later job still ran: the panic cost one job, not a worker.
        assert_eq!(counter.load(Ordering::SeqCst), 20);
        assert_eq!(pool.job_panics_total(), 1);
        assert_eq!(pool.worker_respawns_total(), 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = Pool::new(2, 128);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                std::thread::sleep(Duration::from_micros(100));
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .map_err(|_| ())
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn set_target_scales_up_and_down() {
        let pool = Pool::new(1, 64);
        assert_eq!(pool.worker_count(), 1);
        pool.set_target(3);
        assert_eq!(pool.worker_count(), 3, "growth is immediate");
        assert_eq!(pool.worker_scale_up_total(), 2);
        // New workers actually run jobs.
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..30 {
            let c = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .map_err(|_| ())
            .unwrap();
        }
        // Shrink: surplus idle workers retire cooperatively.
        pool.set_target(1);
        for _ in 0..500 {
            if pool.worker_count() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.worker_count(), 1, "surplus workers retire when idle");
        assert_eq!(pool.worker_scale_down_total(), 2);
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 30);
        assert_eq!(pool.worker_respawns_total(), 0, "retirement is not a death");
    }

    #[test]
    fn rejects_after_shutdown_flag() {
        let pool = Pool::new(1, 4);
        {
            let mut q = pool.shared.queues.lock().unwrap();
            q.shutting_down = true;
        }
        assert!(pool.try_execute(Box::new(|| {})).is_err());
        pool.shutdown();
    }
}
