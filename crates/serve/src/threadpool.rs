//! Worker thread pool with a bounded request queue and a batch subtask lane.
//!
//! Two queues, one worker set:
//!
//! * **requests** — bounded at `queue_depth`. The accept loop calls
//!   [`Pool::try_execute`]; when the queue is full the job is handed back so
//!   the caller can shed load with `503 Retry-After` instead of buffering
//!   unboundedly (backpressure, not OOM).
//! * **subtasks** — an unbounded lane for `/batch` fan-out, drained in
//!   *preference* to requests. It cannot grow without bound in practice: only
//!   running batch handlers (≤ worker count) feed it, each bounded by its
//!   request's matrix count.
//!
//! Deadlock freedom for nested fan-out: a batch handler running on a worker
//! never blocks waiting for queue space. It pushes subtasks and then *helps* —
//! popping subtask jobs (its own or another batch's) and running them inline
//! until its results are complete ([`Pool::help_until`]). Even with one worker
//! and a full request queue, batches make progress.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::JsonObject;

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Queues {
    requests: VecDeque<Job>,
    subtasks: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    queues: Mutex<Queues>,
    /// Signaled when work arrives or shutdown begins.
    work_ready: Condvar,
    /// Signaled whenever a job finishes (batch handlers wait on this).
    job_done: Condvar,
    queue_depth: usize,
    shed_total: AtomicU64,
    completed_total: AtomicU64,
}

/// The pool handle. Dropping it without [`Pool::shutdown`] detaches workers;
/// the server always shuts down explicitly. Shutdown takes `&self` so the pool
/// can live inside a shared `Arc<ServerState>`.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl Pool {
    /// Spawns `workers` threads sharing a request queue bounded at
    /// `queue_depth` pending jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            queue_depth: queue_depth.max(1),
            shed_total: AtomicU64::new(0),
            completed_total: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
            worker_count: workers,
        }
    }

    /// Checks whether a new request would be shed right now (queue full or
    /// shutting down), counting it as a shed when so. Lets the accept thread
    /// answer `503` without constructing (and losing) the connection job.
    pub fn would_shed(&self) -> bool {
        let q = self.shared.queues.lock().expect("pool mutex poisoned");
        let full = q.shutting_down || q.requests.len() >= self.shared.queue_depth;
        drop(q);
        if full {
            self.shared.shed_total.fetch_add(1, Ordering::Relaxed);
        }
        full
    }

    /// Enqueues a request job, or returns it when the queue is full (the
    /// caller sheds the load) or the pool is shutting down.
    pub fn try_execute(&self, job: Job) -> Result<(), Job> {
        let mut q = self.shared.queues.lock().expect("pool mutex poisoned");
        if q.shutting_down || q.requests.len() >= self.shared.queue_depth {
            drop(q);
            self.shared.shed_total.fetch_add(1, Ordering::Relaxed);
            return Err(job);
        }
        q.requests.push_back(job);
        drop(q);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Enqueues a batch subtask (never shed; see module docs for the bound).
    pub fn spawn_subtask(&self, job: Job) {
        let mut q = self.shared.queues.lock().expect("pool mutex poisoned");
        q.subtasks.push_back(job);
        drop(q);
        self.shared.work_ready.notify_one();
    }

    /// Runs subtask jobs inline until `done()` reports true.
    ///
    /// Called by batch handlers after fanning out: the calling worker helps
    /// drain the subtask lane (running any batch's subtasks), and when the lane
    /// is momentarily empty it waits on the job-completion condvar — another
    /// worker may still be computing this batch's last subtask.
    pub fn help_until<F: Fn() -> bool>(&self, done: F) {
        loop {
            if done() {
                return;
            }
            let mut q = self.shared.queues.lock().expect("pool mutex poisoned");
            if let Some(job) = q.subtasks.pop_front() {
                drop(q);
                job();
                self.shared.completed_total.fetch_add(1, Ordering::Relaxed);
                self.shared.job_done.notify_all();
                continue;
            }
            if done() {
                return;
            }
            // Re-check after a bounded wait: job_done wakes us when any worker
            // finishes a job; the timeout guards against lost wakeups.
            let (guard, _) = self
                .shared
                .job_done
                .wait_timeout(q, Duration::from_millis(20))
                .expect("pool mutex poisoned");
            drop(guard);
        }
    }

    /// Number of jobs shed because the queue was full.
    pub fn shed_total(&self) -> u64 {
        self.shared.shed_total.load(Ordering::Relaxed)
    }

    /// Number of jobs completed.
    pub fn completed_total(&self) -> u64 {
        self.shared.completed_total.load(Ordering::Relaxed)
    }

    /// Currently queued (not yet started) request jobs.
    pub fn queued(&self) -> usize {
        self.shared
            .queues
            .lock()
            .expect("pool mutex poisoned")
            .requests
            .len()
    }

    /// Pool gauges as a JSON object for `/metrics`.
    pub fn stats_json(&self) -> String {
        JsonObject::new()
            .u64("workers", self.worker_count as u64)
            .u64("queue_depth", self.shared.queue_depth as u64)
            .u64("queued", self.queued() as u64)
            .u64("completed_total", self.completed_total())
            .u64("shed_total", self.shed_total())
            .finish()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Graceful shutdown: stops accepting new requests, drains everything
    /// already queued, and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queues.lock().expect("pool mutex poisoned");
            q.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("pool workers mutex poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            handle.join().expect("worker panicked");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queues.lock().expect("pool mutex poisoned");
            loop {
                // Subtasks first: they unblock an already-running batch request.
                if let Some(job) = q.subtasks.pop_front() {
                    break Some(job);
                }
                if let Some(job) = q.requests.pop_front() {
                    break Some(job);
                }
                if q.shutting_down {
                    break None;
                }
                q = shared.work_ready.wait(q).expect("pool mutex poisoned");
            }
        };
        match job {
            Some(job) => {
                job();
                shared.completed_total.fetch_add(1, Ordering::Relaxed);
                shared.job_done.notify_all();
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_jobs() {
        let pool = Pool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("queue should not fill"));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn sheds_when_full() {
        let pool = Pool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the single worker.
        {
            let g = Arc::clone(&gate);
            pool.try_execute(Box::new(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .map_err(|_| ())
            .unwrap();
        }
        // Wait until the worker picked the blocker up, then fill the queue.
        while pool.queued() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.try_execute(Box::new(|| {})).is_ok());
        assert!(pool.try_execute(Box::new(|| {})).is_ok());
        // Queue (depth 2) now full: the next job must be handed back.
        assert!(pool.try_execute(Box::new(|| {})).is_err());
        assert_eq!(pool.shed_total(), 1);
        // Release and drain.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn batch_helping_makes_progress_with_one_worker() {
        // One worker, tiny queue: the batch job itself occupies the only
        // worker, and its subtasks still complete via helping.
        let pool = Arc::new(Pool::new(1, 1));
        let results = Arc::new(Mutex::new(vec![false; 16]));
        let done = Arc::new(AtomicUsize::new(0));
        let (p2, r2, d2) = (Arc::clone(&pool), Arc::clone(&results), Arc::clone(&done));
        let outcome = Arc::new(Mutex::new(None::<bool>));
        let o2 = Arc::clone(&outcome);
        pool.try_execute(Box::new(move || {
            for i in 0..16 {
                let (r3, d3) = (Arc::clone(&r2), Arc::clone(&d2));
                p2.spawn_subtask(Box::new(move || {
                    r3.lock().unwrap()[i] = true;
                    d3.fetch_add(1, Ordering::SeqCst);
                }));
            }
            let d4 = Arc::clone(&d2);
            p2.help_until(move || d4.load(Ordering::SeqCst) == 16);
            *o2.lock().unwrap() = Some(r2.lock().unwrap().iter().all(|&b| b));
        }))
        .map_err(|_| ())
        .unwrap();
        // Spin until the batch reports.
        for _ in 0..1000 {
            if outcome.lock().unwrap().is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(*outcome.lock().unwrap(), Some(true));
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = Pool::new(2, 128);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                std::thread::sleep(Duration::from_micros(100));
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .map_err(|_| ())
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn rejects_after_shutdown_flag() {
        let pool = Pool::new(1, 4);
        {
            let mut q = pool.shared.queues.lock().unwrap();
            q.shutting_down = true;
        }
        assert!(pool.try_execute(Box::new(|| {})).is_err());
        pool.shutdown();
    }
}
