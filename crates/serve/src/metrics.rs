//! Observability: per-endpoint counters and latency histograms.
//!
//! Latencies land in log₂ microsecond buckets (`< 1 µs`, `< 2 µs`, … `< 2²³
//! µs ≈ 8.4 s`, plus an overflow bucket), which keeps recording allocation-free
//! and gives `/metrics` enough resolution to estimate p50/p95/p99 within a
//! factor of two — plenty for spotting regressions and cache effects.
//!
//! Two histograms are kept per endpoint:
//!
//! * `latency_*` — measured **from accept**, so queue wait under overload is
//!   included and overload latency is not under-reported;
//! * `service_*` — worker pickup to response, the pure handler cost.
//!
//! The gap between the two is time spent waiting in the bounded request queue.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::JsonObject;

/// Number of log₂ latency buckets (the last one is overflow).
pub const BUCKETS: usize = 24;

/// Counters for one endpoint.
#[derive(Debug, Clone)]
pub struct EndpointStats {
    /// Requests handled (including errors).
    pub count: u64,
    /// Requests answered with status ≥ 400.
    pub errors: u64,
    /// Requests served from the result cache.
    pub cache_hits: u64,
    /// Log₂-bucketed accept-to-response latency histogram (microseconds),
    /// queue wait included.
    pub latency_buckets: [u64; BUCKETS],
    /// Total accept-to-response latency in microseconds.
    pub total_us: u64,
    /// Log₂-bucketed service-time histogram (microseconds): worker pickup to
    /// response, excluding queue wait.
    pub service_buckets: [u64; BUCKETS],
    /// Total service time in microseconds.
    pub service_total_us: u64,
}

fn bucket_of(us: u64) -> usize {
    (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
}

impl EndpointStats {
    fn new() -> Self {
        Self {
            count: 0,
            errors: 0,
            cache_hits: 0,
            latency_buckets: [0; BUCKETS],
            total_us: 0,
            service_buckets: [0; BUCKETS],
            service_total_us: 0,
        }
    }

    fn record(&mut self, error: bool, cache_hit: bool, latency: Duration, service: Duration) {
        self.count += 1;
        if error {
            self.errors += 1;
        }
        if cache_hit {
            self.cache_hits += 1;
        }
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.total_us += us;
        self.latency_buckets[bucket_of(us)] += 1;
        let service_us = service.as_micros().min(u64::MAX as u128) as u64;
        self.service_total_us += service_us;
        self.service_buckets[bucket_of(service_us)] += 1;
    }

    /// Smallest bucket upper bound (µs) below which at least `q` of samples fall.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        quantile_upper_us_of(&self.latency_buckets, self.count, q)
    }

    fn to_json(&self) -> String {
        let render_hist = |buckets: &[u64; BUCKETS]| {
            let mut hist = JsonObject::new();
            for (k, &n) in buckets.iter().enumerate() {
                if n > 0 {
                    hist = hist.u64(&format!("le_{}us", 1u64 << k), n);
                }
            }
            hist.finish()
        };
        JsonObject::new()
            .u64("count", self.count)
            .u64("errors", self.errors)
            .u64("cache_hits", self.cache_hits)
            .u64("latency_total_us", self.total_us)
            .u64("latency_p50_us_upper", self.quantile_upper_us(0.50))
            .u64("latency_p95_us_upper", self.quantile_upper_us(0.95))
            .u64("latency_p99_us_upper", self.quantile_upper_us(0.99))
            .raw("latency_histogram_us", &render_hist(&self.latency_buckets))
            .u64("service_total_us", self.service_total_us)
            .raw("service_histogram_us", &render_hist(&self.service_buckets))
            .finish()
    }
}

/// `q`-quantile upper bound (µs) of one log₂ bucket array holding `count`
/// samples. Standalone so the tsdb collector can run it over per-interval
/// *delta* buckets, not just cumulative endpoint stats.
pub(crate) fn quantile_upper_us_of(buckets: &[u64; BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = (count as f64 * q).ceil() as u64;
    let mut seen = 0;
    for (k, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= target {
            return 1u64 << k;
        }
    }
    1u64 << (BUCKETS - 1)
}

/// The server-wide metrics registry.
#[derive(Debug)]
pub struct Registry {
    endpoints: Mutex<BTreeMap<&'static str, EndpointStats>>,
    started: Instant,
}

impl Registry {
    /// Creates an empty registry with the uptime clock started now.
    pub fn new() -> Self {
        Self {
            endpoints: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// Records one handled request against `endpoint`.
    ///
    /// `latency` is measured from accept (queue wait included); `service` is
    /// the handler-only duration. Paths that never reach a worker (shedding,
    /// unreadable requests) pass `Duration::ZERO` service time.
    pub fn record(
        &self,
        endpoint: &'static str,
        error: bool,
        cache_hit: bool,
        latency: Duration,
        service: Duration,
    ) {
        hc_obs::sync::lock_recover(&self.endpoints)
            .entry(endpoint)
            .or_insert_with(EndpointStats::new)
            .record(error, cache_hit, latency, service);
    }

    /// Time elapsed since the registry (i.e. the server) started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Point-in-time copy of one endpoint's stats (for tests).
    pub fn snapshot(&self, endpoint: &str) -> Option<EndpointStats> {
        hc_obs::sync::lock_recover(&self.endpoints)
            .get(endpoint)
            .cloned()
    }

    /// Merged copy of every endpoint's stats — the whole-server view the
    /// tsdb collector samples once per second.
    pub fn merged(&self) -> EndpointStats {
        let endpoints = hc_obs::sync::lock_recover(&self.endpoints);
        let mut m = EndpointStats::new();
        for s in endpoints.values() {
            m.count += s.count;
            m.errors += s.errors;
            m.cache_hits += s.cache_hits;
            m.total_us += s.total_us;
            m.service_total_us += s.service_total_us;
            for k in 0..BUCKETS {
                m.latency_buckets[k] += s.latency_buckets[k];
                m.service_buckets[k] += s.service_buckets[k];
            }
        }
        m
    }

    /// Point-in-time copy of every endpoint's stats, sorted by name. Feeds
    /// the Prometheus renderer, which needs all series of one metric name
    /// (e.g. `hc_serve_requests_total{endpoint=...}`) emitted together.
    pub fn endpoints_snapshot(&self) -> Vec<(&'static str, EndpointStats)> {
        hc_obs::sync::lock_recover(&self.endpoints)
            .iter()
            .map(|(name, stats)| (*name, stats.clone()))
            .collect()
    }

    /// Renders the registry (plus externally-owned pool and cache gauges) as
    /// the `/metrics` JSON document.
    ///
    /// `in_flight` is the number of accepted requests not yet answered,
    /// `faults` is the panic/deadline counter object, `recorder` is the
    /// flight-recorder stats object, and `library` is the merged [`hc_obs`]
    /// registry export ([`hc_obs::metrics::export_json`]) so one scrape
    /// covers both server and library counters.
    /// `sessions` is the live-session counter object
    /// ([`sessions_json`]), `slo` the burn-rate snapshot ([`slo_json`]), and
    /// `overload` the admission-controller snapshot
    /// ([`crate::overload::OverloadSnapshot::to_json`]).
    #[allow(clippy::too_many_arguments)]
    pub fn to_json(
        &self,
        pool: &str,
        connections: &str,
        cache: &str,
        faults: &str,
        recorder: &str,
        sessions: &str,
        slo: &str,
        overload: &str,
        in_flight: i64,
        library: &str,
    ) -> String {
        let endpoints = hc_obs::sync::lock_recover(&self.endpoints);
        let mut per_endpoint = JsonObject::new();
        let mut total = 0u64;
        for (name, stats) in endpoints.iter() {
            per_endpoint = per_endpoint.raw(name, &stats.to_json());
            total += stats.count;
        }
        JsonObject::new()
            .u64("uptime_seconds", self.started.elapsed().as_secs())
            .raw("build", &build_info_json())
            .u64("requests_total", total)
            .i64("requests_in_flight", in_flight)
            .raw("endpoints", &per_endpoint.finish())
            .raw("pool", pool)
            .raw("connections", connections)
            .raw("cache", cache)
            .raw("faults", faults)
            .raw("recorder", recorder)
            .raw("sessions", sessions)
            .raw("slo", slo)
            .raw("overload", overload)
            .raw("library", library)
            .finish()
    }
}

/// Live-session counters, read once per scrape from the shared [`hc_obs`]
/// registry so the JSON `sessions` object and the Prometheus
/// `hc_serve_sessions_*` series agree by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionCounters {
    /// Sessions currently alive (`session_active` gauge).
    pub active: i64,
    /// Sessions ever created.
    pub created: u64,
    /// Sessions removed by explicit `DELETE`.
    pub deleted: u64,
    /// Sessions removed by TTL expiry.
    pub expired: u64,
    /// Sessions removed by LRU eviction at `--max-sessions`.
    pub evicted: u64,
    /// `PATCH /session/{id}/etc` requests applied.
    pub patches: u64,
    /// `GET /session/{id}/watch` long-polls started.
    pub watches: u64,
    /// Long-polls answered with deltas (woken by a version change).
    pub watch_wakes: u64,
    /// `If-Match` version conflicts answered `409`.
    pub conflicts: u64,
    /// Watchers flushed by a drain.
    pub drains: u64,
    /// Warm recomputes that silently fell back to a cold solve.
    pub warm_fallbacks: u64,
    /// Warm attempts skipped because the matrix exceeded the size cutover
    /// (warm would win iterations but lose wall time).
    pub warm_cutovers: u64,
    /// Total recomputes (cold creates included).
    pub recomputes: u64,
    /// Recomputes served by the warm path.
    pub recomputes_warm: u64,
}

/// Reads the current [`SessionCounters`] from the global metrics registry.
pub fn session_counters() -> SessionCounters {
    let c = |name: &str| hc_obs::metrics::counter_value(name).unwrap_or(0);
    SessionCounters {
        active: hc_obs::metrics::gauge_value("session_active").unwrap_or(0),
        created: c("session_created_total"),
        deleted: c("session_deleted_total"),
        expired: c("session_expired_total"),
        evicted: c("session_evicted_total"),
        patches: c("session_patch_total"),
        watches: c("session_watch_total"),
        watch_wakes: c("session_watch_wake_total"),
        conflicts: c("session_conflict_total"),
        drains: c("session_drain_total"),
        warm_fallbacks: c("session_warm_fallback_total"),
        warm_cutovers: c("session_warm_cutover_total"),
        recomputes: c("session_recompute_total"),
        recomputes_warm: c("session_recompute_warm_total"),
    }
}

/// Renders the `/metrics` JSON `connections` object from the reactor's
/// connection counters — the same atomics the Prometheus
/// `hc_serve_connections_*` / `hc_serve_keepalive_*` series read, so the two
/// expositions agree (goldened in the tests).
pub fn connections_json(c: &crate::server::ConnCounters) -> String {
    use std::sync::atomic::Ordering;
    JsonObject::new()
        .i64("open", c.open.load(Ordering::Relaxed))
        .u64("accepted_total", c.accepted_total.load(Ordering::Relaxed))
        .u64(
            "keepalive_requests_total",
            c.keepalive_requests_total.load(Ordering::Relaxed),
        )
        .u64(
            "idle_timeouts_total",
            c.idle_timeouts_total.load(Ordering::Relaxed),
        )
        .finish()
}

/// Renders the `/metrics` JSON `sessions` object.
pub fn sessions_json(s: &SessionCounters) -> String {
    JsonObject::new()
        .i64("active", s.active)
        .u64("created_total", s.created)
        .u64("deleted_total", s.deleted)
        .u64("expired_total", s.expired)
        .u64("evicted_total", s.evicted)
        .u64("patches_total", s.patches)
        .u64("watches_total", s.watches)
        .u64("watch_wakes_total", s.watch_wakes)
        .u64("conflicts_total", s.conflicts)
        .u64("drains_total", s.drains)
        .u64("warm_fallbacks_total", s.warm_fallbacks)
        .u64("warm_cutovers_total", s.warm_cutovers)
        .u64("recomputes_total", s.recomputes)
        .u64("recomputes_warm_total", s.recomputes_warm)
        .finish()
}

fn window_json(w: &hc_obs::slo::WindowStats) -> String {
    JsonObject::new()
        .u64("seconds", w.seconds)
        .u64("total", w.total)
        .u64("bad", w.bad)
        .num("error_rate", w.error_rate)
        .num("burn_rate", w.burn_rate)
        .finish()
}

fn objective_fields(obj: JsonObject, o: &hc_obs::slo::ObjectiveSnapshot) -> JsonObject {
    obj.num("objective", o.objective)
        .raw("short", &window_json(&o.short))
        .raw("mid", &window_json(&o.mid))
        .raw("long", &window_json(&o.long))
        .bool("fast_alert", o.fast_alert)
        .bool("slow_alert", o.slow_alert)
}

/// Renders the `/metrics` JSON `slo` object from one engine snapshot.
pub fn slo_json(s: &hc_obs::slo::SloSnapshot) -> String {
    let availability = objective_fields(JsonObject::new(), &s.availability).finish();
    let mut obj = JsonObject::new()
        .bool("degraded", s.degraded)
        .raw("availability", &availability);
    obj = match &s.latency {
        Some((threshold_ms, o)) => {
            let lat = objective_fields(JsonObject::new().u64("threshold_ms", *threshold_ms), o);
            obj.raw("latency", &lat.finish())
        }
        None => obj.raw("latency", "null"),
    };
    obj.finish()
}

/// Renders the whole `/metrics?format=prometheus` document: per-endpoint
/// counters and latency/service histograms (as cumulative `_bucket{le=...}`
/// series), pool/cache/fault/recorder gauges and counters, and the merged
/// `hc_obs` library registry — one scrape covers everything a stock
/// Prometheus server needs.
pub fn prometheus_document(state: &crate::server::ServerState) -> String {
    use hc_obs::prom::PromWriter;

    let mut w = PromWriter::new();
    let endpoints = state.metrics.endpoints_snapshot();

    w.type_line("hc_serve_requests_total", "counter");
    for (name, s) in &endpoints {
        w.sample(
            "hc_serve_requests_total",
            &[("endpoint", name)],
            &s.count.to_string(),
        );
    }
    w.type_line("hc_serve_errors_total", "counter");
    for (name, s) in &endpoints {
        w.sample(
            "hc_serve_errors_total",
            &[("endpoint", name)],
            &s.errors.to_string(),
        );
    }
    w.type_line("hc_serve_cache_hits_total", "counter");
    for (name, s) in &endpoints {
        w.sample(
            "hc_serve_cache_hits_total",
            &[("endpoint", name)],
            &s.cache_hits.to_string(),
        );
    }
    w.type_line("hc_serve_latency_us", "histogram");
    for (name, s) in &endpoints {
        w.histogram_series(
            "hc_serve_latency_us",
            &[("endpoint", name)],
            &s.latency_buckets,
            s.count,
            s.total_us,
        );
    }
    w.type_line("hc_serve_service_us", "histogram");
    for (name, s) in &endpoints {
        w.histogram_series(
            "hc_serve_service_us",
            &[("endpoint", name)],
            &s.service_buckets,
            s.count,
            s.service_total_us,
        );
    }

    let gauge = |w: &mut PromWriter, name: &str, v: i64| {
        w.type_line(name, "gauge");
        w.sample(name, &[], &v.to_string());
    };
    let counter = |w: &mut PromWriter, name: &str, v: u64| {
        w.type_line(name, "counter");
        w.sample(name, &[], &v.to_string());
    };
    gauge(
        &mut w,
        "hc_serve_uptime_seconds",
        state.metrics.uptime().as_secs() as i64,
    );
    gauge(
        &mut w,
        "hc_serve_requests_in_flight",
        state.in_flight.load(std::sync::atomic::Ordering::Relaxed),
    );
    gauge(
        &mut w,
        "hc_serve_pool_workers",
        state.pool.worker_count() as i64,
    );
    gauge(&mut w, "hc_serve_pool_queued", state.pool.queued() as i64);
    counter(
        &mut w,
        "hc_serve_pool_completed_total",
        state.pool.completed_total(),
    );
    counter(&mut w, "hc_serve_pool_shed_total", state.pool.shed_total());
    counter(
        &mut w,
        "hc_serve_pool_job_panics_total",
        state.pool.job_panics_total(),
    );
    counter(
        &mut w,
        "hc_serve_pool_worker_respawns_total",
        state.pool.worker_respawns_total(),
    );
    counter(
        &mut w,
        "hc_serve_pool_worker_scale_up_total",
        state.pool.worker_scale_up_total(),
    );
    counter(
        &mut w,
        "hc_serve_pool_worker_scale_down_total",
        state.pool.worker_scale_down_total(),
    );
    // Overload-controller series, from the same snapshot struct as the JSON
    // `overload` object (goldened for agreement in the tests). The ladder
    // rung is one labeled gauge set, Prometheus-idiomatic for enums.
    {
        let o = state.overload.snapshot();
        w.type_line("hc_serve_overload_state", "gauge");
        for rung in [
            crate::overload::STATE_OK,
            crate::overload::STATE_BROWNOUT,
            crate::overload::STATE_SHEDDING,
        ] {
            w.sample(
                "hc_serve_overload_state",
                &[("state", crate::overload::state_name(rung))],
                if o.state == rung { "1" } else { "0" },
            );
        }
        gauge(
            &mut w,
            "hc_serve_overload_queue_delay_smoothed_us",
            o.smoothed_queue_delay_us as i64,
        );
        gauge(
            &mut w,
            "hc_serve_overload_target_queue_delay_ms",
            o.target_queue_delay_ms as i64,
        );
        gauge(
            &mut w,
            "hc_serve_overload_retry_after_seconds",
            i64::from(o.retry_after_s),
        );
        counter(
            &mut w,
            "hc_serve_overload_shed_bulk_total",
            o.shed_bulk_total,
        );
        counter(
            &mut w,
            "hc_serve_overload_shed_interactive_total",
            o.shed_interactive_total,
        );
        counter(
            &mut w,
            "hc_serve_overload_brownout_entered_total",
            o.brownout_entered_total,
        );
        counter(
            &mut w,
            "hc_serve_overload_shedding_entered_total",
            o.shedding_entered_total,
        );
    }
    // Reactor connection series, from the same atomics as the JSON
    // `connections` object (goldened for agreement in the tests).
    {
        use std::sync::atomic::Ordering;
        let c = &state.conns;
        gauge(
            &mut w,
            "hc_serve_connections_open",
            c.open.load(Ordering::Relaxed),
        );
        counter(
            &mut w,
            "hc_serve_connections_accepted_total",
            c.accepted_total.load(Ordering::Relaxed),
        );
        counter(
            &mut w,
            "hc_serve_keepalive_requests_total",
            c.keepalive_requests_total.load(Ordering::Relaxed),
        );
        counter(
            &mut w,
            "hc_serve_idle_timeouts_total",
            c.idle_timeouts_total.load(Ordering::Relaxed),
        );
    }
    let cache = state.cache.stats();
    gauge(
        &mut w,
        "hc_serve_result_cache_entries",
        cache.entries as i64,
    );
    counter(&mut w, "hc_serve_result_cache_hits_total", cache.hits);
    counter(&mut w, "hc_serve_result_cache_misses_total", cache.misses);
    counter(
        &mut w,
        "hc_serve_result_cache_evictions_total",
        cache.evictions,
    );
    counter(
        &mut w,
        "hc_serve_panics_total",
        state
            .faults
            .panics
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    counter(
        &mut w,
        "hc_serve_deadline_exceeded_total",
        state
            .faults
            .deadline_exceeded
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    counter(
        &mut w,
        "hc_serve_recorder_recorded_total",
        state.recorder.recorded_total(),
    );
    counter(
        &mut w,
        "hc_serve_recorder_survivors_pinned_total",
        state.recorder.survivors_pinned_total(),
    );

    // Live-session series, read from the same registry snapshot helper as
    // the JSON `sessions` object (goldened for agreement in the tests).
    let s = session_counters();
    gauge(&mut w, "hc_serve_sessions_active", s.active);
    counter(&mut w, "hc_serve_sessions_created_total", s.created);
    counter(&mut w, "hc_serve_sessions_deleted_total", s.deleted);
    counter(&mut w, "hc_serve_sessions_expired_total", s.expired);
    counter(&mut w, "hc_serve_sessions_evicted_total", s.evicted);
    counter(&mut w, "hc_serve_sessions_patches_total", s.patches);
    counter(&mut w, "hc_serve_sessions_watches_total", s.watches);
    counter(&mut w, "hc_serve_sessions_watch_wakes_total", s.watch_wakes);
    counter(&mut w, "hc_serve_sessions_conflicts_total", s.conflicts);
    counter(&mut w, "hc_serve_sessions_drains_total", s.drains);
    counter(
        &mut w,
        "hc_serve_sessions_warm_fallbacks_total",
        s.warm_fallbacks,
    );
    counter(
        &mut w,
        "hc_serve_sessions_warm_cutovers_total",
        s.warm_cutovers,
    );
    counter(&mut w, "hc_serve_sessions_recomputes_total", s.recomputes);
    counter(
        &mut w,
        "hc_serve_sessions_recomputes_warm_total",
        s.recomputes_warm,
    );

    write_slo_series(&mut w, &state.slo.snapshot());

    // The merged hc-obs library registry (sinkhorn/SVD/core counters and
    // iteration histograms), so kernels and daemon share one scrape.
    let mut out = w.finish();
    out.push_str(&hc_obs::prom::render_registry());
    out
}

/// Writes the SLO gauge series for one engine snapshot: per-objective
/// objectives, per-window error/burn rates, per-alert firing flags, and the
/// overall `degraded` flag — mirroring the JSON `slo` object.
fn write_slo_series(w: &mut hc_obs::prom::PromWriter, s: &hc_obs::slo::SloSnapshot) {
    let mut objectives: Vec<(&str, &hc_obs::slo::ObjectiveSnapshot)> =
        vec![("availability", &s.availability)];
    if let Some((_, o)) = &s.latency {
        objectives.push(("latency", o));
    }

    w.type_line("hc_serve_slo_objective", "gauge");
    for (slo, o) in &objectives {
        w.sample(
            "hc_serve_slo_objective",
            &[("slo", slo)],
            &format!("{}", o.objective),
        );
    }
    let windows =
        |o: &hc_obs::slo::ObjectiveSnapshot| [("short", o.short), ("mid", o.mid), ("long", o.long)];
    w.type_line("hc_serve_slo_error_rate", "gauge");
    for (slo, o) in &objectives {
        for (window, stats) in windows(o) {
            w.sample(
                "hc_serve_slo_error_rate",
                &[("slo", slo), ("window", window)],
                &format!("{}", stats.error_rate),
            );
        }
    }
    w.type_line("hc_serve_slo_burn_rate", "gauge");
    for (slo, o) in &objectives {
        for (window, stats) in windows(o) {
            w.sample(
                "hc_serve_slo_burn_rate",
                &[("slo", slo), ("window", window)],
                &format!("{}", stats.burn_rate),
            );
        }
    }
    w.type_line("hc_serve_slo_alert_firing", "gauge");
    for (slo, o) in &objectives {
        for (alert, firing) in [("fast", o.fast_alert), ("slow", o.slow_alert)] {
            w.sample(
                "hc_serve_slo_alert_firing",
                &[("slo", slo), ("alert", alert)],
                if firing { "1" } else { "0" },
            );
        }
    }
    w.type_line("hc_serve_slo_degraded", "gauge");
    w.sample(
        "hc_serve_slo_degraded",
        &[],
        if s.degraded { "1" } else { "0" },
    );
}

/// Build identity rendered into `/metrics` and `/healthz`: crate version plus
/// the `git describe` output captured at compile time via the
/// `HC_GIT_DESCRIBE` environment variable (absent in plain `cargo build`, so
/// it degrades to `"unknown"`).
pub fn build_info_json() -> String {
    JsonObject::new()
        .str("version", env!("CARGO_PKG_VERSION"))
        .str(
            "git_describe",
            option_env!("HC_GIT_DESCRIBE").unwrap_or("unknown"),
        )
        .finish()
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let r = Registry::new();
        r.record(
            "measure",
            false,
            false,
            Duration::from_micros(130),
            Duration::from_micros(120),
        );
        r.record(
            "measure",
            false,
            true,
            Duration::from_micros(3),
            Duration::from_micros(2),
        );
        r.record(
            "measure",
            true,
            false,
            Duration::from_millis(9),
            Duration::from_millis(8),
        );
        let s = r.snapshot("measure").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.service_buckets.iter().sum::<u64>(), 3);

        let j = r.to_json(
            "{\"queued\":0}",
            "{\"open\":0}",
            "{\"entries\":0}",
            "{\"panics_total\":0}",
            "{\"recorded_total\":0}",
            "{\"active\":0}",
            "{\"degraded\":false}",
            "{\"state\":\"ok\"}",
            2,
            "{}",
        );
        assert!(j.contains("\"uptime_seconds\":"));
        assert!(j.contains("\"build\":{\"version\":"));
        assert!(j.contains("\"requests_total\":3"));
        assert!(j.contains("\"requests_in_flight\":2"));
        assert!(j.contains("\"measure\":{\"count\":3"));
        assert!(j.contains("\"cache_hits\":1"));
        assert!(j.contains("\"service_histogram_us\""));
        assert!(j.contains("\"pool\":{\"queued\":0}"));
        assert!(j.contains("\"connections\":{\"open\":0}"));
        assert!(j.contains("\"faults\":{\"panics_total\":0}"));
        assert!(j.contains("\"sessions\":{\"active\":0}"));
        assert!(j.contains("\"slo\":{\"degraded\":false}"));
        assert!(j.contains("\"overload\":{\"state\":\"ok\"}"));
        assert!(j.contains("\"library\":{}"));
        assert!(j.contains("le_"));
    }

    #[test]
    fn poisoned_registry_still_serves() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let r2 = Arc::clone(&r);
        let _ = std::thread::spawn(move || {
            let _g = r2.endpoints.lock().unwrap();
            panic!("poison the metrics mutex");
        })
        .join();
        assert!(r.endpoints.is_poisoned());
        // Recording and rendering both recover instead of propagating.
        r.record("e", false, false, Duration::from_micros(5), Duration::ZERO);
        assert_eq!(r.snapshot("e").unwrap().count, 1);
        let j = r.to_json("{}", "{}", "{}", "{}", "{}", "{}", "{}", "{}", 0, "{}");
        assert!(j.contains("\"requests_total\":1"), "{j}");
    }

    #[test]
    fn quantiles_monotone() {
        let r = Registry::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            r.record("e", false, false, Duration::from_micros(us), Duration::ZERO);
        }
        let s = r.snapshot("e").unwrap();
        let p50 = s.quantile_upper_us(0.50);
        let p95 = s.quantile_upper_us(0.95);
        let p99 = s.quantile_upper_us(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= 100, "median sample is 100us, upper bound {p50}");
        assert_eq!(r.snapshot("absent").map(|s| s.count), None);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let r = Registry::new();
        r.record("e", false, false, Duration::from_nanos(1), Duration::ZERO);
        let s = r.snapshot("e").unwrap();
        assert_eq!(s.latency_buckets[0], 1);
        assert_eq!(s.service_buckets[0], 1);
    }

    #[test]
    fn queue_wait_separates_latency_from_service() {
        let r = Registry::new();
        // 5 ms from accept, but only 1 ms of handler time: the 4 ms gap is
        // queue wait, which must show up in latency_* and not in service_*.
        r.record(
            "e",
            false,
            false,
            Duration::from_millis(5),
            Duration::from_millis(1),
        );
        let s = r.snapshot("e").unwrap();
        assert_eq!(s.total_us, 5000);
        assert_eq!(s.service_total_us, 1000);
        assert_eq!(s.latency_buckets[bucket_of(5000)], 1);
        assert_eq!(s.service_buckets[bucket_of(1000)], 1);
        assert_ne!(bucket_of(5000), bucket_of(1000));
    }
}
