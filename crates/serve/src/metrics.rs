//! Observability: per-endpoint counters and latency histograms.
//!
//! Latencies land in log₂ microsecond buckets (`< 1 µs`, `< 2 µs`, … `< 2²³
//! µs ≈ 8.4 s`, plus an overflow bucket), which keeps recording allocation-free
//! and gives `/metrics` enough resolution to estimate p50/p95/p99 within a
//! factor of two — plenty for spotting regressions and cache effects.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::JsonObject;

/// Number of log₂ latency buckets (the last one is overflow).
pub const BUCKETS: usize = 24;

/// Counters for one endpoint.
#[derive(Debug, Clone)]
pub struct EndpointStats {
    /// Requests handled (including errors).
    pub count: u64,
    /// Requests answered with status ≥ 400.
    pub errors: u64,
    /// Requests served from the result cache.
    pub cache_hits: u64,
    /// Log₂-bucketed latency histogram (microseconds).
    pub latency_buckets: [u64; BUCKETS],
    /// Total latency in microseconds.
    pub total_us: u64,
}

impl EndpointStats {
    fn new() -> Self {
        Self {
            count: 0,
            errors: 0,
            cache_hits: 0,
            latency_buckets: [0; BUCKETS],
            total_us: 0,
        }
    }

    fn record(&mut self, error: bool, cache_hit: bool, latency: Duration) {
        self.count += 1;
        if error {
            self.errors += 1;
        }
        if cache_hit {
            self.cache_hits += 1;
        }
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.total_us += us;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.latency_buckets[bucket] += 1;
    }

    /// Smallest bucket upper bound (µs) below which at least `q` of samples fall.
    fn quantile_upper_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (k, &n) in self.latency_buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << k;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    fn to_json(&self) -> String {
        let mut hist = JsonObject::new();
        for (k, &n) in self.latency_buckets.iter().enumerate() {
            if n > 0 {
                hist = hist.u64(&format!("le_{}us", 1u64 << k), n);
            }
        }
        JsonObject::new()
            .u64("count", self.count)
            .u64("errors", self.errors)
            .u64("cache_hits", self.cache_hits)
            .u64("latency_total_us", self.total_us)
            .u64("latency_p50_us_upper", self.quantile_upper_us(0.50))
            .u64("latency_p95_us_upper", self.quantile_upper_us(0.95))
            .u64("latency_p99_us_upper", self.quantile_upper_us(0.99))
            .raw("latency_histogram_us", &hist.finish())
            .finish()
    }
}

/// The server-wide metrics registry.
#[derive(Debug)]
pub struct Registry {
    endpoints: Mutex<BTreeMap<&'static str, EndpointStats>>,
    started: Instant,
}

impl Registry {
    /// Creates an empty registry with the uptime clock started now.
    pub fn new() -> Self {
        Self {
            endpoints: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// Records one handled request against `endpoint`.
    pub fn record(&self, endpoint: &'static str, error: bool, cache_hit: bool, latency: Duration) {
        self.endpoints
            .lock()
            .expect("metrics mutex poisoned")
            .entry(endpoint)
            .or_insert_with(EndpointStats::new)
            .record(error, cache_hit, latency);
    }

    /// Point-in-time copy of one endpoint's stats (for tests).
    pub fn snapshot(&self, endpoint: &str) -> Option<EndpointStats> {
        self.endpoints
            .lock()
            .expect("metrics mutex poisoned")
            .get(endpoint)
            .cloned()
    }

    /// Renders the registry (plus externally-owned pool and cache gauges) as
    /// the `/metrics` JSON document.
    pub fn to_json(&self, pool: &str, cache: &str) -> String {
        let endpoints = self.endpoints.lock().expect("metrics mutex poisoned");
        let mut per_endpoint = JsonObject::new();
        let mut total = 0u64;
        for (name, stats) in endpoints.iter() {
            per_endpoint = per_endpoint.raw(name, &stats.to_json());
            total += stats.count;
        }
        JsonObject::new()
            .u64("uptime_s", self.started.elapsed().as_secs())
            .u64("requests_total", total)
            .raw("endpoints", &per_endpoint.finish())
            .raw("pool", pool)
            .raw("cache", cache)
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let r = Registry::new();
        r.record("measure", false, false, Duration::from_micros(130));
        r.record("measure", false, true, Duration::from_micros(3));
        r.record("measure", true, false, Duration::from_millis(9));
        let s = r.snapshot("measure").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 3);

        let j = r.to_json("{\"queued\":0}", "{\"entries\":0}");
        assert!(j.contains("\"requests_total\":3"));
        assert!(j.contains("\"measure\":{\"count\":3"));
        assert!(j.contains("\"cache_hits\":1"));
        assert!(j.contains("\"pool\":{\"queued\":0}"));
        assert!(j.contains("le_"));
    }

    #[test]
    fn quantiles_monotone() {
        let r = Registry::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            r.record("e", false, false, Duration::from_micros(us));
        }
        let s = r.snapshot("e").unwrap();
        let p50 = s.quantile_upper_us(0.50);
        let p95 = s.quantile_upper_us(0.95);
        let p99 = s.quantile_upper_us(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= 100, "median sample is 100us, upper bound {p50}");
        assert_eq!(r.snapshot("absent").map(|s| s.count), None);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let r = Registry::new();
        r.record("e", false, false, Duration::from_nanos(1));
        let s = r.snapshot("e").unwrap();
        assert_eq!(s.latency_buckets[0], 1);
    }
}
