//! SIGINT/SIGTERM handling without a libc dependency.
//!
//! The handler only flips an `AtomicBool` (the one operation that is
//! async-signal-safe here); the accept loop polls [`triggered`] between
//! accepts and starts a graceful drain when it turns true. On non-Unix
//! targets installation is a no-op and `/quitquitquit` remains the only
//! shutdown path.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been received.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Resets the flag (tests only; real servers exit after triggering).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::{Ordering, TRIGGERED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`: both the handler argument and the return value
        // are `sighandler_t`, a pointer-sized function pointer; `usize`
        // round-trips it without pulling in libc types.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the handlers (idempotent).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        install();
        reset();
        assert!(!triggered());
        TRIGGERED.store(true, Ordering::SeqCst);
        assert!(triggered());
        reset();
        assert!(!triggered());
    }
}
