//! A small, strict HTTP/1.1 subset with keep-alive and incremental parsing.
//!
//! The server needs exactly: request line + headers + optional
//! `Content-Length` body in; status line + headers + body out. No chunked
//! transfer, no TLS. Connections are persistent by default (`HTTP/1.1`
//! semantics): [`RequestParser`] accumulates bytes across partial reads and
//! yields complete requests one at a time, preserving pipelined leftovers, so
//! the epoll reactor can parse without ever blocking. [`read_request`] wraps
//! the same parser over a blocking `Read` for tests and simple clients.
//! Limits are enforced while reading so a slow or hostile peer cannot balloon
//! memory: header block ≤ 16 KiB, body ≤ the server's configured maximum.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::Arc;

/// Maximum accepted size of the request line + headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, percent-decoded.
    pub path: String,
    /// Query parameters (later duplicates win), percent-decoded.
    pub query: BTreeMap<String, String>,
    /// Raw request body.
    pub body: Vec<u8>,
    /// Client-supplied `X-Request-Id` header, if any. The server echoes it on
    /// the response (generating one when absent) so a request can be chased
    /// through client logs, traces, and slow-request reports.
    pub request_id: Option<String>,
    /// Client-supplied `X-Timeout-Ms` header, if any: a per-request deadline
    /// in milliseconds, clamped by the server's `--request-timeout-ms` before
    /// use. Malformed values fall back to `None` and are noted in
    /// [`Request::malformed_headers`].
    pub timeout_ms: Option<u64>,
    /// Raw client-supplied W3C `traceparent` header, if any (sanitized and
    /// bounded like `X-Request-Id`); validated by the connection handler.
    pub traceparent: Option<String>,
    /// Client-supplied `If-Match` header, if any: the session version the
    /// client believes is current, for optimistic concurrency on
    /// `PATCH /session/{id}/etc` (mismatch answers `409`). Malformed values
    /// fall back to `None` and are noted in [`Request::malformed_headers`].
    pub if_match: Option<u64>,
    /// Headers that were present but unusable (`(header name, raw value)`),
    /// collected during parsing so the connection handler can emit one
    /// structured warn event per entry once the request id is known —
    /// malformed optional headers degrade loudly, not silently.
    pub malformed_headers: Vec<(&'static str, String)>,
}

impl Request {
    /// Query parameter by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// `true` when the query contains `name` (with any value, including empty).
    pub fn has_param(&self, name: &str) -> bool {
        self.query.contains_key(name)
    }

    /// Body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("body is not valid UTF-8"))
    }
}

/// Response body storage: bytes built by a handler, or a shared handle into
/// the result cache.
///
/// Serving a cache hit clones an `Arc`, not the bytes: the response is written
/// to the socket straight out of the cached buffer, and inserting into the
/// cache shares the response's own buffer instead of deep-copying it.
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response alone.
    Owned(Vec<u8>),
    /// Bytes shared with the result cache (and any concurrent responses).
    Shared(Arc<[u8]>),
}

impl Body {
    /// The body bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Converts the body to shared storage in place and returns a second
    /// handle to the same bytes (for the cache). An already-shared body just
    /// clones the handle; nothing is copied in either case.
    pub fn share(&mut self) -> Arc<[u8]> {
        match self {
            Body::Shared(a) => Arc::clone(a),
            Body::Owned(v) => {
                let a: Arc<[u8]> = Arc::from(std::mem::take(v).into_boxed_slice());
                *self = Body::Shared(Arc::clone(&a));
                a
            }
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Self {
        Body::Owned(v)
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Body::Owned(s.into_bytes())
    }
}

impl From<Arc<[u8]>> for Body {
    fn from(a: Arc<[u8]>) -> Self {
        Body::Shared(a)
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Body,
    /// Additional headers (name, value).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A `200 OK` CSV response.
    pub fn csv(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/csv",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A `200 OK` plain-text response (e.g. collapsed profile stacks).
    pub fn text(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A `200 OK` Prometheus text-exposition response (format 0.0.4).
    pub fn prometheus(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        HttpError {
            status,
            message: message.to_string(),
            code: None,
            details: None,
        }
        .to_response()
    }

    /// The `503 Service Unavailable` load-shed response with `Retry-After`.
    /// Typed (`"code":"overloaded"`) so clients can tell a shed — retry after
    /// the advertised backoff — from other 503s like session-store drain.
    pub fn overloaded(retry_after_s: u32) -> Self {
        let mut r = HttpError::typed(
            503,
            "overloaded",
            "server overloaded, request queue full or queue delay over target",
        )
        .to_response();
        r.headers
            .push(("Retry-After".to_string(), retry_after_s.to_string()));
        r
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }
}

/// Errors from request parsing and handling, each mapping to a client-facing
/// status and a machine-readable JSON error body.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
    /// Stable machine-readable code (`"deadline_exceeded"`,
    /// `"matrix_too_large"`, `"body_too_large"`, `"internal_panic"`, …) for
    /// clients that must branch on the failure kind without parsing prose.
    pub code: Option<&'static str>,
    /// Extra top-level JSON fields (a raw `"key":value,…` fragment, no braces)
    /// spliced into the error body — e.g. partial-progress diagnostics on a
    /// deadline-exceeded response.
    pub details: Option<String>,
}

impl HttpError {
    /// A `400 Bad Request` error.
    pub fn bad(msg: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: msg.into(),
            code: None,
            details: None,
        }
    }

    /// An error with a stable machine-readable `code`.
    pub fn typed(status: u16, code: &'static str, msg: impl Into<String>) -> Self {
        Self {
            status,
            message: msg.into(),
            code: Some(code),
            details: None,
        }
    }

    /// Attaches extra top-level JSON fields (raw `"key":value,…` fragment).
    pub fn with_details(mut self, raw_fields: impl Into<String>) -> Self {
        self.details = Some(raw_fields.into());
        self
    }

    /// Renders the error as its JSON response:
    /// `{"error":…[,"code":…][,<details>]}`.
    pub fn to_response(&self) -> Response {
        let mut body = format!(
            "{{\"error\":{}",
            hc_core::report::json_string(&self.message)
        );
        if let Some(code) = self.code {
            body.push_str(",\"code\":");
            body.push_str(&hc_core::report::json_string(code));
        }
        if let Some(details) = &self.details {
            body.push(',');
            body.push_str(details);
        }
        body.push('}');
        Response {
            status: self.status,
            content_type: "application/json",
            body: body.into(),
            headers: Vec::new(),
        }
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Percent-decodes a URL component; `+` becomes a space.
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                if let (Some(h), Some(l)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    out.push(h << 4 | l);
                    i += 2;
                } else {
                    out.push(b'%');
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses `k1=v1&k2=v2` into a decoded map.
pub fn parse_query(q: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => out.insert(url_decode(k), url_decode(v)),
            None => out.insert(url_decode(pair), String::new()),
        };
    }
    out
}

/// A request head parsed off the wire, waiting for its body to complete.
#[derive(Debug)]
struct PendingHead {
    request: Request,
    content_length: usize,
    keep_alive: bool,
}

/// Incremental, resumable HTTP request parser.
///
/// Feed raw socket bytes with [`RequestParser::feed`]; [`RequestParser::poll`]
/// yields a complete request as soon as one is buffered, leaving any pipelined
/// follow-up bytes in place for the next poll. Parse errors are sticky for the
/// current request but the struct stays usable (the connection closes anyway:
/// after a framing error the byte stream cannot be trusted).
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    max_body: usize,
    pending: Option<PendingHead>,
}

impl RequestParser {
    /// A parser enforcing the given body-size cap.
    pub fn new(max_body: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_body,
            pending: None,
        }
    }

    /// Appends raw bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `true` when no bytes of a next request have arrived — an EOF here is a
    /// clean connection close, not a truncated request.
    pub fn is_idle(&self) -> bool {
        self.pending.is_none() && self.buf.is_empty()
    }

    /// The error a peer EOF means right now: mid-body once a head is parsed,
    /// mid-request while still reading the header block.
    pub fn eof_error(&self) -> HttpError {
        if self.pending.is_some() {
            HttpError::bad("connection closed mid-body")
        } else {
            HttpError::bad("connection closed mid-request")
        }
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// Returns `Ok(Some((request, keep_alive)))` when a full request is
    /// available (consuming its bytes, preserving pipelined leftovers),
    /// `Ok(None)` when more bytes are needed, and `Err` on a framing error
    /// (bad request line, unparsable or oversized `Content-Length`, header
    /// block past [`MAX_HEADER_BYTES`]).
    pub fn poll(&mut self) -> Result<Option<(Request, bool)>, HttpError> {
        if self.pending.is_none() {
            let Some(header_end) = find_header_end(&self.buf) else {
                if self.buf.len() > MAX_HEADER_BYTES {
                    return Err(HttpError::typed(
                        413,
                        "body_too_large",
                        "header block too large",
                    ));
                }
                return Ok(None);
            };
            let head = parse_head(&self.buf[..header_end], self.max_body)?;
            self.buf.drain(..header_end + 4);
            self.pending = Some(head);
        }
        let content_length = self.pending.as_ref().map_or(0, |p| p.content_length);
        if self.buf.len() < content_length {
            return Ok(None);
        }
        let mut head = self.pending.take().expect("pending head present");
        head.request.body = self.buf.drain(..content_length).collect();
        Ok(Some((head.request, head.keep_alive)))
    }
}

/// Parses the request line + header block (everything before `\r\n\r\n`),
/// returning the body-less request, its `Content-Length`, and whether the
/// connection should stay open afterwards.
fn parse_head(raw: &[u8], max_body: usize) -> Result<PendingHead, HttpError> {
    let head =
        std::str::from_utf8(raw).map_err(|_| HttpError::bad("headers are not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad("unsupported HTTP version"));
    }
    // HTTP/1.1 defaults to persistent connections; HTTP/1.0 to close. A
    // `Connection` header token overrides either default.
    let mut keep_alive = version != "HTTP/1.0";

    // Bound and sanitize a header value that will be echoed into response
    // headers and logs: strip anything a peer could use to inject header
    // lines or control characters.
    let sanitize = |value: &str| -> String {
        value
            .trim()
            .chars()
            .filter(|c| c.is_ascii_graphic())
            .take(128)
            .collect()
    };
    let mut content_length: usize = 0;
    let mut request_id: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut traceparent: Option<String> = None;
    let mut if_match: Option<u64> = None;
    let mut malformed_headers: Vec<(&'static str, String)> = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::bad("bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            } else if name.eq_ignore_ascii_case("x-request-id") {
                let id = sanitize(value);
                if !id.is_empty() {
                    request_id = Some(id);
                }
            } else if name.eq_ignore_ascii_case("x-timeout-ms") {
                match value.trim().parse() {
                    Ok(ms) => timeout_ms = Some(ms),
                    // Fall back to no header-supplied deadline, but note the
                    // malformed value for a structured warning.
                    Err(_) => malformed_headers.push(("X-Timeout-Ms", sanitize(value))),
                }
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(sanitize(value));
            } else if name.eq_ignore_ascii_case("if-match") {
                // Session versions, optionally ETag-style quoted; `*` means
                // "any version" and imposes no precondition.
                let raw = value.trim().trim_matches('"');
                if raw != "*" {
                    match raw.parse() {
                        Ok(v) => if_match = Some(v),
                        Err(_) => malformed_headers.push(("If-Match", sanitize(value))),
                    }
                }
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::typed(
            413,
            "body_too_large",
            format!("body of {content_length} bytes exceeds limit of {max_body}"),
        ));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(PendingHead {
        request: Request {
            method,
            path: url_decode(raw_path),
            query: parse_query(raw_query),
            body: Vec::new(),
            request_id,
            timeout_ms,
            traceparent,
            if_match,
            malformed_headers,
        },
        content_length,
        keep_alive,
    })
}

/// Reads and parses one request from a blocking `stream`.
///
/// `max_body` bounds the accepted `Content-Length`; larger requests get `413`.
/// A thin blocking wrapper over [`RequestParser`] for tests and clients; the
/// server itself feeds the parser from the nonblocking reactor.
pub fn read_request<S: Read>(stream: &mut S, max_body: usize) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new(max_body);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some((request, _keep_alive)) = parser.poll()? {
            return Ok(request);
        }
        let n = stream.read(&mut chunk).map_err(|e| HttpError {
            status: 408,
            message: format!("read error or timeout: {e}"),
            code: None,
            details: None,
        })?;
        if n == 0 {
            return Err(parser.eof_error());
        }
        parser.feed(&chunk[..n]);
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders the response head (status line + headers + blank line). `close`
/// picks the `Connection` header value; the body is not included so the
/// reactor can write head and body as one vectored write without copying
/// shared cache buffers.
pub fn render_head(response: &Response, close: bool) -> String {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" }
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    head
}

/// Serializes `response` to a blocking `stream` (HTTP/1.1,
/// `Connection: close`) — the one-shot form used by tests and the CLI.
pub fn write_response<S: Write>(stream: &mut S, response: &Response) -> std::io::Result<()> {
    stream.write_all(render_head(response, true).as_bytes())?;
    stream.write_all(response.body.as_slice())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        read_request(&mut cursor, 1024 * 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /measure?ecs=1&zero-policy=reg%3D1e-4 HTTP/1.1\r\n\
                    Host: x\r\nContent-Length: 9\r\n\r\ntask,m1\r\n";
        let r = parse(raw).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/measure");
        assert_eq!(r.param("ecs"), Some("1"));
        assert_eq!(r.param("zero-policy"), Some("reg=1e-4"));
        assert_eq!(r.body, b"task,m1\r\n");
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.body.is_empty());
        assert!(!r.has_param("anything"));
    }

    #[test]
    fn parses_request_id_header() {
        let r = parse(b"GET /metrics HTTP/1.1\r\nX-Request-Id: abc-123\r\n\r\n").unwrap();
        assert_eq!(r.request_id.as_deref(), Some("abc-123"));
        // Case-insensitive name, sanitized value, bounded length.
        let r = parse(b"GET / HTTP/1.1\r\nx-request-id:  id\rwith\x01junk  \r\n\r\n").unwrap();
        assert_eq!(r.request_id.as_deref(), Some("idwithjunk"));
        let long = format!(
            "GET / HTTP/1.1\r\nX-Request-Id: {}\r\n\r\n",
            "a".repeat(400)
        );
        let r = parse(long.as_bytes()).unwrap();
        assert_eq!(r.request_id.unwrap().len(), 128);
        // Absent or all-garbage values yield None.
        let r = parse(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.request_id.is_none());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let err = read_request(&mut cursor, 10).unwrap_err();
        assert_eq!(err.status, 413);
        assert_eq!(err.code, Some("body_too_large"));
        let body = String::from_utf8(err.to_response().body.as_slice().to_vec()).unwrap();
        assert!(body.contains("\"code\":\"body_too_large\""), "{body}");
    }

    #[test]
    fn parses_timeout_header() {
        let r = parse(b"GET /metrics HTTP/1.1\r\nX-Timeout-Ms: 250\r\n\r\n").unwrap();
        assert_eq!(r.timeout_ms, Some(250));
        assert!(r.malformed_headers.is_empty());
        // Malformed values fall back to None — but are noted for a warning,
        // not silently swallowed.
        let r = parse(b"GET /metrics HTTP/1.1\r\nX-Timeout-Ms: soon\r\n\r\n").unwrap();
        assert_eq!(r.timeout_ms, None);
        assert_eq!(
            r.malformed_headers,
            vec![("X-Timeout-Ms", "soon".to_string())]
        );
        let r = parse(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.timeout_ms, None);
        assert!(r.malformed_headers.is_empty());
    }

    #[test]
    fn parses_if_match_header() {
        let r = parse(b"PATCH /session/x/etc HTTP/1.1\r\nIf-Match: 7\r\n\r\n").unwrap();
        assert_eq!(r.if_match, Some(7));
        assert!(r.malformed_headers.is_empty());
        // ETag-style quoting is tolerated; `*` imposes no precondition.
        let r = parse(b"PATCH /x HTTP/1.1\r\nif-match: \"12\"\r\n\r\n").unwrap();
        assert_eq!(r.if_match, Some(12));
        let r = parse(b"PATCH /x HTTP/1.1\r\nIf-Match: *\r\n\r\n").unwrap();
        assert_eq!(r.if_match, None);
        assert!(r.malformed_headers.is_empty());
        // Malformed values degrade loudly, like X-Timeout-Ms.
        let r = parse(b"PATCH /x HTTP/1.1\r\nIf-Match: seven\r\n\r\n").unwrap();
        assert_eq!(r.if_match, None);
        assert_eq!(r.malformed_headers, vec![("If-Match", "seven".to_string())]);
        let r = parse(b"PATCH /x HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.if_match, None);
    }

    #[test]
    fn parses_traceparent_header() {
        let r = parse(
            b"GET / HTTP/1.1\r\ntraceparent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01\r\n\r\n",
        )
        .unwrap();
        assert_eq!(
            r.traceparent.as_deref(),
            Some("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
        );
        // Validation happens in the connection handler; parsing only
        // sanitizes and bounds the raw value.
        let r = parse(b"GET / HTTP/1.1\r\nTraceparent: junk\x01here\r\n\r\n").unwrap();
        assert_eq!(r.traceparent.as_deref(), Some("junkhere"));
        let r = parse(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.traceparent.is_none());
    }

    #[test]
    fn typed_error_renders_code_and_details() {
        let e = HttpError::typed(504, "deadline_exceeded", "out of time")
            .with_details("\"iterations_completed\":12,\"residual\":1e-3");
        let resp = e.to_response();
        assert_eq!(resp.status, 504);
        let body = String::from_utf8(resp.body.as_slice().to_vec()).unwrap();
        assert_eq!(
            body,
            "{\"error\":\"out of time\",\"code\":\"deadline_exceeded\",\
             \"iterations_completed\":12,\"residual\":1e-3}"
        );
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"),
            "{text}"
        );
        // Untyped errors keep the legacy single-field shape.
        let plain = Response::error(422, "too big");
        assert_eq!(plain.body.as_slice(), b"{\"error\":\"too big\"}");
        let mut out = Vec::new();
        write_response(&mut out, &plain).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .starts_with("HTTP/1.1 422 Unprocessable Entity\r\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(b"\r\n\r\n").is_err());
        assert!(parse(b"GET\r\n\r\n").is_err());
        assert!(parse(b"GET / SPDY/3\r\n\r\n").is_err());
        // Closed before the header terminator.
        let mut cursor = std::io::Cursor::new(b"GET / HT".to_vec());
        assert!(read_request(&mut cursor, 10).is_err());
    }

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("a%20b+c"), "a b c");
        assert_eq!(url_decode("100%"), "100%");
        assert_eq!(url_decode("%zz"), "%zz");
        let q = parse_query("a=1&flag&b=x%3Dy");
        assert_eq!(q.get("a").unwrap(), "1");
        assert_eq!(q.get("flag").unwrap(), "");
        assert_eq!(q.get("b").unwrap(), "x=y");
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        let r = Response::json("{\"ok\":true}".into()).with_header("X-Cache", "hit");
        write_response(&mut out, &r).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn body_share_is_zero_copy() {
        let mut b = Body::from(String::from("hello"));
        assert_eq!(b.as_slice(), b"hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let first = b.share();
        let second = b.share();
        // Both handles and the body itself alias one buffer.
        assert!(Arc::ptr_eq(&first, &second));
        match &b {
            Body::Shared(a) => assert!(Arc::ptr_eq(a, &first)),
            Body::Owned(_) => panic!("share() must leave the body shared"),
        }
        assert_eq!(b.as_slice(), b"hello");
        // A shared body serializes identically to an owned one.
        let mut out = Vec::new();
        let mut r = Response::json("{\"ok\":true}".into());
        r.body = Body::Shared(first);
        write_response(&mut out, &r).unwrap();
        assert!(String::from_utf8(out).unwrap().ends_with("hello"));
    }

    #[test]
    fn overloaded_has_retry_after() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::overloaded(1)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503"));
        assert!(text.contains("Retry-After: 1\r\n"));
    }

    #[test]
    fn render_head_picks_connection_header() {
        let r = Response::json("{}".into());
        assert!(render_head(&r, true).contains("Connection: close\r\n"));
        assert!(render_head(&r, false).contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn parser_handles_byte_at_a_time_trickle() {
        let raw: &[u8] = b"POST /measure?ecs=1 HTTP/1.1\r\nHost: x\r\n\
                           Content-Length: 9\r\n\r\ntask,m1\r\n";
        let mut p = RequestParser::new(1024);
        for (i, b) in raw.iter().enumerate() {
            assert!(
                p.poll().unwrap().is_none(),
                "complete before byte {i} of {}",
                raw.len()
            );
            p.feed(std::slice::from_ref(b));
        }
        let (req, keep_alive) = p.poll().unwrap().expect("complete after final byte");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/measure");
        assert_eq!(req.body, b"task,m1\r\n");
        assert!(keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(p.is_idle());
    }

    #[test]
    fn parser_yields_pipelined_requests_from_one_segment() {
        let mut p = RequestParser::new(1024);
        p.feed(
            b"POST /measure HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd\
              GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let (r1, k1) = p.poll().unwrap().unwrap();
        assert_eq!(
            (r1.path.as_str(), &r1.body[..], k1),
            ("/measure", &b"abcd"[..], true)
        );
        let (r2, k2) = p.poll().unwrap().unwrap();
        assert_eq!((r2.path.as_str(), k2), ("/metrics", true));
        let (r3, k3) = p.poll().unwrap().unwrap();
        assert_eq!((r3.path.as_str(), k3), ("/healthz", false));
        assert!(p.poll().unwrap().is_none());
        assert!(p.is_idle());
    }

    #[test]
    fn parser_connection_header_overrides_version_default() {
        let mut p = RequestParser::new(1024);
        p.feed(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!p.poll().unwrap().unwrap().1, "HTTP/1.0 defaults to close");
        p.feed(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(p.poll().unwrap().unwrap().1);
        p.feed(b"GET / HTTP/1.1\r\nConnection: Keep-Alive, Upgrade\r\n\r\n");
        assert!(p.poll().unwrap().unwrap().1, "token list, case-insensitive");
        p.feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!p.poll().unwrap().unwrap().1);
    }

    #[test]
    fn parser_rejects_oversized_header_block_even_unterminated() {
        let mut p = RequestParser::new(1024);
        p.feed(b"GET / HTTP/1.1\r\n");
        // Keep feeding header bytes with no terminator: the parser must bail
        // at the cap instead of buffering without bound.
        let filler = format!("X-Pad: {}\r\n", "a".repeat(1000));
        let mut err = None;
        for _ in 0..20 {
            p.feed(filler.as_bytes());
            if let Err(e) = p.poll() {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("oversized header block must error");
        assert_eq!(err.status, 413);
        assert_eq!(err.message, "header block too large");
    }

    #[test]
    fn parser_handles_headers_split_across_reads() {
        let raw = b"GET /metrics HTTP/1.1\r\nX-Request-Id: split-id\r\n\r\n";
        // Split inside the header name, the value, and the terminator.
        for cut in [10, 30, raw.len() - 1] {
            let mut p = RequestParser::new(1024);
            p.feed(&raw[..cut]);
            assert!(p.poll().unwrap().is_none(), "cut at {cut}");
            p.feed(&raw[cut..]);
            let (req, _) = p.poll().unwrap().expect("complete after second feed");
            assert_eq!(req.request_id.as_deref(), Some("split-id"));
        }
    }

    #[test]
    fn parser_rejects_malformed_content_length_across_boundary() {
        let mut p = RequestParser::new(1024);
        // The malformed value arrives split across two reads; the error must
        // only fire once the header block is complete and parseable.
        p.feed(b"POST /x HTTP/1.1\r\nContent-Len");
        assert!(p.poll().unwrap().is_none());
        p.feed(b"gth: twelve\r\n\r\n");
        let err = p.poll().unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.message, "bad Content-Length");
    }

    #[test]
    fn parser_body_split_across_reads_and_eof_errors() {
        let mut p = RequestParser::new(1024);
        p.feed(b"POST /x HTTP/1.1\r\nContent-Length: 8\r\n\r\nabc");
        assert!(p.poll().unwrap().is_none());
        assert_eq!(p.eof_error().message, "connection closed mid-body");
        assert!(!p.is_idle());
        p.feed(b"defgh");
        let (req, _) = p.poll().unwrap().unwrap();
        assert_eq!(req.body, b"abcdefgh");

        let mut fresh = RequestParser::new(1024);
        assert!(fresh.is_idle());
        fresh.feed(b"GET / HT");
        assert_eq!(fresh.eof_error().message, "connection closed mid-request");
    }

    #[test]
    fn parser_rejects_oversized_content_length_before_body_arrives() {
        let mut p = RequestParser::new(10);
        p.feed(b"POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n");
        let err = p.poll().unwrap_err();
        assert_eq!(err.status, 413);
        assert_eq!(err.code, Some("body_too_large"));
    }
}
