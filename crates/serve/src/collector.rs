//! The tsdb collector thread and the `/debug/timeseries` endpoint.
//!
//! Once per second, a dedicated thread snapshots the server's own counters
//! (per-endpoint request/error/cache totals, overload ladder rung, SLO burn
//! rate, live workers and connections) plus the entire [`hc_obs::metrics`]
//! registry into the in-process time-series store
//! ([`hc_obs::tsdb::Tsdb`]) — tiered per-second ring buffers that retain
//! `--tsdb-retention` seconds of history with no external Prometheus.
//!
//! Latency quantiles are computed over **per-interval deltas** of the log₂
//! histograms, not the cumulative totals: a cumulative quantile converges and
//! stops moving, while the delta answers "how slow is it right now". Idle
//! intervals hold the last value so dashboards do not sawtooth to zero.
//!
//! `GET /debug/timeseries` reads it back: aligned per-second (or
//! downsampled) arrays for any recorded series, `rate_per_s` deltas for
//! counters, and a terminal-friendly `format=sparkline` render — the data
//! source for `hcm top`.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use hc_obs::tsdb::{Kind, QueryResult, Tsdb};

use crate::http::{HttpError, Request, Response};
use crate::metrics::{quantile_upper_us_of, EndpointStats, BUCKETS};
use crate::server::ServerState;

/// Collection cadence: one sample per second, matching the finest tier.
const COLLECT_PERIOD: Duration = Duration::from_secs(1);

/// Shutdown poll granularity inside the collection sleep.
const SHUTDOWN_POLL: Duration = Duration::from_millis(250);

/// Default query window when `window` is absent (seconds).
const DEFAULT_WINDOW_S: u64 = 300;

/// Most series one query may ask for (bounds response size).
const MAX_SERIES_PER_QUERY: usize = 32;

/// Seconds since the Unix epoch — the tsdb's timestamp domain.
pub(crate) fn unix_now_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Spawns the collector thread (named `hc-serve-tsdb`). The thread samples
/// immediately, then once per [`COLLECT_PERIOD`], and exits when the server's
/// shutdown flag rises (checked every [`SHUTDOWN_POLL`]).
pub(crate) fn spawn(state: Arc<ServerState>) {
    let _ = std::thread::Builder::new()
        .name("hc-serve-tsdb".to_string())
        .spawn(move || {
            let mut collector = Collector::default();
            loop {
                collector.collect(&state, unix_now_s());
                let mut slept = Duration::ZERO;
                while slept < COLLECT_PERIOD {
                    if state.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(SHUTDOWN_POLL);
                    slept += SHUTDOWN_POLL;
                }
            }
        });
}

/// One stateless collection pass, for tests that cannot wait out the 1 Hz
/// cadence: samples everything the background thread samples, with the
/// latency quantiles taken over the cumulative histogram instead of a delta.
pub fn collect_once(state: &ServerState) {
    Collector::default().collect(state, unix_now_s());
}

/// Delta memory between collection passes.
#[derive(Default)]
struct Collector {
    prev: Option<EndpointStats>,
    last_p50: f64,
    last_p99: f64,
    last_hit_rate: f64,
}

impl Collector {
    fn collect(&mut self, state: &ServerState, ts_s: u64) {
        let Some(tsdb) = &state.tsdb else {
            return;
        };
        let merged = state.metrics.merged();
        tsdb.record(
            Kind::Counter,
            "serve_requests_total",
            ts_s,
            merged.count as f64,
        );
        tsdb.record(
            Kind::Counter,
            "serve_errors_total",
            ts_s,
            merged.errors as f64,
        );
        tsdb.record(
            Kind::Counter,
            "serve_cache_hits_total",
            ts_s,
            merged.cache_hits as f64,
        );
        match &self.prev {
            Some(prev) => {
                let mut delta = [0u64; BUCKETS];
                let mut n = 0u64;
                for (k, d) in delta.iter_mut().enumerate() {
                    *d = merged.latency_buckets[k].saturating_sub(prev.latency_buckets[k]);
                    n += *d;
                }
                if n > 0 {
                    self.last_p50 = quantile_upper_us_of(&delta, n, 0.50) as f64;
                    self.last_p99 = quantile_upper_us_of(&delta, n, 0.99) as f64;
                }
                let dc = merged.count.saturating_sub(prev.count);
                if dc > 0 {
                    self.last_hit_rate =
                        merged.cache_hits.saturating_sub(prev.cache_hits) as f64 / dc as f64;
                }
            }
            None if merged.count > 0 => {
                self.last_p50 = merged.quantile_upper_us(0.50) as f64;
                self.last_p99 = merged.quantile_upper_us(0.99) as f64;
                self.last_hit_rate = merged.cache_hits as f64 / merged.count as f64;
            }
            None => {}
        }
        tsdb.record(Kind::Gauge, "serve_latency_p50_us", ts_s, self.last_p50);
        tsdb.record(Kind::Gauge, "serve_latency_p99_us", ts_s, self.last_p99);
        tsdb.record(
            Kind::Gauge,
            "serve_cache_hit_rate",
            ts_s,
            self.last_hit_rate,
        );
        tsdb.record(
            Kind::Gauge,
            "serve_overload_state",
            ts_s,
            f64::from(state.overload.current_state()),
        );
        tsdb.record(
            Kind::Gauge,
            "serve_slo_burn_short",
            ts_s,
            state.slo.snapshot().availability.short.burn_rate,
        );
        tsdb.record(
            Kind::Gauge,
            "serve_workers_live",
            ts_s,
            state.pool.worker_count() as f64,
        );
        tsdb.record(
            Kind::Gauge,
            "serve_connections_open",
            ts_s,
            state.conns.open.load(Ordering::Relaxed) as f64,
        );
        tsdb.record(
            Kind::Gauge,
            "serve_requests_in_flight",
            ts_s,
            state.in_flight.load(Ordering::Relaxed) as f64,
        );
        // Everything the shared library registry holds — session counters,
        // solver iteration histograms (as _count/_sum), tsdb_bytes itself.
        tsdb.collect_registry(ts_s);
        self.prev = Some(merged);
    }
}

/// `GET /debug/timeseries` — retained per-second history.
///
/// * no `series` parameter — the catalog: every recorded series name + kind,
///   the tier layout, and the store's memory footprint;
/// * `series=a,b,c` — aligned arrays per series over `window` seconds
///   (default 300) at `step` seconds (default: the finest tier covering the
///   window). Counters additionally carry `rate_per_s` deltas, clamped ≥ 0;
/// * `format=sparkline` — the same query as terminal sparklines, one line
///   per series (counters sparkle their rate).
pub(crate) fn debug_timeseries(state: &ServerState, req: &Request) -> Result<Response, HttpError> {
    let Some(tsdb) = &state.tsdb else {
        return Err(HttpError::typed(
            404,
            "tsdb_disabled",
            "the in-process time-series store is disabled (--tsdb-off)",
        ));
    };
    let now_s = unix_now_s();
    let window_s = match req.param("window") {
        None => DEFAULT_WINDOW_S,
        Some(raw) => match raw.parse::<u64>() {
            Ok(s) if s > 0 => s,
            _ => {
                return Err(HttpError::bad(format!(
                    "window must be a positive integer of seconds, got {raw:?}"
                )))
            }
        },
    };
    let step_s = match req.param("step") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(s) if s > 0 => Some(s),
            _ => {
                return Err(HttpError::bad(format!(
                    "step must be a positive integer of seconds, got {raw:?}"
                )))
            }
        },
    };
    let Some(raw_series) = req.param("series") else {
        return Ok(Response::json(catalog_json(tsdb, now_s)));
    };
    let names: Vec<&str> = raw_series
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err(HttpError::bad(
            "series must name at least one recorded series (comma-separated)",
        ));
    }
    if names.len() > MAX_SERIES_PER_QUERY {
        return Err(HttpError::bad(format!(
            "at most {MAX_SERIES_PER_QUERY} series per query, got {}",
            names.len()
        )));
    }
    let mut results: Vec<(&str, QueryResult)> = Vec::with_capacity(names.len());
    for name in names {
        match tsdb.query(name, now_s, window_s, step_s) {
            Some(q) => results.push((name, q)),
            None => {
                return Err(HttpError::typed(
                    404,
                    "unknown_series",
                    format!(
                        "series {name:?} is not recorded (GET /debug/timeseries without \
                         parameters lists the catalog)"
                    ),
                ))
            }
        }
    }
    match req.param("format") {
        None | Some("json") => Ok(Response::json(render_json(now_s, window_s, &results))),
        Some("sparkline") => Ok(Response::text(render_sparklines(&results))),
        Some(other) => Err(HttpError::bad(format!(
            "unknown format {other:?} (expected json or sparkline)"
        ))),
    }
}

/// The no-parameters catalog document.
fn catalog_json(tsdb: &Tsdb, now_s: u64) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"now_s\":");
    out.push_str(&now_s.to_string());
    out.push_str(",\"tsdb_bytes\":");
    out.push_str(&tsdb.bytes().to_string());
    out.push_str(",\"tiers\":[");
    for (i, (step, slots)) in tsdb.tiers().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"step_s\":{step},\"slots\":{slots},\"span_s\":{}}}",
            step * *slots as u64
        ));
    }
    out.push_str("],\"series\":[");
    for (i, (name, kind)) in tsdb.series_names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        hc_obs::json::escape_into(&mut out, name);
        out.push_str(",\"kind\":\"");
        out.push_str(kind.as_str());
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

/// Writes one `[v1,null,v2,...]` array of optional points.
fn points_into(out: &mut String, points: &[Option<f64>]) {
    out.push('[');
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match p {
            Some(v) => out.push_str(&hc_obs::json::fmt_f64(*v)),
            None => out.push_str("null"),
        }
    }
    out.push(']');
}

/// The `series=` JSON document: aligned arrays, kinds, and counter rates.
fn render_json(now_s: u64, window_s: u64, results: &[(&str, QueryResult)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"now_s\":");
    out.push_str(&now_s.to_string());
    out.push_str(",\"window_s\":");
    out.push_str(&window_s.to_string());
    out.push_str(",\"series\":{");
    for (i, (name, q)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        hc_obs::json::escape_into(&mut out, name);
        out.push_str(":{\"kind\":\"");
        out.push_str(q.kind.as_str());
        out.push_str("\",\"step_s\":");
        out.push_str(&q.step_s.to_string());
        out.push_str(",\"start_s\":");
        out.push_str(&q.start_s.to_string());
        out.push_str(",\"points\":");
        points_into(&mut out, &q.points);
        if matches!(q.kind, Kind::Counter) {
            out.push_str(",\"rate_per_s\":");
            points_into(&mut out, &hc_obs::tsdb::rate(&q.points, q.step_s));
        }
        out.push('}');
    }
    out.push_str("}}");
    out
}

/// One line per series: `name  <sparkline>  last=<v> step=<s>s`. Counters
/// sparkle their per-second rate — the shape an operator actually wants.
fn render_sparklines(results: &[(&str, QueryResult)]) -> String {
    let width = results.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, q) in results {
        let points = if matches!(q.kind, Kind::Counter) {
            hc_obs::tsdb::rate(&q.points, q.step_s)
        } else {
            q.points.clone()
        };
        let last = points
            .iter()
            .rev()
            .find_map(|p| *p)
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{name:width$}  {}  last={last} step={}s\n",
            hc_obs::tsdb::sparkline(&points),
            q.step_s,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lists_series_sorted_with_tiers() {
        let tsdb = Tsdb::new(&[(1, 60), (10, 30)]);
        tsdb.record(Kind::Gauge, "zz", 5, 1.0);
        tsdb.record(Kind::Counter, "aa", 5, 2.0);
        let doc = catalog_json(&tsdb, 9);
        assert!(doc.contains("\"now_s\":9"), "{doc}");
        assert!(
            doc.contains("{\"step_s\":1,\"slots\":60,\"span_s\":60}"),
            "{doc}"
        );
        let aa = doc.find("\"aa\"").unwrap();
        let zz = doc.find("\"zz\"").unwrap();
        assert!(aa < zz, "catalog must be sorted: {doc}");
        assert!(
            doc.contains("{\"name\":\"aa\",\"kind\":\"counter\"}"),
            "{doc}"
        );
    }

    #[test]
    fn json_render_carries_rate_for_counters_only() {
        let tsdb = Tsdb::new(&[(1, 60)]);
        for s in 100..105u64 {
            tsdb.record(Kind::Counter, "c", s, (s - 100) as f64 * 3.0);
            tsdb.record(Kind::Gauge, "g", s, 7.0);
        }
        let qc = tsdb.query("c", 104, 5, None).unwrap();
        let qg = tsdb.query("g", 104, 5, None).unwrap();
        let doc = render_json(104, 5, &[("c", qc), ("g", qg)]);
        assert!(doc.contains("\"c\":{\"kind\":\"counter\""), "{doc}");
        assert!(doc.contains("\"rate_per_s\":[null,3,3,3,3]"), "{doc}");
        let g_obj = &doc[doc.find("\"g\":{").unwrap()..];
        assert!(!g_obj.contains("rate_per_s"), "{doc}");
        assert!(g_obj.contains("\"points\":[7,7,7,7,7]"), "{doc}");
    }

    #[test]
    fn sparkline_render_is_one_line_per_series() {
        let tsdb = Tsdb::new(&[(1, 60)]);
        for s in 100..110u64 {
            tsdb.record(Kind::Gauge, "load", s, (s - 100) as f64);
        }
        let q = tsdb.query("load", 109, 10, None).unwrap();
        let text = render_sparklines(&[("load", q)]);
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("load"), "{text}");
        assert!(text.contains('█'), "{text}");
        assert!(text.contains("last=9.000 step=1s"), "{text}");
    }
}
