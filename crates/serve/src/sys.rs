//! Thin epoll and rlimit syscall shims without a libc dependency.
//!
//! Same trick as [`crate::signal`]: std already links the platform libc, so
//! declaring the handful of symbols the reactor needs via `extern "C"` keeps
//! the crate dependency-free. Everything here is Linux-only — the reactor is
//! gated on `target_os = "linux"` and the repo only builds and tests there.
//!
//! The wrappers convert `-1` returns into [`std::io::Error`] from `errno`
//! (via `Error::last_os_error`) so callers never touch raw return codes.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

// --- epoll event mask bits (from <sys/epoll.h>) -----------------------------

/// Readable (data available, or a pending accept on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable (kernel send buffer has room again).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition; always reported, never needs to be requested.
pub const EPOLLERR: u32 = 0x008;
/// Hangup; always reported, never needs to be requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half — the cheap way to notice an idle keep-alive
/// client going away without issuing a read.
pub const EPOLLRDHUP: u32 = 0x2000;

// --- epoll_ctl operations ---------------------------------------------------

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel ABI
/// packs the struct (4-byte aligned u64), hence the conditional packing; on
/// other architectures natural `repr(C)` layout matches.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Opaque caller token returned verbatim by `epoll_wait`.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        const EPOLL_CLOEXEC: i32 = 0o2000000;
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    /// Registers `fd` for the level-triggered `events` mask with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Updates the interest mask for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest list.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event pointer is ignored for DEL on kernels >= 2.6.9 but must
        // be non-null for portability to older ABI checks.
        let mut ev = EpollEvent::default();
        check(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`; returns
    /// how many entries are valid. `EINTR` is reported as zero events so
    /// callers treat signals like a timeout tick.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// Mirror of `struct rlimit` (two `rlim_t` = u64 on Linux).
#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

/// Raises the soft open-file limit toward `want` (capped at the hard limit),
/// returning the resulting soft limit. Used by the 10k-connection test and by
/// server startup so the default fd budget does not cap keep-alive fan-in.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    check(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    if lim.max < want {
        // A privileged process (CAP_SYS_RESOURCE) may raise the hard limit
        // as well, up to `fs.nr_open`; try that first and fall back to the
        // existing ceiling if the kernel refuses.
        let raised = Rlimit {
            cur: want,
            max: want,
        };
        if check(unsafe { setrlimit(RLIMIT_NOFILE, &raised) }).is_ok() {
            return Ok(want);
        }
    }
    let target = want.min(lim.max);
    let new = Rlimit {
        cur: target,
        max: lim.max,
    };
    check(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
    Ok(target)
}

/// Re-issues `listen(2)` on an already-listening socket to widen its accept
/// backlog (std's `TcpListener::bind` hardcodes 128, which a keep-alive
/// connection storm overflows while the reactor thread is descheduled —
/// overflowed handshakes look established to the client but never reach
/// `accept`). The kernel clamps to `net.core.somaxconn`.
pub fn set_listen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    check(unsafe { listen(fd, backlog) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_event_abi_size() {
        // The kernel expects 12 bytes on x86-64 (packed) and 16 elsewhere.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn readiness_round_trip() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing to read yet: a zero-timeout wait reports no events.
        let mut events = [EpollEvent::default(); 8];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (mask, token) = (events[0].events, events[0].data);
        assert_ne!(mask & EPOLLIN, 0);
        assert_eq!(token, 42);

        // Level-triggered: still ready until drained.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        let mut buf = [0u8; 16];
        let mut b_read = &b;
        assert_eq!(b_read.read(&mut buf).unwrap(), 4);
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // MOD to writable interest reports EPOLLOUT on an open socket.
        ep.modify(b.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (mask, token) = (events[0].events, events[0].data);
        assert_ne!(mask & EPOLLOUT, 0);
        assert_eq!(token, 7);

        ep.delete(b.as_raw_fd()).unwrap();
        a.write_all(b"x").unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn rdhup_reported_on_peer_close() {
        let ep = Epoll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 9).unwrap();
        drop(a);
        let mut events = [EpollEvent::default(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let mask = events[0].events;
        assert_ne!(mask & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);
    }

    #[test]
    fn nofile_limit_reports_current_or_raised() {
        let soft = raise_nofile_limit(1024).unwrap();
        assert!(soft >= 1024);
    }
}
