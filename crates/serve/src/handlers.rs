//! Pure endpoint logic: each handler maps a parsed [`Request`] to a
//! [`Response`] using the workspace's library crates, with no server state.
//! Caching, batching, metrics, and dispatch live in the router; keeping the
//! handlers pure makes them unit-testable without sockets.
//!
//! All analysis endpoints accept the same CSV ETC matrix format as the CLI
//! (`task,m1,m2\nt1,2.0,8.0\n…`) as the POST body, and CLI flags become query
//! parameters (`--ecs` → `?ecs=1`, `--zero-policy reg=1e-4` →
//! `?zero-policy=reg%3D1e-4`).

use std::cell::RefCell;
use std::str::FromStr;

use hc_core::ecs::{Ecs, Etc};
use hc_core::standard::{TmaOptions, ZeroPolicy};
use hc_core::Analyzer;
use hc_gen::cvb::{cvb, CvbParams};
use hc_gen::range_based::{range_based, RangeParams};
use hc_gen::targeted::{targeted, TargetSpec};
use hc_sched::exact::{optimal, simulated_annealing, tabu, SaParams, TabuParams};
use hc_sched::ga::{ga, GaParams};
use hc_sched::heuristics::{all_heuristics, Heuristic, HeuristicKind};
use hc_sched::problem::{makespan_lower_bound, MappingProblem};
use hc_sinkhorn::structure::analyze_structure;
use hc_spec::csv;

use crate::http::{HttpError, Request, Response};
use crate::json::JsonObject;
use hc_core::error::MeasureError;
use hc_linalg::Budget;

/// Per-request context threaded from the router into every handler: the
/// cooperative cancellation budget (when a deadline applies) and the oversized
/// input limit. Handlers stay pure — the context carries only request-scoped
/// policy, never server state.
#[derive(Debug, Clone, Copy)]
pub struct ReqCtx<'a> {
    /// Deadline/cancellation budget for iterative kernels; `None` = unlimited.
    pub budget: Option<&'a Budget>,
    /// Largest accepted matrix size in cells (tasks × machines).
    pub max_cells: usize,
}

impl ReqCtx<'_> {
    /// A context with no deadline and the default cell limit (tests, tools).
    pub fn unlimited() -> Self {
        ReqCtx {
            budget: None,
            max_cells: 4_000_000,
        }
    }
}

/// Maps a measurement failure to its HTTP error: deadline expiry becomes a
/// typed `504` carrying partial-progress diagnostics, everything else `400`.
pub(crate) fn measure_error(e: MeasureError) -> HttpError {
    match e {
        MeasureError::DeadlineExceeded {
            op,
            iterations,
            residual,
        } => {
            let residual_json = if residual.is_finite() {
                format!("{residual:e}")
            } else {
                "null".to_string()
            };
            HttpError::typed(
                504,
                "deadline_exceeded",
                format!("deadline exceeded in {op} after {iterations} iterations"),
            )
            .with_details(format!(
                "\"op\":{},\"iterations_completed\":{iterations},\"residual\":{residual_json}",
                hc_core::report::json_string(op)
            ))
        }
        other => HttpError::bad(other.to_string()),
    }
}

/// Rejects query parameters outside `allowed` so malformed requests fail loudly
/// and equivalent requests share one canonical cache key space.
pub fn check_allowed(req: &Request, allowed: &[&str]) -> Result<(), HttpError> {
    for key in req.query.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(HttpError::bad(format!(
                "unknown query parameter {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn q_opt<T: FromStr>(req: &Request, name: &str) -> Result<Option<T>, HttpError> {
    match req.param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| HttpError::bad(format!("query parameter {name}={raw:?} is malformed"))),
    }
}

fn q_or<T: FromStr>(req: &Request, name: &str, default: T) -> Result<T, HttpError> {
    Ok(q_opt(req, name)?.unwrap_or(default))
}

fn q_req<T: FromStr>(req: &Request, name: &str) -> Result<T, HttpError> {
    q_opt(req, name)?
        .ok_or_else(|| HttpError::bad(format!("missing required query parameter {name:?}")))
}

/// Estimates the cell count of a CSV matrix body without parsing values: data
/// lines × commas in the header line. Exact for well-formed input; close
/// enough on malformed input, which the real parser rejects afterwards anyway.
fn estimated_csv_cells(text: &str) -> usize {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let machines = lines.next().map_or(0, |header| header.matches(',').count());
    lines.count().saturating_mul(machines)
}

/// Rejects matrices above `max_cells` with a typed `422` — before any matrix
/// allocation, so an oversized request costs parsing-free line counting only.
fn check_cells(cells: usize, max_cells: usize) -> Result<(), HttpError> {
    if cells > max_cells {
        return Err(HttpError::typed(
            422,
            "matrix_too_large",
            format!("matrix of ~{cells} cells exceeds the limit of {max_cells} (--max-cells)"),
        ));
    }
    Ok(())
}

/// Parses the request body as a CSV matrix, honouring the `ecs` flag the same
/// way the CLI does (`?ecs=1` reinterprets entries as speeds, not times).
pub fn load_ecs(req: &Request, ctx: &ReqCtx<'_>) -> Result<Ecs, HttpError> {
    let text = req.body_text()?;
    if text.trim().is_empty() {
        return Err(HttpError::bad("empty body: expected a CSV ETC matrix"));
    }
    check_cells(estimated_csv_cells(text), ctx.max_cells)?;
    // Fail fast when the deadline already expired (e.g. spent in the request
    // queue): answering 504 before the CSV parse keeps the bound on 504
    // latency independent of body size.
    if let Some(b) = ctx.budget {
        b.check("parse", 0, f64::NAN)
            .map_err(|e| measure_error(MeasureError::from(e)))?;
    }
    let etc = csv::from_csv(text).map_err(|e| HttpError::bad(e.to_string()))?;
    if req.has_param("ecs") {
        Ecs::with_names(
            etc.matrix().map(|v| if v.is_infinite() { 0.0 } else { v }),
            etc.task_names().to_vec(),
            etc.machine_names().to_vec(),
        )
        .map_err(|e| HttpError::bad(e.to_string()))
    } else {
        Ok(etc.to_ecs())
    }
}

fn tma_options(req: &Request) -> Result<TmaOptions, HttpError> {
    let mut opts = TmaOptions::default();
    if let Some(p) = req.param("zero-policy") {
        opts.zero_policy = ZeroPolicy::parse(p).map_err(HttpError::bad)?;
    }
    Ok(opts)
}

thread_local! {
    /// One long-lived [`Analyzer`] per thread. Pool worker threads run every
    /// handler, so the scratch workspace and cached uniform weights persist
    /// across requests: measuring a repeated matrix shape in steady state
    /// performs zero numeric heap allocations.
    static ANALYZER: RefCell<Analyzer> = RefCell::new(Analyzer::new());
}

/// `POST /measure` — MPH/TDH/TMA plus per-machine and per-task factors.
pub fn measure(req: &Request, ctx: &ReqCtx<'_>) -> Result<Response, HttpError> {
    check_allowed(req, &["ecs", "zero-policy"])?;
    let ecs = load_ecs(req, ctx)?;
    let opts = tma_options(req)?;
    ANALYZER.with(|cell| {
        let mut an = cell.borrow_mut();
        let r = an
            .characterize_budgeted(&ecs, None, &opts, ctx.budget)
            .map_err(measure_error)?;
        // One shared renderer with /batch items and session `measures`
        // objects — the three surfaces are goldened byte-for-byte.
        let json = crate::json::measure_body(&r, ecs.task_names(), ecs.machine_names());
        an.recycle_report(r);
        Ok(Response::json(json))
    })
}

/// `POST /structure` — zero-pattern / balanceability report.
pub fn structure(req: &Request, ctx: &ReqCtx<'_>) -> Result<Response, HttpError> {
    check_allowed(req, &["ecs"])?;
    let ecs = load_ecs(req, ctx)?;
    let rep = analyze_structure(ecs.matrix());
    Ok(Response::json(
        JsonObject::new()
            .raw("shape", &format!("[{},{}]", rep.shape.0, rep.shape.1))
            .u64("positive_entries", rep.positive_entries as u64)
            .u64("total_entries", (rep.shape.0 * rep.shape.1) as u64)
            .u64("matching_size", rep.matching_size as u64)
            .bool("has_support", rep.has_support)
            .bool("has_total_support", rep.has_total_support)
            .bool("fully_indecomposable", rep.fully_indecomposable)
            .bool("connected", rep.connected)
            .str("balanceability", &format!("{:?}", rep.balanceability))
            .finish(),
    ))
}

/// `POST /generate` — synthesize an ETC matrix; returns `text/csv`.
///
/// `?mode=targeted|range|cvb` selects the generator; remaining parameters
/// mirror the CLI flags of `hcm generate`.
pub fn generate(req: &Request, ctx: &ReqCtx<'_>) -> Result<Response, HttpError> {
    let mode: String = q_req(req, "mode")?;
    // The cell guard applies before any generator runs: tasks × machines is
    // known from the query alone.
    if let (Ok(Some(t)), Ok(Some(m))) = (
        q_opt::<usize>(req, "tasks"),
        q_opt::<usize>(req, "machines"),
    ) {
        check_cells(t.saturating_mul(m), ctx.max_cells)?;
    }
    let etc: Etc = match mode.as_str() {
        "targeted" => {
            check_allowed(
                req,
                &[
                    "mode", "tasks", "machines", "mph", "tdh", "tma", "seed", "jitter",
                ],
            )?;
            let spec = TargetSpec {
                tasks: q_req(req, "tasks")?,
                machines: q_req(req, "machines")?,
                mph: q_req(req, "mph")?,
                tdh: q_req(req, "tdh")?,
                tma: q_req(req, "tma")?,
                jitter: q_or(req, "jitter", 0.5)?,
            };
            let seed: u64 = q_or(req, "seed", 0)?;
            targeted(&spec, seed)
                .map_err(|e| HttpError::bad(e.to_string()))?
                .to_etc()
        }
        "range" => {
            check_allowed(
                req,
                &["mode", "tasks", "machines", "rtask", "rmach", "seed"],
            )?;
            let params = RangeParams {
                tasks: q_req(req, "tasks")?,
                machines: q_req(req, "machines")?,
                r_task: q_or(req, "rtask", 100.0)?,
                r_mach: q_or(req, "rmach", 100.0)?,
            };
            range_based(&params, q_or(req, "seed", 0)?)
                .map_err(|e| HttpError::bad(e.to_string()))?
        }
        "cvb" => {
            check_allowed(
                req,
                &["mode", "tasks", "machines", "vtask", "vmach", "seed"],
            )?;
            let params = CvbParams::new(
                q_req(req, "tasks")?,
                q_req(req, "machines")?,
                q_or(req, "vtask", 0.3)?,
                q_or(req, "vmach", 0.3)?,
            );
            cvb(&params, q_or(req, "seed", 0)?).map_err(|e| HttpError::bad(e.to_string()))?
        }
        other => {
            return Err(HttpError::bad(format!(
                "unknown generate mode {other:?} (targeted | range | cvb)"
            )))
        }
    };
    Ok(Response::csv(csv::to_csv(&etc)))
}

/// `POST /schedule` — run mapping heuristics over the posted matrix.
///
/// `?heuristic=` accepts everything the CLI does: `all` (default), a named
/// heuristic (`min-min`, `sufferage`, `kpb=25`, …), or `ga`/`sa`/`tabu`/
/// `optimal`.
pub fn schedule(req: &Request, ctx: &ReqCtx<'_>) -> Result<Response, HttpError> {
    check_allowed(req, &["ecs", "heuristic"])?;
    let ecs = load_ecs(req, ctx)?;
    let etc = ecs.to_etc();
    let p = MappingProblem::from_etc(&etc);
    let which = req.param("heuristic").unwrap_or("all");

    let lib_err = |e: hc_core::error::MeasureError| HttpError::bad(e.to_string());
    let mut rows: Vec<(String, hc_sched::Schedule)> = Vec::new();
    match which {
        "all" => {
            for h in all_heuristics() {
                rows.push((h.name().to_string(), h.map(&p).map_err(lib_err)?));
            }
            rows.push(("GA".into(), ga(&p, &GaParams::default()).map_err(lib_err)?));
            rows.push((
                "SA".into(),
                simulated_annealing(&p, &SaParams::default()).map_err(lib_err)?,
            ));
        }
        "ga" => rows.push(("GA".into(), ga(&p, &GaParams::default()).map_err(lib_err)?)),
        "sa" => rows.push((
            "SA".into(),
            simulated_annealing(&p, &SaParams::default()).map_err(lib_err)?,
        )),
        "tabu" => rows.push((
            "Tabu".into(),
            tabu(&p, &TabuParams::default()).map_err(lib_err)?,
        )),
        "optimal" => rows.push(("optimal".into(), optimal(&p, 1e7).map_err(lib_err)?)),
        named => {
            let h = named.parse::<HeuristicKind>().map_err(HttpError::bad)?;
            rows.push((h.name().to_string(), h.map(&p).map_err(lib_err)?));
        }
    }

    let mut results = JsonObject::new();
    let mut best: Option<(&str, f64, &hc_sched::Schedule)> = None;
    for (name, s) in &rows {
        let mk = s.makespan(&p).map_err(lib_err)?;
        results = results.num(name, mk);
        if best.is_none() || mk < best.expect("set").1 {
            best = Some((name, mk, s));
        }
    }
    let best_json = match best {
        Some((name, mk, s)) => {
            let mut assignment = JsonObject::new();
            for (i, &j) in s.assignment.iter().enumerate() {
                assignment = assignment.str(&etc.task_names()[i], &etc.machine_names()[j]);
            }
            JsonObject::new()
                .str("name", name)
                .num("makespan", mk)
                .raw("assignment", &assignment.finish())
                .finish()
        }
        None => "null".to_string(),
    };
    Ok(Response::json(
        JsonObject::new()
            .u64("tasks", p.num_tasks() as u64)
            .u64("machines", p.num_machines() as u64)
            .num("lower_bound", makespan_lower_bound(&p))
            .raw("results", &results.finish())
            .raw("best", &best_json)
            .finish(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    const SAMPLE: &str = "task,m1,m2\nt1,2.0,8.0\nt2,6.0,3.0\n";

    fn post(query: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: "/x".into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect::<BTreeMap<_, _>>(),
            body: body.as_bytes().to_vec(),
            request_id: None,
            timeout_ms: None,
            traceparent: None,
            if_match: None,
            malformed_headers: Vec::new(),
        }
    }

    fn ctx() -> ReqCtx<'static> {
        ReqCtx::unlimited()
    }

    fn body_text(r: &Response) -> String {
        String::from_utf8(r.body.as_slice().to_vec()).unwrap()
    }

    #[test]
    fn measure_returns_json_report() {
        let r = measure(&post(&[], SAMPLE), &ctx()).unwrap();
        assert_eq!(r.status, 200);
        let b = body_text(&r);
        assert!(b.contains("\"mph\":"), "{b}");
        assert!(b.contains("\"tma\":"));
        assert!(b.contains("\"m2\":"));
        assert!(b.contains("\"t1\":"));
    }

    #[test]
    fn warm_measure_reuses_worker_analyzer() {
        let req = post(&[], SAMPLE);
        // Cold call populates this thread's analyzer pool.
        measure(&req, &ctx()).unwrap();
        ANALYZER.with(|c| c.borrow_mut().reset_stats());
        let r = measure(&req, &ctx()).unwrap();
        assert_eq!(r.status, 200);
        ANALYZER.with(|c| {
            let stats = c.borrow().stats();
            assert_eq!(
                stats.fresh, 0,
                "warm /measure must draw every numeric buffer from the pool: {stats:?}"
            );
        });
    }

    #[test]
    fn measure_zero_policy_and_errors() {
        let hard = "task,m1,m2\nt1,1.0,inf\nt2,1.0,1.0\n";
        let strict = measure(&post(&[("zero-policy", "strict")], hard), &ctx());
        assert!(strict.is_err());
        let limit = measure(&post(&[("zero-policy", "limit")], hard), &ctx()).unwrap();
        assert!(body_text(&limit).contains("\"reduced_to_core\":true"));
        assert!(measure(&post(&[("zero-policy", "bogus")], SAMPLE), &ctx()).is_err());
        assert!(measure(&post(&[], ""), &ctx()).is_err());
        assert!(measure(&post(&[("frobnicate", "1")], SAMPLE), &ctx()).is_err());
    }

    #[test]
    fn structure_reports_pattern() {
        let hard = "task,m1,m2\nt1,1.0,inf\nt2,1.0,1.0\n";
        let r = structure(&post(&[], hard), &ctx()).unwrap();
        let b = body_text(&r);
        assert!(b.contains("\"has_support\":true"), "{b}");
        assert!(b.contains("\"has_total_support\":false"));
        assert!(b.contains("LimitOnly"));
    }

    #[test]
    fn generate_targeted_round_trips_through_measure() {
        let q = [
            ("mode", "targeted"),
            ("tasks", "6"),
            ("machines", "4"),
            ("mph", "0.7"),
            ("tdh", "0.6"),
            ("tma", "0.2"),
            ("seed", "3"),
        ];
        let gen_resp = generate(&post(&q, ""), &ctx()).unwrap();
        assert_eq!(gen_resp.content_type, "text/csv");
        let csv_text = body_text(&gen_resp);
        let m = measure(&post(&[], &csv_text), &ctx()).unwrap();
        let b = body_text(&m);
        assert!(b.contains("\"mph\":0.7"), "{b}");
        assert!(b.contains("\"tma\":0.2"), "{b}");
    }

    #[test]
    fn generate_validates() {
        assert!(generate(&post(&[], ""), &ctx()).is_err());
        assert!(generate(&post(&[("mode", "bogus")], ""), &ctx()).is_err());
        assert!(generate(&post(&[("mode", "range"), ("tasks", "4")], ""), &ctx()).is_err());
        assert!(generate(
            &post(&[("mode", "range"), ("tasks", "x"), ("machines", "3")], ""),
            &ctx()
        )
        .is_err());
        let ok = generate(
            &post(&[("mode", "cvb"), ("tasks", "4"), ("machines", "3")], ""),
            &ctx(),
        )
        .unwrap();
        assert_eq!(body_text(&ok).lines().count(), 5);
    }

    #[test]
    fn oversized_matrix_rejected_before_parsing() {
        assert_eq!(estimated_csv_cells(SAMPLE), 4);
        assert_eq!(estimated_csv_cells(""), 0);
        let small = ReqCtx {
            budget: None,
            max_cells: 3,
        };
        let err = measure(&post(&[], SAMPLE), &small).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, Some("matrix_too_large"));
        // The same limit guards /generate from its query parameters alone.
        let q = [("mode", "cvb"), ("tasks", "4"), ("machines", "3")];
        let err = generate(&post(&q, ""), &small).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, Some("matrix_too_large"));
        assert!(generate(&post(&q, ""), &ctx()).is_ok());
    }

    #[test]
    fn expired_deadline_maps_to_typed_504() {
        let expired = Budget::with_deadline(std::time::Duration::ZERO);
        let c = ReqCtx {
            budget: Some(&expired),
            max_cells: 4_000_000,
        };
        let err = measure(&post(&[], SAMPLE), &c).unwrap_err();
        assert_eq!(err.status, 504);
        assert_eq!(err.code, Some("deadline_exceeded"));
        let body = body_text(&err.to_response());
        assert!(body.contains("\"iterations_completed\":"), "{body}");
        assert!(body.contains("\"residual\":"), "{body}");
        assert!(body.contains("\"op\":"), "{body}");
    }

    #[test]
    fn schedule_all_and_named() {
        let r = schedule(&post(&[], SAMPLE), &ctx()).unwrap();
        let b = body_text(&r);
        assert!(b.contains("\"Min-Min\":"), "{b}");
        assert!(b.contains("\"GA\":"));
        assert!(b.contains("\"best\":{\"name\":"));
        assert!(b.contains("\"t1\":\"m1\""));
        let one = schedule(&post(&[("heuristic", "optimal")], SAMPLE), &ctx()).unwrap();
        // Optimal on this 2x2: t1->m1 (2), t2->m2 (3) → makespan 3.
        assert!(
            body_text(&one).contains("\"makespan\":3"),
            "{}",
            body_text(&one)
        );
        assert!(schedule(&post(&[("heuristic", "bogus")], SAMPLE), &ctx()).is_err());
    }
}
