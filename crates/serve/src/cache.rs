//! Content-addressed LRU result cache.
//!
//! Analysis endpoints are pure functions of `(endpoint, options, matrix
//! bytes)`, so their responses are cached under a 64-bit FNV-1a hash of that
//! content. Repeated Sinkhorn/SVD work — the expensive kernels — is then served
//! from memory. Collisions (two distinct requests with equal hashes) would
//! serve the wrong cached response; at 2⁻⁶⁴ per pair this is accepted for an
//! analysis cache, and the keyed content includes a per-endpoint prefix so
//! cross-endpoint collisions cannot happen by construction.
//!
//! The LRU list is intrusive over a slab (`Vec`) of entries with index links —
//! no allocation per touch, O(1) get/put/evict.

/// 64-bit FNV-1a over arbitrary bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds a cache key from the endpoint name, its canonicalized options, and
/// the request body.
pub fn cache_key(endpoint: &str, options: &str, body: &[u8]) -> u64 {
    let mut content = Vec::with_capacity(endpoint.len() + options.len() + body.len() + 2);
    content.extend_from_slice(endpoint.as_bytes());
    content.push(0);
    content.extend_from_slice(options.as_bytes());
    content.push(0);
    content.extend_from_slice(body);
    fnv1a(&content)
}

/// A cached response: content type + body.
///
/// The body is a shared buffer: hits hand out `Arc` clones, so serving a
/// cached response never copies the bytes, and storing one shares the
/// response's own buffer (see `Body::share`).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResponse {
    /// `Content-Type` of the cached response.
    pub content_type: &'static str,
    /// Response body, shared with every response serving this entry.
    pub body: std::sync::Arc<[u8]>,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    key: u64,
    value: CachedResponse,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map from key hash to cached response.
#[derive(Debug)]
pub struct LruCache {
    map: std::collections::HashMap<u64, usize>,
    slab: Vec<Entry>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time cache statistics for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Lookup hits since start.
    pub hits: u64,
    /// Lookup misses since start.
    pub misses: u64,
    /// Evictions since start.
    pub evictions: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: std::collections::HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&mut self, key: u64) -> Option<CachedResponse> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(self.slab[idx].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without counting a hit/miss or refreshing
    /// recency — a read-only probe (the admission controller's cache check
    /// must not skew statistics or LRU order for a request it may still shed).
    pub fn peek(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used entry
    /// when at capacity.
    pub fn put(&mut self, key: u64, value: CachedResponse) {
        if self.capacity == 0 {
            return;
        }
        if let Some(idx) = self.map.get(&key).copied() {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Reuse the LRU slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.evictions += 1;
            self.slab[victim].key = key;
            self.slab[victim].value = value;
            victim
        } else {
            self.slab.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops every entry; the hit/miss/eviction counters are kept. Used after
    /// lock-poison recovery, when a panicking holder may have left an
    /// insertion half-applied — a cache is always safe to drop wholesale.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

/// Number of independent cache shards (same fan-out as the obs registry and
/// the session store).
pub const CACHE_SHARDS: usize = 8;

/// The result cache as seen by the server: 8 independently locked
/// [`LruCache`] shards selected by key, so concurrent requests for different
/// content never serialize on one global mutex.
///
/// Poison recovery is whole-cache: a panic while a shard lock was held (the
/// `cache.insert` failpoint) may have interrupted an insertion mid-way, and
/// the recovery contract predating sharding — "the cache is dropped
/// wholesale" — is kept by clearing **every** shard when any one is found
/// poisoned.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<std::sync::Mutex<LruCache>>,
    capacity: usize,
}

impl ShardedCache {
    /// A cache holding at most `capacity` entries in total (0 disables
    /// caching). Capacity is split evenly across shards, rounding up, so a
    /// tiny nonzero capacity still caches at least one entry per shard.
    pub fn new(capacity: usize) -> Self {
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(CACHE_SHARDS)
        };
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| std::sync::Mutex::new(LruCache::new(per_shard)))
                .collect(),
            capacity,
        }
    }

    /// Locks the shard owning `key`, applying the whole-cache poison-recovery
    /// rule first when needed. The guard is exposed so the router can hold the
    /// shard lock across its insert failpoint, exactly as it held the old
    /// global lock.
    pub fn lock_shard(&self, key: u64) -> std::sync::MutexGuard<'_, LruCache> {
        let idx = (key as usize) % CACHE_SHARDS;
        if self.shards.iter().any(std::sync::Mutex::is_poisoned) {
            // One panic clears the whole cache, not just the poisoned shard:
            // recovery semantics must not depend on which shard a key
            // happened to hash to. `lock_recover` clears the poison flag, so
            // this sweep runs once per poisoning, not on every later lock.
            for shard in &self.shards {
                hc_obs::sync::lock_recover(shard).clear();
            }
        }
        hc_obs::sync::lock_recover_then(&self.shards[idx], LruCache::clear)
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<CachedResponse> {
        self.lock_shard(key).get(key)
    }

    /// Inserts (or refreshes) `key` in its shard.
    pub fn put(&self, key: u64, value: CachedResponse) {
        self.lock_shard(key).put(key, value);
    }

    /// Whether `key` is resident — a statistics-neutral, recency-neutral
    /// probe (see [`LruCache::peek`]).
    pub fn contains(&self, key: u64) -> bool {
        self.lock_shard(key).peek(key)
    }

    /// Drops every entry in every shard (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            hc_obs::sync::lock_recover(shard).clear();
        }
    }

    /// Aggregated statistics: entry/hit/miss/eviction sums across shards,
    /// with the configured total capacity.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            entries: 0,
            capacity: self.capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        for shard in &self.shards {
            let s = hc_obs::sync::lock_recover(shard).stats();
            total.entries += s.entries;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(s: &str) -> CachedResponse {
        CachedResponse {
            content_type: "application/json",
            body: s.as_bytes().into(),
        }
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_separates_endpoint_options_body() {
        let a = cache_key("measure", "ecs=1", b"body");
        let b = cache_key("structure", "ecs=1", b"body");
        let c = cache_key("measure", "", b"ecs=1body");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cache_key("measure", "ecs=1", b"body"));
    }

    #[test]
    fn hit_miss_and_refresh() {
        let mut c = LruCache::new(2);
        assert!(c.get(1).is_none());
        c.put(1, resp("one"));
        assert_eq!(&*c.get(1).unwrap().body, b"one");
        c.put(1, resp("one'"));
        assert_eq!(&*c.get(1).unwrap().body, b"one'");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
    }

    #[test]
    fn hits_hand_out_shared_buffers() {
        let mut c = LruCache::new(2);
        c.put(1, resp("payload"));
        let a = c.get(1).unwrap().body;
        let b = c.get(1).unwrap().body;
        // Two hits alias the one resident buffer — no per-hit deep copy.
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn peek_is_statistics_and_recency_neutral() {
        let mut c = LruCache::new(2);
        c.put(1, resp("1"));
        c.put(2, resp("2"));
        // Peeking 1 must NOT refresh it: 1 stays LRU and is evicted next.
        assert!(c.peek(1));
        assert!(!c.peek(99));
        c.put(3, resp("3"));
        assert!(!c.peek(1), "peek must not have refreshed recency");
        let s = c.stats();
        assert_eq!(
            (s.hits, s.misses),
            (0, 0),
            "peek must not count hits/misses"
        );

        let sc = ShardedCache::new(64);
        sc.put(7, resp("7"));
        assert!(sc.contains(7));
        assert!(!sc.contains(8));
        let ss = sc.stats();
        assert_eq!((ss.hits, ss.misses), (0, 0));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(2);
        c.put(1, resp("1"));
        c.put(2, resp("2"));
        assert!(c.get(1).is_some()); // 1 is now MRU; 2 is LRU
        c.put(3, resp("3")); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c = LruCache::new(4);
        c.put(1, resp("1"));
        c.put(2, resp("2"));
        assert!(c.get(1).is_some());
        c.clear();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(1).is_none());
        // The cache keeps working after a clear.
        c.put(3, resp("3"));
        assert_eq!(&*c.get(3).unwrap().body, b"3");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.put(1, resp("1"));
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn sharded_round_trip_and_aggregate_stats() {
        let c = ShardedCache::new(64);
        for k in 0..32u64 {
            assert!(c.get(k).is_none());
            c.put(k, resp(&k.to_string()));
        }
        for k in 0..32u64 {
            assert_eq!(&*c.get(k).unwrap().body, k.to_string().as_bytes());
        }
        let s = c.stats();
        assert_eq!((s.entries, s.capacity), (32, 64));
        assert_eq!((s.hits, s.misses, s.evictions), (32, 32, 0));
    }

    #[test]
    fn sharded_zero_capacity_disables() {
        let c = ShardedCache::new(0);
        c.put(7, resp("7"));
        assert!(c.get(7).is_none());
        assert_eq!(c.stats().capacity, 0);
    }

    #[test]
    fn sharded_clear_empties_all_shards() {
        let c = ShardedCache::new(64);
        for k in 0..16u64 {
            c.put(k, resp("x"));
        }
        c.clear();
        assert_eq!(c.stats().entries, 0);
        for k in 0..16u64 {
            assert!(c.get(k).is_none());
        }
    }

    #[test]
    fn poisoned_shard_clears_whole_cache() {
        let c = std::sync::Arc::new(ShardedCache::new(64));
        c.put(0, resp("shard0"));
        c.put(1, resp("shard1"));
        // Poison shard 0 by panicking while holding its lock.
        let c2 = std::sync::Arc::clone(&c);
        let _ = std::thread::spawn(move || {
            let _guard = c2.lock_shard(0);
            panic!("poison shard 0");
        })
        .join();
        // Recovery drops every shard's contents, not just shard 0's — even
        // when the first post-poison touch lands on a healthy shard.
        assert!(c.get(1).is_none());
        assert!(c.get(0).is_none());
        // And the cache keeps working afterwards.
        c.put(2, resp("again"));
        assert!(c.get(2).is_some());
    }

    #[test]
    fn many_entries_consistent() {
        let mut c = LruCache::new(16);
        for k in 0..100u64 {
            c.put(k, resp(&k.to_string()));
        }
        // Last 16 keys resident, in LRU order 84..99.
        for k in 0..84 {
            assert!(c.get(k).is_none(), "{k}");
        }
        for k in 84..100 {
            assert_eq!(&*c.get(k).unwrap().body, k.to_string().as_bytes());
        }
        assert_eq!(c.stats().evictions, 84);
    }
}
