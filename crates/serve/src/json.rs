//! Minimal hand-rolled JSON emission.
//!
//! The server keeps the workspace's zero-registry-dependency constraint, so
//! instead of a serialization framework this module provides two append-only
//! builders. They emit compact (no-whitespace) JSON; string escaping is shared
//! with `hc_core` ([`hc_core::report::json_string`]).

pub use hc_core::report::json_string;

/// The one measure-document renderer shared by `POST /measure`, every
/// `/batch` item, and the `measures` object in session responses. All three
/// surfaces must stay byte-for-byte identical (goldened in the session tests)
/// so clients can parse one shape everywhere.
pub fn measure_body(
    report: &hc_core::report::MeasureReport,
    task_names: &[String],
    machine_names: &[String],
) -> String {
    report.to_json(task_names, machine_names)
}

/// Builder for a JSON object: `{"k":v,...}`.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&json_string(key));
        self.buf.push(':');
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds a string field (escaped).
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = json_string(value);
        self.raw(key, &v)
    }

    /// Adds a numeric field; non-finite values render as `null`.
    pub fn num(self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            let v = format!("{value}");
            self.raw(key, &v)
        } else {
            self.raw(key, "null")
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        let v = format!("{value}");
        self.raw(key, &v)
    }

    /// Adds a signed integer field.
    pub fn i64(self, key: &str, value: i64) -> Self {
        let v = format!("{value}");
        self.raw(key, &v)
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for a JSON array: `[v,...]`.
#[derive(Debug)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        Self {
            buf: String::from("["),
            first: true,
        }
    }

    /// Appends an already-rendered JSON value.
    pub fn push_raw(&mut self, value: &str) -> &mut Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(value);
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder() {
        let j = JsonObject::new()
            .str("name", "a\"b")
            .num("x", 1.5)
            .num("bad", f64::NAN)
            .u64("n", 7)
            .bool("ok", true)
            .raw("arr", "[1,2]")
            .finish();
        assert_eq!(
            j,
            "{\"name\":\"a\\\"b\",\"x\":1.5,\"bad\":null,\"n\":7,\"ok\":true,\"arr\":[1,2]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn array_builder() {
        let mut a = JsonArray::new();
        a.push_raw("1").push_raw("\"two\"");
        assert_eq!(a.finish(), "[1,\"two\"]");
    }
}
