//! Adaptive overload control (DESIGN.md §15): CoDel-style queue-delay
//! admission with a brownout ladder, drain-rate `Retry-After`, and the
//! worker-autoscale decision loop.
//!
//! The fixed `--queue-depth` cutoff sheds blindly: by the time the queue is
//! full, every queued request has already waited out most of its deadline.
//! This controller sheds on *queue delay* instead — the smoothed dispatch→
//! pickup sojourn the workers already measure as the `queue_us` phase — so
//! admission reacts to the symptom clients feel, not to a buffer size.
//!
//! The ladder has three rungs with hysteresis (constants below):
//!
//! * **ok** — everything admitted.
//! * **brownout** — smoothed queue delay ≥ `--target-queue-delay-ms`:
//!   [`Class::Bulk`] work (`/batch`, large matrices) sheds with a typed 503;
//!   interactive and critical traffic still flows.
//! * **shedding** — delay ≥ 2× target after a full [`ESCALATE_DWELL`] in
//!   brownout: everything but [`Class::Critical`] (health, metrics, watch
//!   long-polls, cache hits) sheds.
//!
//! Escalation climbs one rung at a time; recovery steps down one rung only
//! after the delay holds below the rung's exit threshold for
//! [`RECOVER_DWELL`] — so the state cannot flap at the boundary. The shed
//! response's `Retry-After` is computed from the drain rate (queued jobs ÷
//! recent completions per second, clamped to `[1, 30]` s), not a constant.
//!
//! The fixed-depth backstop remains: a full queue still sheds regardless of
//! class, and `--target-queue-delay-ms 0` disables the adaptive layer
//! entirely for comparison runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::http::Request;
use crate::json::JsonObject;

/// Overload ladder rungs, stored as a `u8` for lock-free reads on the admit
/// path.
pub const STATE_OK: u8 = 0;
/// Brownout: bulk work sheds, interactive work still flows.
pub const STATE_BROWNOUT: u8 = 1;
/// Shedding: everything but critical traffic sheds.
pub const STATE_SHEDDING: u8 = 2;

/// Stable wire name for a ladder rung (`/metrics`, `/healthz`, Prometheus).
pub fn state_name(state: u8) -> &'static str {
    match state {
        STATE_BROWNOUT => "brownout",
        STATE_SHEDDING => "shedding",
        _ => "ok",
    }
}

/// Per-sample EWMA weight for observed queue sojourns, in `x/256` fixed
/// point (≈ 0.3): a burst of slow pickups moves the estimate within a few
/// samples without letting one outlier own it.
const EWMA_ALPHA: u64 = 77;
const EWMA_DENOM: u64 = 256;

/// Per-tick decay factor toward the backlog estimate (≈ 0.7 in `x/256`),
/// so the smoothed delay falls once the queue empties even when shedding
/// has stopped the flow of new sojourn samples.
const DECAY: u64 = 179;

/// Body size at or above which measure-class requests count as [`Class::Bulk`]
/// (a 64 KiB CSV is roughly a 100×100 matrix — study-sized, not interactive).
pub const LARGE_BODY_BYTES: usize = 64 * 1024;

/// Minimum time on a rung before escalating to the next one. Guarantees a
/// real brownout window — bulk sheds first, observably, before interactive
/// traffic is touched.
pub const ESCALATE_DWELL: Duration = Duration::from_millis(300);

/// Time the smoothed delay must hold below a rung's exit threshold before
/// stepping down one rung (the hysteresis that stops boundary flapping).
pub const RECOVER_DWELL: Duration = Duration::from_millis(500);

/// `Retry-After` clamp bounds in seconds.
pub const RETRY_AFTER_MIN_S: u32 = 1;
/// Upper clamp: past 30 s the estimate says "come back much later" anyway.
pub const RETRY_AFTER_MAX_S: u32 = 30;

/// Sliding window over which the drain rate (completions/s) is estimated.
const DRAIN_WINDOW: Duration = Duration::from_secs(2);

/// Ceiling for the backlog-derived delay estimate (µs): with a stalled pool
/// the projection is unbounded, but 10 s is already deep in shedding.
const ESTIMATE_CAP_US: u64 = 10_000_000;

/// Cooldown between autoscale spawn decisions, so a delay spike adds workers
/// gradually instead of jumping straight to `--workers-max`.
const SCALE_UP_COOLDOWN: Duration = Duration::from_millis(200);

/// Continuous idle time (empty queue, negligible delay) before one worker is
/// retired; the clock restarts after each retirement.
const SCALE_DOWN_IDLE: Duration = Duration::from_millis(1_000);

/// Reference delay for autoscale decisions when adaptive admission is off
/// (`--target-queue-delay-ms 0`): scaling still reacts to real queueing.
const DEFAULT_SCALE_REF_US: u64 = 100_000;

/// Endpoint priority class for admission decisions, cheapest-to-keep first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Class {
    /// Always admitted while the adaptive layer is deciding: health and
    /// metrics scrapes, debug introspection, watch long-polls (parked, not
    /// computing), shutdown — and any request answerable from the cache.
    Critical,
    /// Ordinary interactive work (small `/measure`, session CRUD): sheds
    /// only on the shedding rung.
    Interactive,
    /// Expensive fan-out or study-sized work (`/batch`, bodies ≥
    /// [`LARGE_BODY_BYTES`]): first to shed, on the brownout rung.
    Bulk,
}

impl Class {
    /// Stable wire name (flight-recorder overload context).
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Critical => "critical",
            Class::Interactive => "interactive",
            Class::Bulk => "bulk",
        }
    }
}

/// Classifies a parsed request by endpoint and body size. Cache residency is
/// layered on by the reactor (a hit upgrades to [`Class::Critical`]) because
/// only it holds the server state.
pub fn classify(req: &Request) -> Class {
    match crate::router::endpoint_name(req) {
        "healthz" | "metrics" | "quitquitquit" | "session_watch" | "debug_requests"
        | "debug_request" | "debug_profile" | "debug_timeseries" => Class::Critical,
        "batch" => Class::Bulk,
        "measure" | "structure" | "generate" | "schedule" if req.body.len() >= LARGE_BODY_BYTES => {
            Class::Bulk
        }
        _ => Class::Interactive,
    }
}

/// The `Retry-After` arithmetic: how long until the current backlog drains at
/// the observed completion rate, clamped to `[1, 30]` s. A stalled pool
/// (`drain_per_s ≤ 0` with work queued) reports the max — "much later".
pub fn retry_after_from_drain(queued: usize, drain_per_s: f64) -> u32 {
    if queued == 0 {
        return RETRY_AFTER_MIN_S;
    }
    if drain_per_s <= 0.0 {
        return RETRY_AFTER_MAX_S;
    }
    let secs = (queued as f64 / drain_per_s).ceil();
    (secs as u64).clamp(u64::from(RETRY_AFTER_MIN_S), u64::from(RETRY_AFTER_MAX_S)) as u32
}

/// State the control loop mutates once per reactor tick; everything the hot
/// admit path reads lives in atomics outside this lock.
struct Inner {
    /// When the current rung was entered (escalation dwell clock).
    entered_at: Instant,
    /// Start of the current continuous stretch below the exit threshold.
    below_since: Option<Instant>,
    /// `(when, responses_total)` samples bounding the drain window.
    drain: VecDeque<(Instant, u64)>,
    /// Last autoscale spawn decision (cooldown clock).
    last_scale_up: Option<Instant>,
    /// Start of the current continuous idle stretch (scale-down clock).
    idle_since: Option<Instant>,
}

/// Point-in-time controller snapshot for `/metrics` and Prometheus.
#[derive(Debug, Clone, Copy)]
pub struct OverloadSnapshot {
    /// Current ladder rung ([`STATE_OK`]/[`STATE_BROWNOUT`]/[`STATE_SHEDDING`]).
    pub state: u8,
    /// `--target-queue-delay-ms` (0 = adaptive admission disabled).
    pub target_queue_delay_ms: u64,
    /// Smoothed queue sojourn estimate in microseconds.
    pub smoothed_queue_delay_us: u64,
    /// Currently advertised `Retry-After` for shed responses, seconds.
    pub retry_after_s: u32,
    /// Bulk-class requests shed by the adaptive layer.
    pub shed_bulk_total: u64,
    /// Interactive-class requests shed by the adaptive layer.
    pub shed_interactive_total: u64,
    /// Times the ladder entered brownout.
    pub brownout_entered_total: u64,
    /// Times the ladder entered shedding.
    pub shedding_entered_total: u64,
}

impl OverloadSnapshot {
    /// Renders the `/metrics` JSON `overload` object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("state", state_name(self.state))
            .u64("target_queue_delay_ms", self.target_queue_delay_ms)
            .u64("smoothed_queue_delay_us", self.smoothed_queue_delay_us)
            .u64("retry_after_s", u64::from(self.retry_after_s))
            .u64("shed_bulk_total", self.shed_bulk_total)
            .u64("shed_interactive_total", self.shed_interactive_total)
            .u64("brownout_entered_total", self.brownout_entered_total)
            .u64("shedding_entered_total", self.shedding_entered_total)
            .finish()
    }
}

/// The adaptive admission controller and autoscale decision loop. Workers
/// feed queue-sojourn samples and the reactor counts responses; the reactor's
/// tick turns those into the smoothed delay, the ladder rung, the advertised
/// `Retry-After`, and worker-count targets.
pub struct OverloadController {
    /// Target smoothed queue delay in µs; 0 disables adaptive admission.
    target_us: u64,
    state: AtomicU8,
    smoothed_us: AtomicU64,
    retry_after_s: AtomicU32,
    /// Worker responses completed (drain-rate numerator), fed by the reactor.
    responses_total: AtomicU64,
    shed_bulk: AtomicU64,
    shed_interactive: AtomicU64,
    brownout_entered: AtomicU64,
    shedding_entered: AtomicU64,
    inner: Mutex<Inner>,
}

impl OverloadController {
    /// A controller targeting `target_queue_delay_ms` of smoothed queue delay
    /// (0 = adaptive admission disabled; the ladder stays on ok).
    pub fn new(target_queue_delay_ms: u64) -> Self {
        Self {
            target_us: target_queue_delay_ms.saturating_mul(1_000),
            state: AtomicU8::new(STATE_OK),
            smoothed_us: AtomicU64::new(0),
            retry_after_s: AtomicU32::new(RETRY_AFTER_MIN_S),
            responses_total: AtomicU64::new(0),
            shed_bulk: AtomicU64::new(0),
            shed_interactive: AtomicU64::new(0),
            brownout_entered: AtomicU64::new(0),
            shedding_entered: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                entered_at: Instant::now(),
                below_since: None,
                drain: VecDeque::new(),
                last_scale_up: None,
                idle_since: None,
            }),
        }
    }

    /// Current ladder rung.
    pub fn current_state(&self) -> u8 {
        self.state.load(Ordering::Relaxed)
    }

    /// The currently advertised `Retry-After` in seconds (recomputed from the
    /// drain rate each tick; every 503 path uses this instead of a constant).
    pub fn retry_after_s(&self) -> u32 {
        self.retry_after_s.load(Ordering::Relaxed)
    }

    /// Feeds one observed queue sojourn (dispatch → worker pickup) into the
    /// EWMA. Called by workers at pickup, lock-free.
    pub fn observe_queue_delay(&self, us: u64) {
        let mut cur = self.smoothed_us.load(Ordering::Relaxed);
        loop {
            let new = (cur * (EWMA_DENOM - EWMA_ALPHA) + us * EWMA_ALPHA) / EWMA_DENOM;
            match self.smoothed_us.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Counts one worker-completed response (the drain-rate numerator).
    /// Sheds and parse errors never reach a worker and are excluded, so the
    /// advertised `Retry-After` reflects real service throughput.
    pub fn on_response(&self) {
        self.responses_total.fetch_add(1, Ordering::Relaxed);
    }

    /// The admission decision for one request: `Ok` to dispatch, `Err` with
    /// the `Retry-After` seconds to shed. The caller resolves cache residency
    /// first (a hit is upgraded to [`Class::Critical`] before this call).
    pub fn admit(&self, class: Class) -> Result<(), u32> {
        let shed = match (self.current_state(), class) {
            (STATE_BROWNOUT | STATE_SHEDDING, Class::Bulk) => &self.shed_bulk,
            (STATE_SHEDDING, Class::Interactive) => &self.shed_interactive,
            _ => return Ok(()),
        };
        shed.fetch_add(1, Ordering::Relaxed);
        Err(self.retry_after_s())
    }

    /// One control-loop step, run from the reactor: refresh the drain-rate
    /// window, blend the backlog estimate into the smoothed delay, recompute
    /// `Retry-After`, and walk the ladder (one rung per transition, with the
    /// dwell rules from the module docs).
    pub fn tick(&self, now: Instant, queued: usize) {
        let responses = self.responses_total.load(Ordering::Relaxed);
        let mut inner = hc_obs::sync::lock_recover(&self.inner);
        inner.drain.push_back((now, responses));
        while let Some(&(t, _)) = inner.drain.front() {
            if now.duration_since(t) > DRAIN_WINDOW && inner.drain.len() > 2 {
                inner.drain.pop_front();
            } else {
                break;
            }
        }
        let drain_per_s = match (inner.drain.front(), inner.drain.back()) {
            (Some(&(t0, c0)), Some(&(t1, c1))) if t1 > t0 => {
                (c1 - c0) as f64 / (t1 - t0).as_secs_f64()
            }
            _ => 0.0,
        };
        self.retry_after_s.store(
            retry_after_from_drain(queued, drain_per_s),
            Ordering::Relaxed,
        );

        // Backlog estimate: expected sojourn of a request joining the queue
        // now. Keeps the smoothed delay honest in both directions — decaying
        // once the queue empties (shedding stops sojourn samples), and rising
        // when the backlog outruns what admitted requests have observed yet.
        let estimate_us = if queued == 0 {
            0
        } else if drain_per_s <= 0.0 {
            ESTIMATE_CAP_US
        } else {
            ((queued as f64 / drain_per_s) * 1e6).min(ESTIMATE_CAP_US as f64) as u64
        };
        let smoothed = {
            let cur = self.smoothed_us.load(Ordering::Relaxed);
            let new = if estimate_us >= cur {
                (cur * DECAY + estimate_us * (EWMA_DENOM - DECAY)) / EWMA_DENOM
            } else {
                (cur * DECAY / EWMA_DENOM).max(estimate_us)
            };
            self.smoothed_us.store(new, Ordering::Relaxed);
            new
        };

        if self.target_us == 0 {
            return; // adaptive admission disabled; the ladder stays on ok
        }
        let target = self.target_us;
        let state = self.current_state();
        let enter = |next: u8, inner: &mut Inner| {
            self.state.store(next, Ordering::Relaxed);
            inner.entered_at = now;
            inner.below_since = None;
            match next {
                STATE_BROWNOUT if next > state => {
                    self.brownout_entered.fetch_add(1, Ordering::Relaxed);
                }
                STATE_SHEDDING => {
                    self.shedding_entered.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        };
        match state {
            STATE_OK => {
                if smoothed >= target {
                    enter(STATE_BROWNOUT, &mut inner);
                }
            }
            STATE_BROWNOUT => {
                if smoothed >= 2 * target && now.duration_since(inner.entered_at) >= ESCALATE_DWELL
                {
                    enter(STATE_SHEDDING, &mut inner);
                } else if smoothed < target / 2 {
                    let since = *inner.below_since.get_or_insert(now);
                    if now.duration_since(since) >= RECOVER_DWELL {
                        enter(STATE_OK, &mut inner);
                    }
                } else {
                    inner.below_since = None;
                }
            }
            _ => {
                if smoothed < target {
                    let since = *inner.below_since.get_or_insert(now);
                    if now.duration_since(since) >= RECOVER_DWELL {
                        enter(STATE_BROWNOUT, &mut inner);
                    }
                } else {
                    inner.below_since = None;
                }
            }
        }
    }

    /// The autoscale decision: `Some(new_target)` when the worker count
    /// should change, within `[min, max]`. Scales up one worker per
    /// [`SCALE_UP_COOLDOWN`] while the smoothed delay crosses half the target
    /// (or the queue outgrows the workers); retires one worker per
    /// [`SCALE_DOWN_IDLE`] of continuous idleness.
    pub fn autoscale(
        &self,
        now: Instant,
        queued: usize,
        live: usize,
        min: usize,
        max: usize,
    ) -> Option<usize> {
        if min >= max {
            return None; // autoscaling disabled (--workers-max not above min)
        }
        let smoothed = self.smoothed_us.load(Ordering::Relaxed);
        let reference = if self.target_us > 0 {
            self.target_us
        } else {
            DEFAULT_SCALE_REF_US
        };
        let busy = smoothed >= reference / 2 || queued > live;
        let idle = queued == 0 && smoothed < reference / 8;
        let mut inner = hc_obs::sync::lock_recover(&self.inner);
        if busy {
            inner.idle_since = None;
            if live < max
                && inner
                    .last_scale_up
                    .is_none_or(|t| now.duration_since(t) >= SCALE_UP_COOLDOWN)
            {
                inner.last_scale_up = Some(now);
                return Some(live + 1);
            }
            return None;
        }
        if idle {
            let since = *inner.idle_since.get_or_insert(now);
            if live > min && now.duration_since(since) >= SCALE_DOWN_IDLE {
                inner.idle_since = Some(now);
                return Some(live - 1);
            }
        } else {
            inner.idle_since = None;
        }
        None
    }

    /// Forces the ladder onto a rung, resetting the dwell clocks as if it had
    /// just been entered. A drill/test hook: the normal control loop resumes
    /// from the forced rung (and will walk back down once the smoothed delay
    /// allows), so a forced state is a head start, not a pin.
    pub fn force_state(&self, state: u8) {
        let mut inner = hc_obs::sync::lock_recover(&self.inner);
        self.state.store(state, Ordering::Relaxed);
        inner.entered_at = Instant::now();
        inner.below_since = None;
    }

    /// Point-in-time snapshot for `/metrics` and Prometheus.
    pub fn snapshot(&self) -> OverloadSnapshot {
        OverloadSnapshot {
            state: self.current_state(),
            target_queue_delay_ms: self.target_us / 1_000,
            smoothed_queue_delay_us: self.smoothed_us.load(Ordering::Relaxed),
            retry_after_s: self.retry_after_s(),
            shed_bulk_total: self.shed_bulk.load(Ordering::Relaxed),
            shed_interactive_total: self.shed_interactive.load(Ordering::Relaxed),
            brownout_entered_total: self.brownout_entered.load(Ordering::Relaxed),
            shedding_entered_total: self.shedding_entered.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(path: &str, body_len: usize) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: Default::default(),
            body: vec![b'x'; body_len],
            request_id: None,
            timeout_ms: None,
            traceparent: None,
            if_match: None,
            malformed_headers: Vec::new(),
        }
    }

    #[test]
    fn retry_after_arithmetic() {
        // Empty queue: come back soon.
        assert_eq!(retry_after_from_drain(0, 100.0), 1);
        // 50 queued at 100/s drains in 0.5 s → rounds up to the 1 s floor.
        assert_eq!(retry_after_from_drain(50, 100.0), 1);
        // 500 queued at 100/s → 5 s.
        assert_eq!(retry_after_from_drain(500, 100.0), 5);
        // Fractional drain rounds up: 10 queued at 3/s → ceil(3.33) = 4 s.
        assert_eq!(retry_after_from_drain(10, 3.0), 4);
        // Deep backlog clamps at the 30 s ceiling.
        assert_eq!(retry_after_from_drain(10_000, 10.0), 30);
        // Stalled pool with work queued: max, not a divide-by-zero.
        assert_eq!(retry_after_from_drain(5, 0.0), 30);
    }

    #[test]
    fn classifies_by_endpoint_and_size() {
        assert_eq!(classify(&req("/healthz", 0)), Class::Critical);
        assert_eq!(classify(&req("/metrics", 0)), Class::Critical);
        assert_eq!(classify(&req("/session/abc/watch", 0)), Class::Critical);
        assert_eq!(classify(&req("/batch", 10)), Class::Bulk);
        assert_eq!(classify(&req("/measure", 100)), Class::Interactive);
        assert_eq!(classify(&req("/measure", LARGE_BODY_BYTES)), Class::Bulk);
        assert_eq!(classify(&req("/session", 100)), Class::Interactive);
        assert_eq!(classify(&req("/sleepz", 0)), Class::Interactive);
        assert_eq!(classify(&req("/nope", 0)), Class::Interactive);
    }

    #[test]
    fn ladder_escalates_one_rung_at_a_time_with_dwell() {
        let c = OverloadController::new(10); // 10 ms target
        let t0 = Instant::now();
        // Saturate the delay estimate well past 2x target.
        for _ in 0..64 {
            c.observe_queue_delay(100_000);
        }
        c.tick(t0, 8);
        assert_eq!(
            c.current_state(),
            STATE_BROWNOUT,
            "first crossing: brownout"
        );
        // Immediately after: still brownout (escalation dwell not served).
        c.tick(t0 + Duration::from_millis(100), 8);
        assert_eq!(c.current_state(), STATE_BROWNOUT);
        // Past the dwell with delay still ≥ 2x target: shedding.
        for _ in 0..64 {
            c.observe_queue_delay(100_000);
        }
        c.tick(t0 + ESCALATE_DWELL + Duration::from_millis(50), 8);
        assert_eq!(c.current_state(), STATE_SHEDDING);
        let snap = c.snapshot();
        assert_eq!(snap.brownout_entered_total, 1);
        assert_eq!(snap.shedding_entered_total, 1);
    }

    #[test]
    fn ladder_recovers_stepwise_after_dwell() {
        let c = OverloadController::new(10);
        c.force_state(STATE_SHEDDING);
        // Queue empty, delay decayed to zero.
        let t0 = Instant::now();
        c.tick(t0, 0);
        assert_eq!(
            c.current_state(),
            STATE_SHEDDING,
            "recovery needs the dwell"
        );
        c.tick(t0 + RECOVER_DWELL + Duration::from_millis(10), 0);
        assert_eq!(c.current_state(), STATE_BROWNOUT, "one rung down");
        c.tick(t0 + RECOVER_DWELL + Duration::from_millis(20), 0);
        assert_eq!(c.current_state(), STATE_BROWNOUT, "dwell restarts per rung");
        c.tick(t0 + 2 * RECOVER_DWELL + Duration::from_millis(40), 0);
        assert_eq!(c.current_state(), STATE_OK);
    }

    #[test]
    fn admit_sheds_by_class_in_documented_order() {
        let c = OverloadController::new(10);
        assert!(c.admit(Class::Bulk).is_ok(), "ok state admits everything");
        c.force_state(STATE_BROWNOUT);
        assert!(c.admit(Class::Bulk).is_err(), "brownout sheds bulk");
        assert!(c.admit(Class::Interactive).is_ok());
        assert!(c.admit(Class::Critical).is_ok());
        c.force_state(STATE_SHEDDING);
        assert!(c.admit(Class::Bulk).is_err());
        assert!(
            c.admit(Class::Interactive).is_err(),
            "shedding sheds interactive"
        );
        assert!(c.admit(Class::Critical).is_ok(), "critical always flows");
        let snap = c.snapshot();
        assert_eq!(snap.shed_bulk_total, 2);
        assert_eq!(snap.shed_interactive_total, 1);
    }

    #[test]
    fn disabled_controller_never_leaves_ok() {
        let c = OverloadController::new(0);
        for _ in 0..256 {
            c.observe_queue_delay(1_000_000);
        }
        c.tick(Instant::now(), 1_000);
        assert_eq!(c.current_state(), STATE_OK);
        assert!(c.admit(Class::Bulk).is_ok());
        // The drain-rate Retry-After still works for fixed-depth sheds.
        assert!(c.retry_after_s() >= 1);
    }

    #[test]
    fn smoothed_delay_decays_once_queue_empties() {
        let c = OverloadController::new(10);
        for _ in 0..64 {
            c.observe_queue_delay(50_000);
        }
        let before = c.snapshot().smoothed_queue_delay_us;
        assert!(before > 40_000);
        let t0 = Instant::now();
        for i in 1..=40 {
            c.tick(t0 + Duration::from_millis(50 * i), 0);
        }
        let after = c.snapshot().smoothed_queue_delay_us;
        assert!(after < 1_000, "decayed {before} -> {after}");
    }

    #[test]
    fn autoscale_up_on_delay_down_on_idle() {
        let c = OverloadController::new(10);
        let t0 = Instant::now();
        for _ in 0..64 {
            c.observe_queue_delay(20_000); // 2x target: busy
        }
        assert_eq!(c.autoscale(t0, 4, 2, 1, 4), Some(3), "busy: scale up");
        // Cooldown: no second spawn immediately.
        assert_eq!(
            c.autoscale(t0 + Duration::from_millis(50), 4, 3, 1, 4),
            None
        );
        assert_eq!(
            c.autoscale(
                t0 + SCALE_UP_COOLDOWN + Duration::from_millis(10),
                4,
                3,
                1,
                4
            ),
            Some(4)
        );
        // At max: no further growth.
        assert_eq!(
            c.autoscale(
                t0 + 2 * SCALE_UP_COOLDOWN + Duration::from_millis(20),
                4,
                4,
                1,
                4
            ),
            None
        );
        // Idle long enough: retire one at a time, never below min.
        let c2 = OverloadController::new(10);
        let t1 = Instant::now();
        assert_eq!(
            c2.autoscale(t1, 0, 4, 1, 4),
            None,
            "idle clock just started"
        );
        assert_eq!(
            c2.autoscale(t1 + SCALE_DOWN_IDLE + Duration::from_millis(10), 0, 4, 1, 4),
            Some(3)
        );
        assert_eq!(
            c2.autoscale(t1 + SCALE_DOWN_IDLE + Duration::from_millis(20), 0, 3, 1, 4),
            None,
            "retirement restarts the idle clock"
        );
        // min == max: autoscaling off.
        assert_eq!(c2.autoscale(t1, 100, 2, 2, 2), None);
    }
}
