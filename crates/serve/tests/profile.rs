//! Socket-level tests for `/debug/profile` and the response-header audit.
//! The profiler is process-global (one sampler thread, first `start` wins),
//! so every test here serializes on one lock and resets the profiler to the
//! state it needs before starting its server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use hc_serve::{start, Config};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// One HTTP/1.1 exchange.
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {target} HTTP/1.1\r\nHost: profile\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let (head, resp_body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    (status, head.to_string(), resp_body.to_string())
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    request(addr, "GET", target, "")
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String, String) {
    request(addr, "POST", target, body)
}

fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    let prefix = format!("{name}: ");
    head.lines()
        .find(|l| l.starts_with(&prefix))
        .map(|l| &l[prefix.len()..])
}

/// A matrix big enough that Sinkhorn and SVD each hold spans for multiple
/// sampler periods; `salt` varies the content so the result cache cannot
/// short-circuit the compute phase.
fn big_matrix(tasks: usize, machines: usize, salt: usize) -> String {
    let mut csv = String::from("task");
    for m in 0..machines {
        csv.push_str(&format!(",m{m}"));
    }
    csv.push('\n');
    for t in 0..tasks {
        csv.push_str(&format!("t{t}"));
        for m in 0..machines {
            let v = 1.0 + ((t * 31 + m * 17 + salt * 7) % 97) as f64 / 10.0;
            csv.push_str(&format!(",{v:.2}"));
        }
        csv.push('\n');
    }
    csv
}

/// Mixed load against a profiling server must yield a folded profile that
/// resolves below `core.characterize` into the Sinkhorn standardization and
/// the SVD phases, and the JSON rendering must expose a per-frame table.
#[test]
fn profile_resolves_kernel_phases_under_mixed_load() {
    let _serial = serial();
    hc_obs::profile::stop();
    hc_obs::profile::reset_store();
    let cfg = Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        cache_entries: 64,
        profile_hz: 997,
        ..Config::default()
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.local_addr();
    assert!(hc_obs::profile::running(), "server must start the sampler");

    // 50 mixed requests; matrices vary per request to defeat the cache.
    for i in 0..50 {
        let (path, body) = match i % 3 {
            0 => ("/measure".to_string(), big_matrix(128, 64, i)),
            1 => ("/structure".to_string(), big_matrix(96, 48, i)),
            _ => (
                "/schedule?heuristic=min-min".to_string(),
                big_matrix(64, 32, i),
            ),
        };
        let (s, _h, b) = post(addr, &path, &body);
        assert_eq!(s, 200, "{path}: {b}");
    }

    let (ps, ph, folded) = get(addr, "/debug/profile?seconds=10");
    assert_eq!(ps, 200, "{folded}");
    assert_eq!(
        header_value(&ph, "Content-Type"),
        Some("text/plain; charset=utf-8"),
        "{ph}"
    );
    assert_eq!(header_value(&ph, "Cache-Control"), Some("no-store"), "{ph}");
    assert!(!folded.trim().is_empty(), "profile must not be empty");
    // Every line is `frame[;frame…] count`.
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect(line);
        assert!(!stack.is_empty(), "{line}");
        let _: u64 = count.parse().expect(line);
    }
    // The kernel phases resolve below characterize: standardization down to
    // the Sinkhorn iteration batches, and the SVD phase.
    assert!(
        folded.contains("core.characterize;measure.standardize;sinkhorn.balance"),
        "sinkhorn frames missing:\n{folded}"
    );
    assert!(
        folded.contains("core.characterize;measure.svd"),
        "svd frames missing:\n{folded}"
    );

    // `format=folded` is the explicit spelling of the default.
    let (fs, _fh, folded2) = get(addr, "/debug/profile?seconds=10&format=folded");
    assert_eq!(fs, 200);
    assert!(folded2.contains("core.characterize"), "{folded2}");

    // JSON rendering: a self/total table over the same window.
    let (js, jh, json) = get(addr, "/debug/profile?seconds=10&format=json");
    assert_eq!(js, 200, "{json}");
    assert_eq!(
        header_value(&jh, "Content-Type"),
        Some("application/json"),
        "{jh}"
    );
    assert!(json.contains("\"window_seconds\":10"), "{json}");
    assert!(json.contains("\"hz\":997"), "{json}");
    assert!(json.contains("\"top\":["), "{json}");
    assert!(json.contains("\"frame\":\"core.characterize\""), "{json}");
    assert!(json.contains("\"self_seconds\":"), "{json}");
    assert!(json.contains("\"total_seconds\":"), "{json}");

    // Malformed parameters answer typed 400s.
    let (bs, _bh, bb) = get(addr, "/debug/profile?seconds=soon");
    assert_eq!(bs, 400, "{bb}");
    let (xs, _xh, xb) = get(addr, "/debug/profile?format=svg");
    assert_eq!(xs, 400, "{xb}");

    handle.shutdown();
    handle.join();
    hc_obs::profile::stop();
}

/// `--profile-hz 0` leaves the sampler stopped and `/debug/profile` answers
/// a typed 404 rather than an empty profile.
#[test]
fn profile_endpoint_404s_when_disabled() {
    let _serial = serial();
    hc_obs::profile::stop();
    let cfg = Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 16,
        cache_entries: 16,
        profile_hz: 0,
        ..Config::default()
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.local_addr();
    assert!(!hc_obs::profile::running());

    let (s, _h, b) = get(addr, "/debug/profile");
    assert_eq!(s, 404, "{b}");
    assert!(b.contains("profiler_disabled"), "{b}");

    handle.shutdown();
    handle.join();
}

/// Walks every route once and audits the response headers: `Server-Timing`
/// on everything (it is attached once per parsed request), `Cache-Control:
/// no-store` on exactly the live-state endpoints, absent on the cacheable
/// compute endpoints.
#[test]
fn header_audit_covers_every_route() {
    let _serial = serial();
    hc_obs::profile::stop();
    let cfg = Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        cache_entries: 64,
        profile_hz: 997,
        ..Config::default()
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.local_addr();

    const SAMPLE: &str = "task,m1,m2,m3\nt1,2.0,8.0,4.0\nt2,6.0,3.0,5.0\nt3,4.0,4.0,4.5\n";
    let (cs, _ch, cbody) = post(addr, "/session", SAMPLE);
    assert_eq!(cs, 200, "{cbody}");
    let at = cbody.find("\"id\":\"").expect("session id") + 6;
    let sid: String = cbody[at..].chars().take_while(|c| *c != '"').collect();

    // (method, target, body, expect_no_store)
    let routes: Vec<(&str, String, &str, bool)> = vec![
        ("POST", "/measure".into(), SAMPLE, false),
        ("POST", "/structure".into(), SAMPLE, false),
        (
            "POST",
            "/generate?mode=targeted&tasks=6&machines=4&mph=0.7&tdh=0.6&tma=0.2&seed=3".into(),
            "",
            false,
        ),
        ("POST", "/schedule?heuristic=min-min".into(), SAMPLE, false),
        ("POST", "/batch".into(), SAMPLE, false),
        ("GET", "/metrics".into(), "", true),
        ("GET", "/metrics?format=prometheus".into(), "", true),
        ("GET", "/healthz".into(), "", true),
        ("GET", "/debug/requests".into(), "", true),
        ("GET", "/debug/requests/no-such-id".into(), "", true),
        ("GET", "/debug/profile?seconds=10".into(), "", true),
        (
            "PATCH",
            format!("/session/{sid}/etc"),
            "cell,t1,m1,2.5\n",
            true,
        ),
        ("GET", format!("/session/{sid}"), "", true),
        ("GET", format!("/session/{sid}/watch?version=0"), "", true),
        ("DELETE", format!("/session/{sid}"), "", true),
    ];
    for (method, target, body, expect_no_store) in &routes {
        let (status, head, rbody) = request(addr, method, target, body);
        assert!(
            status < 500,
            "{method} {target}: unexpected {status}: {rbody}"
        );
        assert!(
            header_value(&head, "Server-Timing").is_some(),
            "{method} {target}: Server-Timing missing:\n{head}"
        );
        assert!(
            header_value(&head, "X-Request-Id").is_some(),
            "{method} {target}: X-Request-Id missing:\n{head}"
        );
        let no_store = header_value(&head, "Cache-Control") == Some("no-store");
        assert_eq!(
            no_store, *expect_no_store,
            "{method} {target}: Cache-Control audit failed:\n{head}"
        );
    }

    handle.shutdown();
    handle.join();
    hc_obs::profile::stop();
}
